"""Table 7: HeteroG's execution-order scheduling vs the default order.

Paper shape: enforcing the Scheduler's order accelerates training by
~10-20% over TensorFlow's default (nondeterministic ready-queue) order,
holding the strategy fixed.
"""

import numpy as np
import pytest

from repro.cluster import cluster_8gpu
from repro.experiments import (
    order_scheduling_table,
    paper_values,
    render_order_scheduling,
)

MODELS = ["vgg19", "resnet200", "transformer", "bert_large"]


@pytest.fixture(scope="module")
def rows():
    return order_scheduling_table(cluster_8gpu(), models=MODELS)


def test_table7_order_scheduling(benchmark, report, rows):
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)
    body = render_order_scheduling(rows)
    body += "\n\npaper Table 7 (HeteroG schedule / FIFO / speed-up):\n"
    for model, (order, fifo) in paper_values.TABLE7.items():
        body += (f"  {model:14s} {order:.3f}  {fifo:.3f}  "
                 f"{(fifo - order) / order * 100:.1f}%\n")
    report("Table 7 — effect of order scheduling", body)


def test_order_scheduling_helps(rows):
    """Scheduling must never hurt, and help meaningfully on average."""
    for row in rows:
        assert row.with_order <= row.fifo * 1.03, row.model
    mean_speedup = np.mean([r.speedup for r in rows])
    assert mean_speedup > 0.03, f"mean speed-up only {mean_speedup:.1%}"
