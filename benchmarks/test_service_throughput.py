"""Planning-service throughput: coalesced concurrent serving vs naive
serial replanning.

Before the service layer, every caller that wanted a plan for the same
(graph, cluster, config) re-ran the whole profile -> group -> search ->
schedule pipeline from scratch.  The service coalesces concurrent
duplicates onto one evaluation and serves late duplicates from its
result cache, so a burst of identical requests costs one search.

Correctness gates (also exercised by the CI ``--quick`` smoke step):

- exactly **one** evaluation runs per unique request fingerprint;
  every other duplicate coalesces or hits the result cache, and the
  ``service_coalesced_total`` metric agrees with the stats counters;
- the coalesced results are **bit-identical** to naive serial
  replanning (same strategy labels, one distinct makespan);
- concurrent request throughput is at least the serial baseline's
  (in practice ~``duplicates``x, since N requests share one search);
- the machine-relative speedup (serial vs concurrent on the *same*
  box, so portable) must not regress by more than 25% against the
  committed baseline for the active mode
  (``results/BENCH_service_throughput.json``), which also records the
  sustained requests/sec and p50/p99 latency.
"""

from __future__ import annotations

import json

import pytest

from repro.agent import AgentConfig
from repro.cluster import cluster_4gpu, cluster_8gpu
from repro.config import HeteroGConfig
from repro.graph.models import build_model
from repro.service.bench import bench_coalescing

#: measured speedup may drop to this fraction of the committed baseline
#: speedup before the benchmark fails (machine-relative, so portable)
REGRESSION_TOLERANCE = 0.75

RESULT_NAME = "BENCH_service_throughput.json"


@pytest.fixture(scope="module")
def setup(request):
    quick = request.config.getoption("--quick")
    if quick:
        cluster = cluster_4gpu()
        graph = build_model("vgg19", "tiny")
        duplicates, episodes = 4, 2
        config = HeteroGConfig(seed=0, agent=AgentConfig(
            max_groups=8, gat_hidden=16, gat_layers=2, gat_heads=2,
            strategy_dim=16, strategy_heads=2, strategy_layers=1))
    else:
        cluster = cluster_8gpu()
        graph = build_model("inception_v3", "bench")
        duplicates, episodes = 6, 4
        config = HeteroGConfig(seed=0)
    return quick, graph, cluster, duplicates, episodes, config


def test_service_throughput(setup, report, results_dir):
    quick, graph, cluster, duplicates, episodes, config = setup
    numbers = bench_coalescing(graph, cluster, duplicates=duplicates,
                               episodes=episodes, workers=2, config=config)

    # one evaluation per unique fingerprint; everything else deduped
    assert numbers["evaluations_executed"] == 1, \
        f"expected 1 evaluation, ran {numbers['evaluations_executed']}"
    assert (numbers["coalesced"] + numbers["result_cache_hits"]
            == duplicates - 1), \
        f"duplicates neither coalesced nor cache-served: {numbers}"
    assert numbers["coalesced_metric"] == numbers["coalesced"], \
        "service_coalesced_total disagrees with ServiceStats"

    # bit-identical to naive serial replanning
    assert numbers["divergent_results"] == 0, \
        f"{numbers['divergent_results']} results diverged from serial"
    assert numbers["distinct_makespans"] == 1, \
        f"expected one makespan, saw {numbers['distinct_makespans']}"

    # coalesced serving must beat (or match) serial replanning
    assert (numbers["concurrent_requests_per_sec"]
            >= numbers["serial_requests_per_sec"]), \
        f"coalesced slower than serial baseline: {numbers}"
    assert numbers["latency_p50_ms"] <= numbers["latency_p99_ms"]

    # regression gate against the committed per-mode baseline
    mode = "quick" if quick else "full"
    committed_path = results_dir / RESULT_NAME
    baseline_speedup = None
    committed = {}
    if committed_path.exists():
        committed = json.loads(committed_path.read_text())
        baseline_speedup = committed.get(mode, {}).get("speedup")
    if baseline_speedup is not None:
        floor = baseline_speedup * REGRESSION_TOLERANCE
        assert numbers["speedup"] >= floor, (
            f"service throughput regressed: {numbers['speedup']:.2f}x "
            f"vs committed {baseline_speedup:.2f}x (floor {floor:.2f}x)"
        )

    if not quick:
        # refresh the full section; leave the quick baseline intact
        committed["full"] = numbers
        committed_path.write_text(json.dumps(committed, indent=2) + "\n")

    body = "\n".join(f"{k:28s}: {v}" for k, v in numbers.items())
    report(f"Planning-service throughput ({mode}) — coalesced vs serial",
           body)
