"""Fig. 9: HeteroG vs HetPipe, FlexFlow, Horovod and Post (12 GPUs).

Paper shape: normalized to Horovod, HeteroG is the fastest on every
model (outperforming the others by 16-392%); HetPipe/FlexFlow land
between Horovod and HeteroG; Post (placement-only, no replication) is
clearly the slowest.
"""

import pytest

from repro.experiments import (
    fig9_existing_schemes,
    paper_values,
    render_fig9,
)

MODELS = ["resnet200", "transformer", "bert_large"]


@pytest.fixture(scope="module")
def bars():
    return fig9_existing_schemes(models=MODELS)


def test_fig9_existing_schemes(benchmark, report, bars):
    benchmark.pedantic(lambda: bars, rounds=1, iterations=1)
    body = render_fig9(bars)
    body += "\n\npaper Fig. 9 (normalized training speed):\n"
    for model, schemes in paper_values.FIG9.items():
        body += f"  {model:14s} " + "  ".join(
            f"{k}={v:.2f}" for k, v in schemes.items()) + "\n"
    report("Fig. 9 — comparison with existing schemes", body)


def test_heterog_fastest(bars):
    for bar in bars:
        best_other = max(v for k, v in bar.speeds.items() if k != "HeteroG")
        assert bar.speeds["HeteroG"] >= best_other * 0.98, bar.model


def test_post_slowest(bars):
    """Placement-only search cannot exploit data parallelism."""
    for bar in bars:
        others = [v for k, v in bar.speeds.items() if k != "Post"]
        assert bar.speeds["Post"] <= min(others) * 1.05, bar.model


def test_normalization(bars):
    for bar in bars:
        norm = bar.normalized()
        assert norm["Horovod"] == pytest.approx(1.0)
