"""Branch-and-bound candidate pruning: cold-search speedup + identity.

Strategy search evaluates pools of candidate deployments where most
candidates lose.  The pruning PR cuts those losers short in three
winner-safe layers: a static admissible lower bound on the lowered
kernel (no simulation at all), a cooperative mid-simulation abort once
the clock exceeds the best-so-far, and the scheduler's internal
candidate-order race (the ``earliest`` order raced against the
completed ``rank`` makespan).

This benchmark runs the same 16-candidate cold search twice on fresh
builders:

- **unpruned** — ``prune=False``: the pre-pruning pipeline (no bound
  check, no mid-sim abort, no internal race pruning);
- **pruned**   — a shared :class:`~repro.plan.BestSoFar` threaded
  through a serial sweep, exactly how the REINFORCE / CEM consumers
  drive it.

The candidate pool is sampled from the search's own action space —
random per-*group* actions (MP placements and the four DP schemes) over
the agent's operation grouping, the same distribution a cold REINFORCE
episode or CEM round draws from.  Group-structured candidates span the
full quality range (2x spread between best and worst is typical), which
is precisely the regime branch-and-bound exploits: clearly-losing
candidates static-bound-prune before any simulation, borderline ones
abort mid-simulation via the tail bound.

Correctness gates (also the CI ``--quick`` smoke step): the pruned
sweep must report the **bit-identical winning candidate and makespan**,
the pruned fraction must be non-zero, and the measured speedup must not
regress by more than 25% against the committed baseline for the active
mode.  The full run additionally targets >= 1.5x.

Methodology matches ``test_cold_eval``: ``time.process_time``,
best-of-N repetitions, GC paused around the timed regions.
"""

from __future__ import annotations

import gc
import json
import os
import time

import numpy as np
import pytest

from repro.agent.policy import actions_to_strategy, num_actions
from repro.cluster import cluster_4gpu, cluster_8gpu
from repro.graph.grouping import group_operations
from repro.graph.models import build_model
from repro.plan import BestSoFar, PlanBuilder
from repro.profiling import Profiler

#: measured speedup may drop to this fraction of the committed baseline
#: before the benchmark fails (machine-relative, so portable)
REGRESSION_TOLERANCE = 0.75

#: the full-size run's absolute target (the PR's headline number)
FULL_TARGET_SPEEDUP = 1.5

RESULT_NAME = "BENCH_candidate_pruning.json"


def grouped_candidates(graph, cluster, n, *, groups=8, seed=0):
    """``n`` candidates drawn from the search's per-group action space
    (random MP/DP action per operation group — a cold policy's sampling
    distribution)."""
    rng = np.random.default_rng(seed)
    grouping = group_operations(graph, {op: 1.0 for op in graph.op_names},
                                groups)
    return [
        actions_to_strategy(
            graph, cluster, grouping,
            rng.integers(0, num_actions(cluster), grouping.num_groups))
        for _ in range(n)
    ]


@pytest.fixture(scope="module")
def setup(request):
    quick = request.config.getoption("--quick")
    if quick:
        cluster = cluster_4gpu()
        graph = build_model("inception_v3", "tiny")
        reps = 2
    else:
        cluster = cluster_8gpu()
        graph = build_model("inception_v3", "bench")
        reps = 3
    n = 16  # the PR's reference workload: a 16-candidate cold search
    profile = Profiler(seed=0).profile(graph, cluster)
    return quick, graph, cluster, profile, n, reps


def _timed_best(fn, reps):
    """Best-of-``reps`` CPU seconds with the GC paused, plus last value."""
    best = None
    value = None
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(reps):
            start = time.process_time()
            value = fn()
            elapsed = time.process_time() - start
            best = elapsed if best is None or elapsed < best else best
    finally:
        if gc_was_enabled:
            gc.enable()
    return best, value


def _winner(times):
    idx = min(range(len(times)), key=times.__getitem__)
    return idx, times[idx]


def test_candidate_pruning_speedup(setup, report, results_dir):
    quick, graph, cluster, profile, n, reps = setup
    candidates = grouped_candidates(graph, cluster, n)

    def unpruned():
        builder = PlanBuilder(graph, cluster, profile)
        outcomes = [builder.evaluate(s, prune=False) for s in candidates]
        return [o.time if o.feasible else float("inf") for o in outcomes]

    def pruned():
        builder = PlanBuilder(graph, cluster, profile)
        best = BestSoFar()
        outcomes = [builder.evaluate(s, best=best) for s in candidates]
        stats = (builder.evals_pruned, builder.evals_total)
        stages = {}
        for o in outcomes:
            if o.pruned:
                stages[o.prune_stage] = stages.get(o.prune_stage, 0) + 1
        times = [o.time if o.feasible else float("inf") for o in outcomes]
        return times, stats, stages

    unpruned_s, unpruned_times = _timed_best(unpruned, reps)
    pruned_s, (pruned_times, (n_pruned, n_total), stages) = \
        _timed_best(pruned, reps)

    # winner identity: bit-equal index AND makespan, not approximate
    assert _winner(pruned_times) == _winner(unpruned_times), \
        "pruned search changed the winning candidate"

    pruned_fraction = n_pruned / n_total if n_total else 0.0
    assert pruned_fraction > 0.0, \
        "pruning never fired on the 16-candidate cold search"

    speedup = unpruned_s / pruned_s if pruned_s > 0 else float("inf")

    mode = "quick" if quick else "full"
    committed_path = results_dir / RESULT_NAME
    baseline_speedup = None
    committed = {}
    if committed_path.exists():
        committed = json.loads(committed_path.read_text())
        baseline_speedup = committed.get(mode, {}).get("speedup")
    if baseline_speedup is not None:
        floor = baseline_speedup * REGRESSION_TOLERANCE
        assert speedup >= floor, (
            f"pruning speedup regressed: {speedup:.2f}x vs committed "
            f"{baseline_speedup:.2f}x (floor {floor:.2f}x)"
        )
    if not quick:
        assert speedup >= FULL_TARGET_SPEEDUP, (
            f"full-size pruning speedup {speedup:.2f}x below the "
            f"{FULL_TARGET_SPEEDUP}x target"
        )

    numbers = {
        "model": graph.name,
        "cluster": str(cluster),
        "candidates": n,
        "reps": reps,
        "cpu_cores": os.cpu_count(),
        "unpruned_cpu_seconds": round(unpruned_s, 3),
        "pruned_cpu_seconds": round(pruned_s, 3),
        "speedup": round(speedup, 2),
        "pruned_fraction": round(pruned_fraction, 3),
        "pruned_bound": stages.get("bound", 0),
        "pruned_midsim": stages.get("midsim", 0),
        "winner_identical": True,
        "committed_baseline_speedup": baseline_speedup,
    }
    if not quick:
        # refresh the full section; keep the quick record intact
        committed["full"] = {k: v for k, v in numbers.items()
                             if k != "committed_baseline_speedup"}
        committed_path.write_text(json.dumps(committed, indent=2) + "\n")

    body = "\n".join(f"{k:28s}: {v}" for k, v in numbers.items())
    report(f"Candidate pruning ({mode}) — unpruned vs best-so-far sweep",
           body)
