"""Table 2: fraction of ops per parallelism strategy chosen by HeteroG.

Paper shape: for the small models, the vast majority of ops are data
parallel with a *mixture* of PS and AllReduce and of even/proportional
allocation; a small share (~2-7%) of parameter-heavy ops (VGG fc layers,
BERT/XLNet embeddings) are placed on one fast GPU without replication.
"""

import pytest

from repro.cluster import cluster_8gpu
from repro.experiments import per_iteration_table, strategy_mix_table
from repro.experiments.tables import mp_fraction

MODELS = ["vgg19", "bert_large", "transformer", "mobilenet_v2"]


@pytest.fixture(scope="module")
def rows():
    return per_iteration_table(cluster_8gpu(), 8, models=MODELS,
                               include_large=False)


def test_table2_strategy_mix(benchmark, report, rows):
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)
    report("Table 2 — strategy mix of HeteroG (8 GPUs)",
           strategy_mix_table(rows, cluster_8gpu()))


def test_dp_dominates_small_models(rows):
    """Small models stay mostly data-parallel (Table 2 vs Table 3)."""
    for row in rows:
        assert mp_fraction(row.heterog.mix) < 0.5, row.label


def test_mix_is_valid_distribution(rows):
    for row in rows:
        assert sum(row.heterog.mix.values()) == pytest.approx(1.0)
        assert all(v >= 0 for v in row.heterog.mix.values())
