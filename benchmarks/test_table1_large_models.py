"""Table 1 (lower half): large models where pure DP is infeasible.

Paper: ResNet200 (batch 384), Transformer-24L (120), BERT-large-24L (96),
XLNet-large-24L (96), BERT-large-48L (24) and XLNet-large-48L (24) all
OOM under every DP baseline on 8 GPUs, while HeteroG finds feasible
(mostly model-parallel) deployments.

These rows run at the faithful ``paper`` model scale by construction —
memory boundaries do not exist at bench scale — so this is the slowest
benchmark in the suite.
"""

import pytest

from repro.cluster import cluster_8gpu
from repro.experiments import (
    large_model_rows,
    paper_values,
    render_per_iteration,
    strategy_mix_table,
)


@pytest.fixture(scope="module")
def rows():
    return large_model_rows(cluster_8gpu(), 8)


def test_table1_large_models(benchmark, report, rows):
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)
    body = render_per_iteration(rows)
    body += "\n" + strategy_mix_table(rows, cluster_8gpu())
    body += "\n\npaper HeteroG times (all DP baselines OOM):\n"
    for label, t in paper_values.TABLE1_LARGE.items():
        body += f"  {label:32s} {t:.3f}s\n"
    report("Table 1 (large models) + Table 3 — DP OOMs, HeteroG trains",
           body)


def test_all_dp_baselines_oom(rows):
    """23 of the 24 (row, baseline) cells OOM as in the paper.  Known
    boundary case: BERT-48L@24 under CP-AR squeezes 3% below the 11GB
    cards' budget in our memory model (proportional allocation halves the
    1080Tis' activation share); see EXPERIMENTS.md."""
    fitting = [
        (row.label, name)
        for row in rows
        for name, m in row.baselines.items()
        if not m.oom
    ]
    assert len(fitting) <= 1, fitting
    for label, name in fitting:
        assert (label, name) == ("Bert-large (48 layers)(24)", "CP-AR"),             fitting


def test_heterog_feasible(rows):
    for row in rows:
        assert not row.heterog.oom, f"{row.label}: HeteroG found no fit"
        assert row.heterog.time < float("inf")


def test_table3_mp_dominates(rows):
    """Table 3's signature: unreplicated (MP) placement becomes the
    dominant tool for the large models, unlike the Table 2 small models.
    Our search sometimes finds feasible deployments with less MP than the
    paper's (pinning just the parameter-heavy ops frees enough memory),
    so the assertion is: substantial MP everywhere, majority-MP on most
    rows."""
    mp_shares = []
    for row in rows:
        mp = sum(v for k, v in row.heterog.mix.items()
                 if k.startswith("MP:"))
        mp_shares.append(mp)
        assert mp > 0.15, f"{row.label}: MP share only {mp * 100:.0f}%"
    majority = sum(1 for mp in mp_shares if mp > 0.5)
    assert majority >= len(mp_shares) / 2
