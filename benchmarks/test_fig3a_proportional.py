"""Fig. 3(a): even vs proportional whole-model replica allocation.

Paper: proportional allocation on 2x V100 + 2x 1080Ti speeds training up
by only ~9-27% — not enough, motivating per-operation decisions.
"""

from repro.experiments import (
    fig3a_proportional_allocation,
    paper_values,
    render_fig3a,
)


def test_fig3a_proportional_allocation(benchmark, report):
    points = benchmark.pedantic(
        fig3a_proportional_allocation, rounds=1, iterations=1
    )
    body = render_fig3a(points)
    body += "\n\npaper (approximate bar heights):\n"
    for model, (even, prop) in paper_values.FIG3A.items():
        body += (f"  {model:14s} even={even:.2f}s prop={prop:.2f}s "
                 f"speedup={(even - prop) / prop * 100:.0f}%\n")
    report("Fig. 3(a) — even vs proportional replica allocation", body)

    # shape assertions: proportional helps, but only modestly
    for p in points:
        assert p.proportional < p.even, p.model
        assert p.speedup < 0.8, (
            f"{p.model}: proportional allocation should not be a magic "
            f"bullet (paper: 9-27%)"
        )
