"""Benchmark-suite plumbing.

Every benchmark regenerates one table/figure of the paper, prints it,
and appends it to ``results/<name>.txt`` so a tee'd run leaves a full
record.  Scale knobs (all optional):

- ``REPRO_PRESET``   : ``bench`` (default, minutes) or ``paper`` (slow);
- ``REPRO_EPISODES`` : RL episodes per HeteroG search (default 24);
- ``REPRO_ITERATIONS``: measured engine iterations per strategy (def. 5).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--quick", action="store_true", default=False,
        help="smoke mode: tiny models and minimal candidate counts "
        "(used by the CI evaluator-throughput step)",
    )


@pytest.fixture(scope="session")
def quick(request) -> bool:
    """True when the suite runs in --quick (CI smoke) mode."""
    return request.config.getoption("--quick")


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(results_dir, request):
    """Callable that prints a rendered table and persists it."""

    def _report(title: str, body: str) -> None:
        text = f"== {title} ==\n{body}\n"
        print("\n" + text)
        out = results_dir / f"{request.node.name}.txt"
        out.write_text(text)

    return _report
