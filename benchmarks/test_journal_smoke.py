"""Journal schema smoke: every event a served workload emits validates.

The request-scoped observability layer promises that the journal is a
*closed* schema — every event any layer emits carries the base fields
(``schema_version``, ``event``, ``request_id``, ``ts``) plus its event
type's required attributes, and a saved journal re-validates line by
line in a fresh reader.  This smoke drives a mixed workload (fresh
evaluations, a duplicate served from the result cache, a forced queue
timeout, a forced admission rejection) through a ``workers=0`` service
and re-validates the full stream, so a schema drift in any emitter
fails CI instead of corrupting postmortems.
"""

from __future__ import annotations

import json

import pytest

from repro.agent import AgentConfig
from repro.cluster import cluster_4gpu
from repro.config import HeteroGConfig
from repro.errors import ServiceTimeoutError
from repro.graph.models import build_model
from repro.service import PlanRequest, PlanningService
from repro.telemetry import (
    EVENT_SCHEMAS,
    SCHEMA_VERSION,
    FlightRecorder,
    Journal,
    validate_event,
)


def _request(graph, cluster, *, seed=0, **kw) -> PlanRequest:
    config = HeteroGConfig(seed=seed, agent=AgentConfig(
        max_groups=8, gat_hidden=16, gat_layers=2, gat_heads=2,
        strategy_dim=16, strategy_heads=2, strategy_layers=1))
    return PlanRequest(graph=graph, cluster=cluster, episodes=2,
                       config=config, **kw)


def test_journal_schema_smoke(quick, report, tmp_path):
    size = "tiny" if quick else "bench"
    cluster = cluster_4gpu()
    graph = build_model("vgg19", size)
    recorder = FlightRecorder()

    with PlanningService(workers=0, recorder=recorder) as service:
        service.plan(_request(graph, cluster, seed=0))
        service.plan(_request(graph, cluster, seed=0))   # result-cache hit
        service.plan(_request(graph, cluster, seed=1, priority=3))
        with pytest.raises(ServiceTimeoutError):
            service.plan(_request(graph, cluster, seed=2, timeout=1e-9))

    # every emitted event validates against the versioned schema ...
    events = recorder.journal.events()
    assert events, "the workload emitted no journal events"
    for entry in events:
        data = entry.to_dict()
        validate_event(data)
        assert data["schema_version"] == SCHEMA_VERSION
        assert data["request_id"]

    # ... and the saved stream re-validates line by line in a fresh
    # reader, bit-identically
    path = tmp_path / "journal.jsonl"
    recorder.journal.save_jsonl(str(path))
    reloaded = Journal.load(str(path))
    assert [json.dumps(e.to_dict()) for e in reloaded] \
        == [json.dumps(e.to_dict()) for e in events]

    kinds = {e.event for e in events}
    assert {"request_accepted", "cache_hit", "search_started",
            "candidate_evaluated", "plan_built", "completed",
            "timeout"} <= kinds
    assert kinds <= set(EVENT_SCHEMAS)

    outcomes = [e for e in events
                if e.event in ("completed", "failed", "timeout")]
    by_status = {}
    for e in outcomes:
        by_status[e.event] = by_status.get(e.event, 0) + 1
    report("journal schema smoke",
           f"model {graph.name} on {cluster}\n"
           f"events emitted  : {len(events)}\n"
           f"event types     : {', '.join(sorted(kinds))}\n"
           f"outcomes        : {by_status}\n"
           f"all {len(events)} events valid against schema v"
           f"{SCHEMA_VERSION}")
