"""Fig. 3(b): normalized per-op execution time, GTX 1080Ti vs Tesla V100.

Paper: the average V100 speed-up varies from ~1.1x to ~1.9x across op
types, and varies strongly with input size even within one type.
"""

from repro.experiments import fig3b_op_speedups, paper_values, render_fig3b


def test_fig3b_op_speedups(benchmark, report):
    points = benchmark.pedantic(fig3b_op_speedups, rounds=1, iterations=1)
    body = render_fig3b(points)
    body += "\n\npaper (approximate bar heights):\n"
    for op, ratio in paper_values.FIG3B.items():
        body += f"  {op:16s} {ratio:.1f}\n"
    report("Fig. 3(b) — per-op 1080Ti/V100 time ratios", body)

    by_type = {p.op_type: p for p in points}
    means = [p.mean for p in points]
    # the paper's range: speed-ups between ~1.1 and ~1.9
    assert 1.0 <= min(means) and max(means) <= 2.2
    assert max(means) - min(means) > 0.2, "ratios should vary across types"
    # within-type variance from input sizes exists
    assert any(p.spread > 0.1 for p in points)
    # compute-bound convs see a larger gap than the mix of ops overall
    assert by_type["Conv2D"].mean >= by_type["Conv1D"].mean
