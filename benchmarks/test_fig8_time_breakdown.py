"""Fig. 8: per-iteration computation/communication breakdown (8 GPUs).

Paper shape: with HeteroG both computation and communication shrink vs
the best DP baseline, and the overlap ratio (comp+comm)/iteration rises
(VGG19: 1.31 -> 1.47 vs CP-AR; BERT: 1.21 -> 1.56 vs CP-PS).
"""

import pytest

from repro.experiments import (
    fig8_time_breakdown,
    paper_values,
    render_fig8,
)


@pytest.fixture(scope="module")
def bars():
    return fig8_time_breakdown()


def test_fig8_time_breakdown(benchmark, report, bars):
    benchmark.pedantic(lambda: bars, rounds=1, iterations=1)
    body = render_fig8(bars)
    body += "\n\npaper Fig. 8 (per-iter / computation / communication):\n"
    for model, schemes in paper_values.FIG8.items():
        for scheme, (t, comp, comm) in schemes.items():
            body += (f"  {model:12s} {scheme:8s} {t:.3f}  {comp:.2f}  "
                     f"{comm:.2f}\n")
    report("Fig. 8 — computation/communication breakdown", body)


def test_heterog_reduces_iteration_time(bars):
    by = {(b.model, b.scheme): b for b in bars}
    assert (by[("vgg19", "HeteroG")].per_iteration
            <= by[("vgg19", "CP-AR")].per_iteration * 1.02)
    assert (by[("bert_large", "HeteroG")].per_iteration
            < by[("bert_large", "CP-PS")].per_iteration)


def test_overlap_exists(bars):
    """Computation and communication overlap: comp+comm exceeds the
    iteration time whenever communication is non-trivial."""
    for b in bars:
        if b.communication > 0.1 * b.per_iteration:
            assert b.overlap_ratio > 1.0, (b.model, b.scheme)
        assert b.overlap_ratio <= 2.0 + 1e-9


def test_heterog_communication_not_larger(bars):
    by = {(b.model, b.scheme): b for b in bars}
    assert (by[("bert_large", "HeteroG")].communication
            <= by[("bert_large", "CP-PS")].communication * 1.1)
