"""Batched population evaluation: lane-pruned sweep vs reference serial.

The ``evaluate_many`` PR makes one redesigned surface the canonical way
to evaluate a *population* of candidate strategies: a shared
:class:`~repro.simulation.batch.LanePlanner` prices all K lanes off one
source-graph lowering, lanes whose admissible bound already exceeds the
best-so-far are killed **before compilation** ("prebound"), and the
survivors run the unchanged serial pipeline — so every surviving lane
(and the winner) is bit-identical to its serial evaluation.

This benchmark runs the PR's reference workload — a 16-candidate cold
search — over three independently sampled pools (seeds 0, 1, 2) and
compares:

- **reference serial** — a per-candidate ``evaluate`` loop on a fresh
  ``PlanBuilder(..., engine="reference")``: the pre-batching pipeline
  on the pure-python event loop, which is also the paired-fuzzing
  baseline (``tests/test_batched_identity.py``);
- **batched** — ``evaluate_many(pool, best=BestSoFar())`` on a fresh
  default-engine builder: lane bounds, prebound kills, ascending-bound
  evaluation order, kernel event loop.

Correctness gates (also the CI ``--quick`` smoke step): every surviving
lane's makespan — and the winning (index, makespan) pair — must be
**bit-identical** to the reference serial sweep on every pool; killed
lanes must report admissible bounds (never above their serial
makespan); and the aggregate speedup must not regress by more than 25%
against the committed baseline.  The full run additionally targets the
PR's headline: >= 3x aggregate over the three pools.

Methodology matches ``test_candidate_pruning``: ``time.process_time``,
best-of-N repetitions, GC paused around the timed regions; per-pool
times are summed before the ratio so no single lucky pool carries the
gate.
"""

from __future__ import annotations

import gc
import json
import os
import time

import numpy as np
import pytest

from repro.agent.policy import actions_to_strategy, num_actions
from repro.cluster import cluster_4gpu, cluster_8gpu
from repro.graph.grouping import group_operations
from repro.graph.models import build_model
from repro.plan import BestSoFar, PlanBuilder
from repro.profiling import Profiler

#: measured speedup may drop to this fraction of the committed baseline
#: before the benchmark fails (machine-relative, so portable)
REGRESSION_TOLERANCE = 0.75

#: the full-size run's absolute target (the PR's headline number)
FULL_TARGET_SPEEDUP = 3.0

POOL_SEEDS = (0, 1, 2)

RESULT_NAME = "BENCH_batched_eval.json"


def grouped_candidates(graph, cluster, n, *, groups=8, seed=0):
    """``n`` candidates drawn from the search's per-group action space
    (random MP/DP action per operation group — a cold policy's sampling
    distribution)."""
    rng = np.random.default_rng(seed)
    grouping = group_operations(graph, {op: 1.0 for op in graph.op_names},
                                groups)
    return [
        actions_to_strategy(
            graph, cluster, grouping,
            rng.integers(0, num_actions(cluster), grouping.num_groups))
        for _ in range(n)
    ]


@pytest.fixture(scope="module")
def setup(request):
    quick = request.config.getoption("--quick")
    if quick:
        cluster = cluster_4gpu()
        graph = build_model("inception_v3", "tiny")
        reps = 2
    else:
        cluster = cluster_8gpu()
        graph = build_model("inception_v3", "bench")
        reps = 2
    n = 16  # the PR's reference workload: a 16-candidate cold search
    profile = Profiler(seed=0).profile(graph, cluster)
    return quick, graph, cluster, profile, n, reps


def _timed_best(fn, reps):
    """Best-of-``reps`` CPU seconds with the GC paused, plus last value."""
    best = None
    value = None
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(reps):
            start = time.process_time()
            value = fn()
            elapsed = time.process_time() - start
            best = elapsed if best is None or elapsed < best else best
    finally:
        if gc_was_enabled:
            gc.enable()
    return best, value


def _winner(times):
    idx = min(range(len(times)), key=times.__getitem__)
    return idx, times[idx]


def test_batched_eval_speedup(setup, report, results_dir):
    quick, graph, cluster, profile, n, reps = setup

    serial_total = 0.0
    batched_total = 0.0
    stages_total: dict = {}
    per_pool = []
    for seed in POOL_SEEDS:
        pool = grouped_candidates(graph, cluster, n, seed=seed)

        def serial():
            builder = PlanBuilder(graph, cluster, profile,
                                  engine="reference")
            return [builder.evaluate(s) for s in pool]

        def batched():
            builder = PlanBuilder(graph, cluster, profile)
            return builder.evaluate_many(pool, best=BestSoFar())

        serial_s, serial_outcomes = _timed_best(serial, reps)
        batched_s, batched_outcomes = _timed_best(batched, reps)

        serial_times = [o.time if o.feasible else float("inf")
                        for o in serial_outcomes]
        stages: dict = {"full": 0}
        for got, want in zip(batched_outcomes, serial_outcomes):
            if got.pruned:
                stages[got.prune_stage] = stages.get(got.prune_stage, 0) + 1
                # admissible: a killed lane provably could not have won
                assert got.bound is not None
                if want.feasible:
                    assert got.bound <= want.time + 1e-9, (
                        f"pool seed {seed}: killed lane's bound "
                        f"{got.bound} exceeds its serial makespan "
                        f"{want.time}")
            else:
                stages["full"] += 1
                # surviving lane: bit-identical to the reference serial
                assert got.time == want.time, (
                    f"pool seed {seed}: surviving lane diverged from "
                    f"reference serial ({got.time} != {want.time})")
                assert got.feasible == want.feasible
        batched_times = [o.time if o.feasible else float("inf")
                         for o in batched_outcomes]
        assert _winner(batched_times) == _winner(serial_times), (
            f"pool seed {seed}: batched sweep changed the winner")

        serial_total += serial_s
        batched_total += batched_s
        for stage, count in stages.items():
            stages_total[stage] = stages_total.get(stage, 0) + count
        per_pool.append({
            "seed": seed,
            "serial_cpu_seconds": round(serial_s, 3),
            "batched_cpu_seconds": round(batched_s, 3),
            "speedup": round(serial_s / batched_s, 2)
            if batched_s > 0 else float("inf"),
            "stages": stages,
        })

    assert stages_total.get("prebound", 0) > 0, \
        "the lane bound never killed a candidate before compilation"

    speedup = serial_total / batched_total if batched_total > 0 \
        else float("inf")

    mode = "quick" if quick else "full"
    committed_path = results_dir / RESULT_NAME
    baseline_speedup = None
    committed = {}
    if committed_path.exists():
        committed = json.loads(committed_path.read_text())
        baseline_speedup = committed.get(mode, {}).get("speedup")
    if baseline_speedup is not None:
        floor = baseline_speedup * REGRESSION_TOLERANCE
        assert speedup >= floor, (
            f"batched-eval speedup regressed: {speedup:.2f}x vs committed "
            f"{baseline_speedup:.2f}x (floor {floor:.2f}x)"
        )
    if not quick:
        assert speedup >= FULL_TARGET_SPEEDUP, (
            f"aggregate batched-vs-serial speedup {speedup:.2f}x below "
            f"the {FULL_TARGET_SPEEDUP}x target"
        )

    numbers = {
        "model": graph.name,
        "cluster": str(cluster),
        "candidates": n,
        "pools": len(POOL_SEEDS),
        "reps": reps,
        "cpu_cores": os.cpu_count(),
        "serial_cpu_seconds": round(serial_total, 3),
        "batched_cpu_seconds": round(batched_total, 3),
        "speedup": round(speedup, 2),
        "lanes_full": stages_total.get("full", 0),
        "lanes_prebound": stages_total.get("prebound", 0),
        "lanes_bound": stages_total.get("bound", 0),
        "lanes_midsim": stages_total.get("midsim", 0),
        "winner_identical": True,
        "per_pool": per_pool,
        "committed_baseline_speedup": baseline_speedup,
    }
    if not quick:
        # refresh the full section; keep the quick record intact
        committed["full"] = {k: v for k, v in numbers.items()
                             if k != "committed_baseline_speedup"}
        committed_path.write_text(json.dumps(committed, indent=2) + "\n")

    body = "\n".join(f"{k:28s}: {v}" for k, v in numbers.items()
                     if k != "per_pool")
    body += "\nper_pool:\n" + "\n".join(
        f"  seed {p['seed']}: {p['serial_cpu_seconds']}s -> "
        f"{p['batched_cpu_seconds']}s ({p['speedup']}x, {p['stages']})"
        for p in per_pool)
    report(f"Batched population evaluation ({mode}) — "
           f"reference serial vs evaluate_many", body)
