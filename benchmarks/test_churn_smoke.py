"""Churn benchmark: elastic fleets vs replan-always vs ride.

Regenerates the capacity-churn comparison — every model family starts
on the deliberately weak two-GPU base fleet and faces the two canonical
capacity events (a V100 server arriving; a device preempted with a
two-iteration spot notice) under the ``elastic``, ``replan`` and
``ride`` policies with identical seeded engines.

Correctness gates (also the CI ``--quick`` churn smoke step):

- **arrival** — the elastic policy must adopt the new capacity (a
  ``scale_up`` recovery fired), the replan must be *warm* (plan-cache
  hits > 0) and the elastic total makespan must beat riding the old
  fleet;
- **preempt** — the elastic drain inside the notice window must lose
  zero work and post a strictly lower MTTR than replan-on-crash, while
  ride stalls (a dead device cannot be ridden out);
- the elastic-over-ride arrival advantage must not regress by more than
  25% against the committed baseline (machine-relative wall-clock
  ratio, so portable).
"""

from __future__ import annotations

import json

import pytest

from repro import telemetry
from repro.experiments import churn_sweep, render_churn_sweep
from repro.experiments.churn import _scenario_kind, elastic_base_cluster
from repro.experiments.common import bench_agent_config, env_episodes
from repro.graph.models.registry import ALL_MODELS

#: the arrival advantage may drop to this fraction of the committed
#: baseline before the benchmark fails
REGRESSION_TOLERANCE = 0.75

RESULT_NAME = "BENCH_elastic_churn.json"


def _geomean(values):
    prod = 1.0
    for v in values:
        prod *= v
    return prod ** (1.0 / len(values))


@pytest.mark.benchmark
def test_elastic_churn(quick, report, results_dir):
    cluster = elastic_base_cluster()
    models = ["vgg19"] if quick else list(ALL_MODELS)
    with telemetry.session() as session:
        rows = churn_sweep(
            cluster,
            models=models,
            preset="tiny",
            steps=6 if quick else 8,
            episodes=2 if quick else env_episodes(8),
            replan_episodes=2 if quick else 4,
            agent_config=bench_agent_config(0),
            seed=0,
        )
        cache_hits = session.registry.get("plan_cache_hits_total",
                                          labels={"kind": "plan"})
    mode = "quick" if quick else "full"
    by = {(r.model, _scenario_kind(r.scenario), r.policy): r for r in rows}
    advantages = {}
    mttr_gaps = {}
    for model in models:
        elastic = by[(model, "arrival", "elastic")]
        ride = by[(model, "arrival", "ride")]
        # the arrival was adopted, warm, and paid off
        assert not elastic.stalled and not ride.stalled
        assert elastic.scale_ups >= 1, \
            f"{model}: elastic never scaled up onto the arrived server"
        assert elastic.plan_cache_hits > 0, \
            f"{model}: scale-up replan missed the warm plan layer"
        assert elastic.total_seconds < ride.total_seconds, \
            f"{model}: elastic did not beat ride under the arrival"
        advantages[model] = ride.total_seconds / elastic.total_seconds

        drained = by[(model, "preempt", "elastic")]
        late = by[(model, "preempt", "replan")]
        stalled = by[(model, "preempt", "ride")]
        # the notice-window drain lost nothing and beat replan-on-crash
        assert not drained.stalled and not late.stalled
        assert drained.report.lost_work == 0.0, \
            f"{model}: elastic drain lost work despite the spot notice"
        assert drained.report.mttr < late.report.mttr, \
            f"{model}: drain MTTR did not beat replan-on-crash"
        assert stalled.stalled   # dead devices cannot be ridden out
        mttr_gaps[model] = late.report.mttr - drained.report.mttr
    assert cache_hits is not None and cache_hits.value > 0

    advantage = _geomean(list(advantages.values()))
    committed_path = results_dir / RESULT_NAME
    baseline = None
    committed = {}
    if committed_path.exists():
        committed = json.loads(committed_path.read_text())
        baseline = committed.get(mode, {}).get("arrival_advantage")
    if baseline is not None:
        floor = baseline * REGRESSION_TOLERANCE
        assert advantage >= floor, (
            f"elastic arrival advantage regressed: {advantage:.2f}x vs "
            f"committed {baseline:.2f}x (floor {floor:.2f}x)"
        )

    numbers = {
        "models": models,
        "base_cluster": str(cluster),
        "arrival_advantage": round(advantage, 3),
        "arrival_advantage_per_model":
            {m: round(v, 3) for m, v in advantages.items()},
        "preempt_mttr_gap_per_model":
            {m: round(v, 4) for m, v in mttr_gaps.items()},
        "plan_cache_hits": int(cache_hits.value),
    }
    if not quick:
        # refresh the full section; keep the quick record intact
        committed["full"] = numbers
        committed_path.write_text(json.dumps(committed, indent=2) + "\n")

    gates = "\n".join(
        f"{m}: arrival {advantages[m]:.2f}x, "
        f"preempt MTTR gap {mttr_gaps[m]:.4f}s" for m in models)
    report(f"elastic churn ({mode}): elastic vs replan vs ride "
           f"({len(models)} models, base {cluster.num_devices} GPUs) — "
           f"geomean arrival advantage {advantage:.2f}x",
           render_churn_sweep(rows) + "\n" + gates)
