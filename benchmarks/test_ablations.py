"""Ablations of HeteroG's design choices (beyond the paper's tables).

Sec. 8 credits four ingredients: hybrid DP+MP, variable replica
distribution, mixed PS/AllReduce, and the execution schedule.  These
benches remove one ingredient at a time.
"""

import pytest

from repro.cluster import cluster_8gpu
from repro.experiments import (
    communication_ablation,
    fusion_ablation,
    grouping_ablation,
    jitter_sensitivity,
    render_ablation,
)


def test_communication_ablation(benchmark, report):
    rows = benchmark.pedantic(
        lambda: communication_ablation(cluster_8gpu(), model="bert_large"),
        rounds=1, iterations=1,
    )
    report("Ablation — hybrid PS/AllReduce vs single-method",
           render_ablation(rows))
    by = {r.variant: r for r in rows}
    hybrid = by["hybrid (HeteroG)"]
    assert not hybrid.oom
    # forcing a single comm method must not beat the hybrid
    for variant in ("AllReduce-only", "PS-only"):
        if not by[variant].oom:
            assert hybrid.time <= by[variant].time * 1.05, variant


def test_fusion_ablation(benchmark, report):
    rows = benchmark.pedantic(
        lambda: fusion_ablation(cluster_8gpu(), model="resnet200"),
        rounds=1, iterations=1,
    )
    report("Ablation — gradient fusion bucket size (EV-AR, ResNet)",
           render_ablation(rows))
    unfused = rows[0].time
    best = min(r.time for r in rows[1:])
    # moderate fusion must beat no fusion (the Horovod tensor-fusion win)
    assert best < unfused


def test_grouping_ablation(benchmark, report):
    rows = benchmark.pedantic(
        lambda: grouping_ablation(cluster_8gpu(), model="inception_v3",
                                  group_sizes=[4, 40]),
        rounds=1, iterations=1,
    )
    report("Ablation — number of op groups N", render_ablation(rows))
    by = {r.variant: r for r in rows}
    # finer groups give the search at least as good strategies
    assert by["N=40"].time <= by["N=4"].time * 1.10


def test_jitter_sensitivity(benchmark, report):
    out = benchmark.pedantic(
        lambda: jitter_sensitivity(cluster_8gpu(), model="vgg19"),
        rounds=1, iterations=1,
    )
    body = "\n".join(f"sigma={s:.2f} -> cv={cv:.4f}"
                     for s, cv in sorted(out.items()))
    report("Ablation — kernel-jitter sensitivity", body)
    assert out[0.0] == pytest.approx(0.0, abs=1e-9)
    assert out[0.1] > out[0.02]
