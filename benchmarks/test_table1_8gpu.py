"""Table 1: per-iteration training time, HeteroG vs DP baselines (8 GPUs).

Paper shape: HeteroG beats every DP baseline (speed-ups 19-222%); the
ranking among baselines is EV-PS slowest, then CP-PS, EV-AR, CP-AR for
the CNN/Transformer rows (PS ahead of AR for the BERT/XLNet rows); the
six large-model rows OOM under every DP scheme while HeteroG still
trains them.
"""

import pytest

from repro.cluster import cluster_8gpu
from repro.experiments import (
    paper_values,
    per_iteration_table,
    render_per_iteration,
)

MODELS = ["vgg19", "resnet200", "inception_v3", "mobilenet_v2", "nasnet",
          "transformer", "bert_large", "xlnet_large"]


@pytest.fixture(scope="module")
def rows():
    return per_iteration_table(cluster_8gpu(), 8, models=MODELS,
                               include_large=False)


def test_table1_small_models(benchmark, report, rows):
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)
    body = render_per_iteration(rows)
    body += "\n\npaper Table 1 (HeteroG, EV-PS, EV-AR, CP-PS, CP-AR):\n"
    for model, vals in paper_values.TABLE1.items():
        body += f"  {model:14s} " + "  ".join(f"{v:.3f}" for v in vals) + "\n"
    report("Table 1 — per-iteration time, 8 GPUs", body)


def test_table1_heterog_wins(rows):
    """HeteroG must not lose to any feasible DP baseline."""
    for row in rows:
        assert not row.heterog.oom, row.label
        for name, measured in row.baselines.items():
            if not measured.oom:
                assert row.heterog.time <= measured.time * 1.02, (
                    f"{row.label}: HeteroG {row.heterog.time:.3f}s vs "
                    f"{name} {measured.time:.3f}s"
                )


def test_table1_baseline_ordering(rows):
    """PS baselines are the slow ones for comm-heavy CNN/Transformer rows
    (the paper's EV-PS column is worst on every such row)."""
    for row in rows:
        if row.model in ("vgg19", "resnet200", "inception_v3",
                         "transformer"):
            ev_ps = row.baselines["EV-PS"]
            cp_ar = row.baselines["CP-AR"]
            if not (ev_ps.oom or cp_ar.oom):
                assert ev_ps.time > cp_ar.time, row.label


def test_table1_meaningful_speedup(rows):
    """Across the board HeteroG should deliver a paper-like improvement
    over the *worst* DP baseline (paper: 35.7% .. 222.4%)."""
    for row in rows:
        worst = max(
            (m.time for m in row.baselines.values() if not m.oom),
            default=None,
        )
        assert worst is not None
        speedup = (worst - row.heterog.time) / row.heterog.time
        assert speedup > 0.15, (
            f"{row.label}: only {speedup * 100:.1f}% over the worst baseline"
        )
