"""Fleet resilience smoke: a killed worker never loses a request.

Spawns a 2-worker process fleet behind the planning service, kills one
worker mid-request (a deterministic ``stall_labels`` window guarantees
the request is on the worker when the SIGKILL lands), and asserts the
fleet's core promise end to end:

- the request still completes, served by the surviving worker after
  re-dispatch;
- the episode is reconstructable from the journal — ``worker_lost`` ->
  ``request_redispatched`` -> ``completed`` in order — and every fleet
  event validates against the versioned schema, in memory and after a
  JSONL round trip;
- the fleet respawns a replacement, so capacity recovers.
"""

from __future__ import annotations

import json
import os
import signal

from repro.agent import AgentConfig
from repro.cluster import cluster_4gpu
from repro.config import HeteroGConfig
from repro.graph.models import build_model
from repro.service import PlanRequest, PlanningService, ProcessFleetBackend
from repro.telemetry import FlightRecorder, Journal, validate_event


def _request(graph, cluster, *, seed=0, **kw) -> PlanRequest:
    config = HeteroGConfig(seed=seed, agent=AgentConfig(
        max_groups=8, gat_hidden=16, gat_layers=2, gat_heads=2,
        strategy_dim=16, strategy_heads=2, strategy_layers=1))
    return PlanRequest(graph=graph, cluster=cluster, episodes=2,
                       config=config, **kw)


def test_fleet_survives_worker_kill(quick, report, tmp_path):
    size = "tiny" if quick else "bench"
    cluster = cluster_4gpu()
    graph = build_model("vgg19", size)
    recorder = FlightRecorder()

    backend = ProcessFleetBackend(
        2, heartbeat_interval=0.1, heartbeat_timeout=1.0,
        stall_labels={"victim": 1.5})
    with PlanningService(workers=2, backend=backend, name="smoke",
                         recorder=recorder) as service:
        ticket = service.submit(_request(graph, cluster,
                                         label="victim-kill"))
        victim = backend.wait_serving(ticket.fingerprint, timeout=30)
        assert victim is not None, "request never started serving"
        os.kill(backend.worker_pids()[victim], signal.SIGKILL)

        result = ticket.result(120)
        assert result.outcome.time > 0
        snapshot = backend.snapshot()
        assert snapshot["stats"]["lost"] == 1
        assert snapshot["stats"]["redispatched"] == 1
        assert snapshot["stats"]["spawned"] == 3  # 2 initial + respawn

    # the episode reconstructs from the journal, in causal order
    events = recorder.journal.events()
    kinds = [e.event for e in events]
    assert "worker_lost" in kinds
    assert "request_redispatched" in kinds
    assert kinds.index("worker_lost") \
        < kinds.index("request_redispatched") \
        < len(kinds) - 1 - kinds[::-1].index("completed")

    # every fleet event validates, in memory and after a round trip
    for entry in events:
        validate_event(entry.to_dict())
    path = tmp_path / "journal.jsonl"
    recorder.journal.save_jsonl(str(path))
    reloaded = Journal.load(str(path))
    assert [json.dumps(e.to_dict()) for e in reloaded] \
        == [json.dumps(e.to_dict()) for e in events]

    fleet_events = [e for e in events if e.phase == "fleet"]
    body = "\n".join(
        f"{e.event:26s} {' '.join(f'{k}={e.attrs[k]}' for k in sorted(e.attrs))}"
        for e in fleet_events)
    report("Fleet kill-mid-request smoke — redispatch + respawn", body)
