"""Table 6: time for the GNN to find the best strategy for unseen graphs.

Paper shape: fine-tuning a pretrained policy on an unseen graph reaches
the best strategy in ~15-26% of the from-scratch effort — the GNN has
learned transferable structure.

We measure episodes (the RL unit of work) and wall-clock; seeds are
disabled in both arms so only policy learning matters (Sec. 6.5 isolates
the GNN's contribution).
"""

import numpy as np
import pytest

from repro.cluster import cluster_4gpu
from repro.experiments import (
    paper_values,
    render_generalization,
    unseen_graph_table,
)

# a leave-one-out subset keeps the benchmark in CPU minutes
MODELS = ["vgg19", "mobilenet_v2", "transformer", "inception_v3"]


@pytest.fixture(scope="module")
def rows():
    return unseen_graph_table(cluster_4gpu(), preset="tiny", models=MODELS,
                              pretrain_episodes=30, scratch_episodes=40)


def test_table6_generalization(benchmark, report, rows):
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)
    body = render_generalization(rows)
    body += "\n\npaper Table 6 (scratch vs pretrained minutes, 8 GPUs):\n"
    for model, (s8, s12, p8, p12) in paper_values.TABLE6.items():
        body += (f"  {model:14s} scratch={s8:.1f}m pretrained={p8:.1f}m "
                 f"ratio={p8 / s8 * 100:.0f}%\n")
    report("Table 6 — generalization to unseen graphs", body)


def test_finetune_cheaper_on_average(rows):
    """Across held-out models, fine-tuning needs fewer episodes than
    training from scratch (the Table 6 ratio < 100%)."""
    ratios = [r.episode_ratio for r in rows]
    assert np.mean(ratios) < 0.9, f"mean ratio {np.mean(ratios):.2f}"


def test_finetune_reaches_target(rows):
    """The fine-tuned policy reaches scratch-quality strategies for most
    held-out graphs within the episode budget."""
    reached = sum(1 for r in rows
                  if r.finetune_episodes < r.scratch_episodes * 1.0
                  or r.finetune_episodes < 40)
    assert reached >= len(rows) - 1
