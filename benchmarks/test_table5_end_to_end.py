"""Table 5: end-to-end training time to the target accuracy.

Paper shape: HeteroG's graph rewriting preserves synchronous-SGD
semantics, so iterations-to-converge are unchanged and the end-to-end
speed-up mirrors the per-iteration speed-up; more GPUs (larger global
batch) reduce wall-clock for every scheme.
"""

import pytest

from repro.experiments import (
    end_to_end_table,
    paper_values,
    render_end_to_end,
)

MODELS = ["vgg19", "mobilenet_v2", "resnet200"]


@pytest.fixture(scope="module")
def rows():
    return end_to_end_table(models=MODELS)


def test_table5_end_to_end(benchmark, report, rows):
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)
    body = render_end_to_end(rows)
    body += "\n\npaper Table 5 (HeteroG / CP-PS / CP-AR minutes):\n"
    for model, per_gpu in paper_values.TABLE5.items():
        for gpus, vals in per_gpu.items():
            body += (f"  {model:14s} {gpus:2d} GPUs  "
                     + "  ".join(f"{v:.1f}" for v in vals) + "\n")
    report("Table 5 — end-to-end training minutes", body)


def test_heterog_fastest_end_to_end(rows):
    for row in rows:
        h = row.minutes["HeteroG"]
        assert h < row.minutes["CP-PS"]
        assert h <= row.minutes["CP-AR"] * 1.02


def test_more_gpus_faster(rows):
    """12-GPU end-to-end beats 8-GPU for each model and scheme."""
    by_model = {}
    for row in rows:
        by_model.setdefault(row.model, {})[row.gpus] = row
    for model, per_gpu in by_model.items():
        if 8 in per_gpu and 12 in per_gpu:
            for scheme in ("HeteroG", "CP-AR"):
                assert (per_gpu[12].minutes[scheme]
                        < per_gpu[8].minutes[scheme]), (model, scheme)


def test_speedup_mirrors_per_iteration(rows):
    """End-to-end speed-up equals per-iteration speed-up by construction
    (same iteration count) — the Sec. 6.4 argument."""
    for row in rows:
        h = row.minutes["HeteroG"]
        ratio = row.minutes["CP-PS"] / h
        assert ratio > 1.0
