"""Appendix: Theorems 1 and 2 on the list-scheduling bound.

- Theorem 1: T_LS <= (M + M^2) T* — checked via the proof's two
  inequalities (T_LS <= total work; T* >= work / (M + M^2)).
- Theorem 2: a crafted instance where strict-order LS approaches the
  bound: T_LS / T* ~ M + M^2 = H.
"""

import pytest

from repro.scheduling import (
    optimal_lower_bound,
    total_work,
    worst_case_instance,
)
from repro.simulation import Simulator


def _run_instance(h, k):
    inst = worst_case_instance(h=h, k=k, p=1.0, e=1e-6)
    res = Simulator(inst.cost).run(inst.graph, priorities=inst.priorities,
                                   strict=True)
    return inst, res


def test_appendix_worst_case(benchmark, report):
    inst, res = benchmark.pedantic(lambda: _run_instance(4, 30),
                                   rounds=1, iterations=1)
    lines = [
        f"H = M + M^2 = {inst.num_devices}",
        f"simulated T_LS      = {res.makespan:.3f}",
        f"closed-form T_LS    = {inst.t_ls_formula:.3f}",
        f"closed-form T*      = {inst.t_opt_formula:.3f}",
        f"simulated ratio     = {res.makespan / inst.t_opt_formula:.2f}",
        f"theorem bound       = {inst.num_devices}",
    ]
    report("Appendix — Theorem 2 worst-case instance", "\n".join(lines))
    assert res.makespan / inst.t_opt_formula == pytest.approx(
        inst.num_devices, rel=0.05
    )


@pytest.mark.parametrize("h,k", [(3, 20), (4, 20), (5, 15)])
def test_theorem1_bound_holds(h, k):
    inst, res = _run_instance(h, k)
    work = total_work(inst.graph, inst.cost)
    assert res.makespan <= work + 1e-9
    lower = optimal_lower_bound(inst.graph, inst.cost, h)
    assert res.makespan <= h * lower * 1.05


@pytest.mark.parametrize("h", [3, 4, 5, 6])
def test_ratio_scales_with_h(h):
    inst = worst_case_instance(h=h, k=25, p=1.0, e=1e-7)
    assert inst.ratio_formula == pytest.approx(h, rel=0.1)
