"""Fault-sweep benchmark: elastic replanning vs riding faults out.

Regenerates the resilience comparison table — for each fault scenario
(device crash, NIC degrade, straggler) the same healthy deployment is
trained under the ``replan`` and ``ride`` policies with identical
seeded engines, and the table reports completed steps, MTTR, lost work
and total makespan per policy.

Correctness gates (also the CI ``--quick`` fault-injection smoke): the
crash scenario must be *detected*, the replan policy must *recover* —
completing every step on a feasible plan that avoids the dead GPU,
reusing the warm plan cache — while the ride policy must stall, since a
dead device cannot be ridden out.
"""

from __future__ import annotations

import pytest

from repro import telemetry
from repro.cluster import cluster_4gpu, cluster_8gpu
from repro.experiments import fault_sweep, render_fault_sweep
from repro.experiments.common import bench_agent_config, env_episodes
from repro.graph.models import build_model


@pytest.mark.benchmark
def test_fault_sweep(quick, report):
    cluster = cluster_4gpu() if quick else cluster_8gpu()
    graph = build_model("vgg19", "tiny" if quick else "bench")
    with telemetry.session() as session:
        rows = fault_sweep(
            cluster,
            graph=graph,
            steps=6 if quick else 10,
            episodes=2 if quick else env_episodes(8),
            replan_episodes=2 if quick else 4,
            agent_config=bench_agent_config(0),
            seed=0,
        )
        cache_hits = session.registry.get("plan_cache_hits_total",
                                          labels={"kind": "plan"})
    report("fault sweep: replan vs ride-it-out "
           f"({cluster.num_devices} GPUs)", render_fault_sweep(rows))

    by_key = {(r.scenario, r.policy): r for r in rows}
    crash_scenario = next(r.scenario for r in rows
                          if r.scenario.startswith("crash"))
    replanned = by_key[(crash_scenario, "replan")]
    rode = by_key[(crash_scenario, "ride")]

    # the crash was detected and replanned around ...
    assert any(d.kind == "device_lost"
               for d in replanned.report.detections)
    assert replanned.replans >= 1
    # ... recovery completed: every step ran on a feasible plan
    assert not replanned.stalled
    assert replanned.report.completed_steps == replanned.report.steps
    recovery = next(r for r in replanned.report.recoveries
                    if r.action == "replan")
    assert recovery.devices_after == cluster.num_devices - 1
    assert recovery.plan_cache_hits > 0       # warm plan layer reused
    assert replanned.report.mttr > 0
    assert cache_hits is not None and cache_hits.value > 0
    # riding out a crash cannot finish the run
    assert rode.stalled
    # the no-faults baseline ran clean
    baseline = next(r for r in rows if r.scenario == "(no faults)")
    assert not baseline.report.recoveries and not baseline.stalled
