"""Table 4: per-iteration training time on all 12 GPUs.

Paper shape: same qualitative story as Table 1 at 1.5x the global batch
— HeteroG wins everywhere; communication takes a larger share with more
GPUs; the large models still OOM under DP.
"""

import pytest

from repro.cluster import cluster_12gpu
from repro.experiments import (
    paper_values,
    per_iteration_table,
    render_per_iteration,
)

MODELS = ["vgg19", "resnet200", "inception_v3", "mobilenet_v2", "nasnet",
          "transformer", "bert_large", "xlnet_large"]


@pytest.fixture(scope="module")
def rows():
    return per_iteration_table(cluster_12gpu(), 12, models=MODELS,
                               include_large=False)


def test_table4_12gpu(benchmark, report, rows):
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)
    body = render_per_iteration(rows)
    body += "\n\npaper Table 4 (HeteroG, EV-PS, EV-AR, CP-PS, CP-AR):\n"
    for model, vals in paper_values.TABLE4.items():
        body += f"  {model:14s} " + "  ".join(f"{v:.3f}" for v in vals) + "\n"
    report("Table 4 — per-iteration time, 12 GPUs", body)


def test_table4_heterog_wins(rows):
    for row in rows:
        assert not row.heterog.oom
        for name, measured in row.baselines.items():
            if not measured.oom:
                assert row.heterog.time <= measured.time * 1.02, (
                    f"{row.label} vs {name}"
                )


def test_table4_larger_batches_than_table1(rows):
    """Strong scaling: per-iteration times grow with the 1.5x batch for
    the same model (matching Table 4 > Table 1 in the paper)."""
    from repro.cluster import cluster_8gpu
    from repro.experiments import ExperimentContext
    from repro.baselines import dp_strategy
    from repro.graph.models import build_model
    cluster8 = cluster_8gpu()
    ctx8 = ExperimentContext(cluster8, seed=0)
    g8 = build_model("vgg19", "bench")
    t8 = ctx8.measure(g8, dp_strategy("CP-AR", g8, cluster8), "CP-AR",
                      use_order_scheduling=False).time
    row12 = next(r for r in rows if r.model == "vgg19")
    assert row12.baselines["CP-AR"].time > t8 * 0.9
