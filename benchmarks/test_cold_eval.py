"""Cold strategy-evaluation speed: kernel pipeline vs reference pipeline.

The array-lowered simulation kernel plus single-pass scheduling (the
winner of the scheduler's candidate race is reused instead of being
simulated a third time) is the cold-evaluation fast path.  This
benchmark measures it two ways:

- **new**    — ``PlanBuilder.evaluate`` as shipped: one compile, one
  array lowering, two kernel-engine simulations per candidate;
- **legacy** — the pre-kernel pipeline reconstructed in-process: the
  same compile, two ``engine="reference"`` candidate simulations, and a
  third reference simulation of the winning order (what ``evaluate``
  used to run).

Because both sides share the current compile path and its caches, the
in-process ratio *understates* the true pre-PR speedup; the committed
``BENCH_cold_eval.json`` additionally records a worktree measurement
against the actual pre-PR commit (see the ``pre_pr_worktree`` section).

Correctness gate (also the CI ``--quick`` smoke step): the two
pipelines must produce **bit-identical makespans** per candidate, and
the measured ratio must not regress by more than 25% against the
committed baseline ratio for the active mode.

Methodology: ``time.process_time`` (CPU time — the benchmark box is a
single-core container with noisy wall clocks), best-of-N repetitions,
garbage collector paused around the timed regions for both sides.
"""

from __future__ import annotations

import gc
import json
import os
import time

import pytest

from repro.cluster import cluster_4gpu, cluster_8gpu
from repro.graph.models import build_model
from repro.parallel.compiler import GraphCompiler
from repro.plan import PlanBuilder
from repro.profiling import Profiler
from repro.scheduling.list_scheduler import ListScheduler
from repro.simulation import ProfileCostModel, Simulator
from repro.simulation.kernel import lower

from test_evaluator_throughput import candidate_pool

#: measured ratio may drop to this fraction of the committed baseline
#: ratio before the benchmark fails (machine-relative, so portable)
REGRESSION_TOLERANCE = 0.75

RESULT_NAME = "BENCH_cold_eval.json"


@pytest.fixture(scope="module")
def setup(request):
    quick = request.config.getoption("--quick")
    if quick:
        cluster = cluster_4gpu()
        graph = build_model("vgg19", "tiny")
        n, reps = 8, 2
    else:
        cluster = cluster_8gpu()
        graph = build_model("inception_v3", "bench")
        n, reps = 16, 3
    profile = Profiler(seed=0).profile(graph, cluster)
    return quick, graph, cluster, profile, n, reps


def _legacy_evaluate(graph, cluster, profile, candidates):
    """The pre-kernel cold pipeline: compile + 3 reference simulations."""
    cost = ProfileCostModel(cluster, profile)
    sim = Simulator(cost)
    sched = ListScheduler()
    caps = {d.device_id: d.usable_memory_bytes for d in cluster.devices}
    makespans = []
    for strategy in candidates:
        compiler = GraphCompiler(cluster, profile)
        dist = compiler.compile(graph, strategy)
        resident = compiler.resident_bytes
        kernel = lower(dist)
        prios, _, _ = sched._rank_priorities(kernel, cost)
        rank_run = sim.run(dist, priorities=prios, engine="reference",
                           resident_bytes=dict(resident), capacities=caps,
                           trace=True)
        earliest_run = sim.run(dist, priorities=None, engine="reference",
                               resident_bytes=dict(resident),
                               capacities=caps, trace=True)
        if rank_run.makespan <= earliest_run.makespan:
            winner = prios
        else:
            winner = ListScheduler._trace_order(earliest_run.schedule)
        final = sim.run(dist, priorities=winner, engine="reference",
                        resident_bytes=dict(resident), capacities=caps)
        makespans.append(final.makespan)
    return makespans


def _timed_best(fn, reps):
    """Best-of-``reps`` CPU seconds with the GC paused, plus last value."""
    best = None
    value = None
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(reps):
            start = time.process_time()
            value = fn()
            elapsed = time.process_time() - start
            best = elapsed if best is None or elapsed < best else best
    finally:
        if gc_was_enabled:
            gc.enable()
    return best, value


def test_cold_eval_speedup(setup, report, results_dir):
    quick, graph, cluster, profile, n, reps = setup
    candidates = candidate_pool(graph, cluster, n)

    def new_path():
        builder = PlanBuilder(graph, cluster, profile)
        return [builder.evaluate(s).time for s in candidates]

    new_s, new_makespans = _timed_best(new_path, reps)
    legacy_s, legacy_makespans = _timed_best(
        lambda: _legacy_evaluate(graph, cluster, profile, candidates),
        max(2, reps - 1),
    )

    # bit-identity: the kernel pipeline (2 sims, winner reused) and the
    # reference pipeline (3 sims) must agree on every makespan exactly
    assert new_makespans == legacy_makespans, \
        "kernel pipeline diverged from the reference pipeline"

    ratio = legacy_s / new_s if new_s > 0 else float("inf")

    mode = "quick" if quick else "full"
    committed_path = results_dir / RESULT_NAME
    baseline_ratio = None
    committed = {}
    if committed_path.exists():
        committed = json.loads(committed_path.read_text())
        baseline_ratio = committed.get(mode, {}).get(
            "ratio_vs_reference_pipeline")
    if baseline_ratio is not None:
        floor = baseline_ratio * REGRESSION_TOLERANCE
        assert ratio >= floor, (
            f"cold-eval speedup regressed: {ratio:.2f}x vs committed "
            f"{baseline_ratio:.2f}x (floor {floor:.2f}x)"
        )

    numbers = {
        "model": graph.name,
        "cluster": str(cluster),
        "candidates": n,
        "reps": reps,
        "cpu_cores": os.cpu_count(),
        "new_cold_cpu_seconds": round(new_s, 3),
        "legacy_cold_cpu_seconds": round(legacy_s, 3),
        "ratio_vs_reference_pipeline": round(ratio, 2),
        "makespans_identical": True,
        "committed_baseline_ratio": baseline_ratio,
    }
    if not quick:
        # refresh the full section; keep quick + worktree records intact
        committed["full"] = {k: v for k, v in numbers.items()
                             if k != "committed_baseline_ratio"}
        committed_path.write_text(json.dumps(committed, indent=2) + "\n")

    body = "\n".join(f"{k:28s}: {v}" for k, v in numbers.items())
    report(f"Cold strategy evaluation ({mode}) — kernel vs reference "
           "pipeline", body)
