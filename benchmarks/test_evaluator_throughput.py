"""Strategy-evaluator throughput: cold vs cached vs parallel.

Strategy search is bounded by how many candidate deployments the
evaluator can score per second.  This benchmark measures the plan
layer's three paths on one candidate pool:

- **cold**     — fresh PlanBuilder, every candidate compiled, scheduled
  and simulated from scratch;
- **cached**   — the same candidates again on the warm builder (pure
  fingerprint lookups);
- **parallel** — a fresh builder fanned over a BatchEvaluator process
  pool.

Correctness gates (also exercised by the CI ``--quick`` smoke step):
the cached pass must actually hit the cache, cached throughput must be
at least 5x cold throughput, and the parallel pass must return
makespans bit-identical to the serial cold pass.  Parallel *throughput*
is reported but not gated: on few-core hosts the pool only adds
spawn/pickle overhead (the artifact records ``cpu_cores``).
"""

from __future__ import annotations

import json
import os
import random
import time
from typing import List

import pytest

from repro.cluster import cluster_4gpu, cluster_8gpu
from repro.graph.models import build_model
from repro.parallel.strategy import (
    CommMethod,
    ReplicaAllocation,
    Strategy,
    make_dp_strategy,
    make_mp_strategy,
)
from repro.plan import BatchEvaluator, PlanBuilder
from repro.profiling import Profiler

PARALLEL_WORKERS = 4


def candidate_pool(graph, cluster, n: int, seed: int = 0) -> List[Strategy]:
    """n distinct random strategies over the paper's M+4 action space."""
    rng = random.Random(seed)
    options = [make_mp_strategy(d) for d in cluster.device_ids]
    for alloc in (ReplicaAllocation.EVEN, ReplicaAllocation.PROPORTIONAL):
        for comm in (CommMethod.PS, CommMethod.ALLREDUCE):
            options.append(make_dp_strategy(cluster, alloc, comm))
    return [
        Strategy(graph, cluster,
                 {name: rng.choice(options) for name in graph.op_names})
        for _ in range(n)
    ]


def evals_per_sec(n: int, seconds: float) -> float:
    return n / seconds if seconds > 0 else float("inf")


@pytest.fixture(scope="module")
def setup(request):
    quick = request.config.getoption("--quick")
    if quick:
        cluster = cluster_4gpu()
        graph = build_model("vgg19", "tiny")
        n = 16
    else:
        cluster = cluster_8gpu()
        graph = build_model("inception_v3", "bench")
        n = 64
    profile = Profiler(seed=0).profile(graph, cluster)
    return quick, graph, cluster, profile, n


def test_evaluator_throughput(setup, report, results_dir):
    quick, graph, cluster, profile, n = setup
    candidates = candidate_pool(graph, cluster, n)

    # cold: everything compiled + scheduled + simulated from scratch
    cold_builder = PlanBuilder(graph, cluster, profile,
                               outcome_cache_size=4 * n)
    start = time.perf_counter()
    cold = [cold_builder.evaluate(s) for s in candidates]
    cold_s = time.perf_counter() - start

    # cached: identical candidates against the warm builder
    start = time.perf_counter()
    cached = [cold_builder.evaluate(s) for s in candidates]
    cached_s = time.perf_counter() - start
    hit_rate = cold_builder.outcome_cache.hit_rate
    assert hit_rate > 0, "second pass never hit the outcome cache"
    assert all(c is f for c, f in zip(cached, cold)), \
        "cached outcomes must be the memoized objects"
    speedup = cold_s / cached_s if cached_s > 0 else float("inf")
    assert speedup >= 5.0, \
        f"cached only {speedup:.1f}x faster than cold (need >= 5x)"

    # parallel: fresh context fanned over a process pool
    with BatchEvaluator(
        PlanBuilder(graph, cluster, profile, outcome_cache_size=4 * n),
        max_workers=PARALLEL_WORKERS,
    ) as batch:
        start = time.perf_counter()
        parallel = batch.evaluate(candidates)
        parallel_s = time.perf_counter() - start
    assert [o.time for o in parallel] == [o.time for o in cold], \
        "parallel evaluation must be bit-identical to serial"
    assert [o.oom for o in parallel] == [o.oom for o in cold]

    numbers = {
        "model": graph.name,
        "cluster": str(cluster),
        "candidates": n,
        "parallel_workers": PARALLEL_WORKERS,
        "cpu_cores": os.cpu_count(),
        "quick": quick,
        "cold_evals_per_sec": round(evals_per_sec(n, cold_s), 2),
        "cached_evals_per_sec": round(evals_per_sec(n, cached_s), 2),
        "parallel_evals_per_sec": round(evals_per_sec(n, parallel_s), 2),
        "cached_speedup_over_cold": round(speedup, 1),
        "outcome_cache_hit_rate": round(hit_rate, 3),
        "parallel_matches_serial": True,
    }
    if not quick:  # the committed trajectory tracks the full-size run
        out = results_dir / "BENCH_evaluator_throughput.json"
        out.write_text(json.dumps(numbers, indent=2) + "\n")

    body = "\n".join(f"{k:28s}: {v}" for k, v in numbers.items())
    report("Evaluator throughput — cold / cached / parallel", body)
