"""HeteroG reproduction — optimizing distributed DNN training deployment
in heterogeneous GPU clusters (Yi et al., CoNEXT 2020).

Public surface:

- :func:`get_runner` / :class:`Dataset` — the paper's client API.
- :class:`HeteroG` — the full pipeline facade (analyze / profile / plan /
  deploy / run).
- ``repro.graph`` — computation-graph IR and the benchmark model zoo.
- ``repro.cluster`` — heterogeneous cluster model and testbed presets.
- ``repro.parallel`` — strategies, distributed-graph IR, graph compiler.
- ``repro.scheduling`` — execution-order scheduling.
- ``repro.agent`` — GNN policy and REINFORCE strategy search.
- ``repro.baselines`` — DP baselines and related-work schemes.
- ``repro.plan`` — cached ExecutionPlan layer (PlanBuilder, PlanCache,
  BatchEvaluator) shared by search, baselines and deployment.
- ``repro.runtime`` — execution engine (testbed stand-in) and runner.
- ``repro.resilience`` — fault injection, failure detection and elastic
  replanning on the surviving cluster.
- ``repro.telemetry`` — metrics registry, span tracing, critical-path
  attribution.
"""

from . import (
    agent,
    cluster,
    graph,
    parallel,
    plan,
    profiling,
    resilience,
    runtime,
    scheduling,
    simulation,
    telemetry,
)
from .api import Dataset, get_runner, parse_device_info
from .config import HeteroGConfig
from .errors import (
    CompileError,
    DeviceLostError,
    GraphError,
    OutOfMemoryError,
    PlacementError,
    ProfilingError,
    ReproError,
    SimulationError,
    StrategyError,
)
from .heterog import HeteroG

__version__ = "1.0.0"

__all__ = [
    "get_runner",
    "Dataset",
    "parse_device_info",
    "HeteroG",
    "HeteroGConfig",
    "ReproError",
    "GraphError",
    "PlacementError",
    "CompileError",
    "SimulationError",
    "OutOfMemoryError",
    "DeviceLostError",
    "ProfilingError",
    "StrategyError",
    "graph",
    "cluster",
    "parallel",
    "scheduling",
    "agent",
    "plan",
    "profiling",
    "resilience",
    "runtime",
    "simulation",
    "telemetry",
    "__version__",
]
