"""HeteroG reproduction — optimizing distributed DNN training deployment
in heterogeneous GPU clusters (Yi et al., CoNEXT 2020).

Public surface:

- :func:`get_runner` / :class:`Dataset` — the paper's client API.
- :class:`HeteroG` — the full pipeline facade (analyze / profile / plan /
  deploy / run).
- ``repro.graph`` — computation-graph IR and the benchmark model zoo.
- ``repro.cluster`` — heterogeneous cluster model and testbed presets.
- ``repro.parallel`` — strategies, distributed-graph IR, graph compiler.
- ``repro.scheduling`` — execution-order scheduling.
- ``repro.agent`` — GNN policy and REINFORCE strategy search.
- ``repro.baselines`` — DP baselines and related-work schemes.
- ``repro.plan`` — cached ExecutionPlan layer (PlanBuilder, PlanCache,
  BatchEvaluator) shared by search, baselines and deployment.
- ``repro.runtime`` — execution engine (testbed stand-in) and runner.
- ``repro.service`` — the long-lived planning service (typed
  :class:`PlanRequest`/:class:`PlanResult` surface, request coalescing,
  admission control); :func:`default_service` / :func:`plan_request` /
  :func:`submit` expose the process-wide instance.
- ``repro.resilience`` — fault injection, failure detection and elastic
  replanning on the surviving cluster.
- ``repro.elastic`` — time-varying fleets: Poisson churn schedules,
  spot preemption and the replan-or-ride scale-up economics.
- ``repro.telemetry`` — metrics registry, span tracing, critical-path
  attribution.
"""

from . import (
    agent,
    cluster,
    elastic,
    graph,
    parallel,
    plan,
    profiling,
    resilience,
    runtime,
    scheduling,
    service,
    simulation,
    telemetry,
)
from .api import (
    Dataset,
    default_service,
    get_runner,
    parse_device_info,
    postmortem,
    service_status,
    submit,
)
from .api import plan as plan_request
from .config import HeteroGConfig
from .errors import (
    CompileError,
    DeviceLostError,
    GraphError,
    JournalSchemaError,
    OutOfMemoryError,
    PlacementError,
    ProfilingError,
    ReproError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    ServiceTimeoutError,
    SimulationError,
    StrategyError,
)
from .heterog import HeteroG
from .service import PlanningService, PlanRequest, PlanResult

__version__ = "1.0.0"

__all__ = [
    "get_runner",
    "Dataset",
    "parse_device_info",
    "HeteroG",
    "HeteroGConfig",
    "PlanningService",
    "PlanRequest",
    "PlanResult",
    "default_service",
    "plan_request",
    "submit",
    "service_status",
    "postmortem",
    "ReproError",
    "JournalSchemaError",
    "ServiceError",
    "ServiceOverloadedError",
    "ServiceTimeoutError",
    "ServiceClosedError",
    "GraphError",
    "PlacementError",
    "CompileError",
    "SimulationError",
    "OutOfMemoryError",
    "DeviceLostError",
    "ProfilingError",
    "StrategyError",
    "graph",
    "cluster",
    "parallel",
    "scheduling",
    "agent",
    "plan",
    "profiling",
    "resilience",
    "elastic",
    "runtime",
    "service",
    "simulation",
    "telemetry",
    "__version__",
]
