"""Simulation results and derived metrics (per-iteration time, breakdowns)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


def union_length(intervals: List[Tuple[float, float]]) -> float:
    """Total length of the union of (start, end) intervals."""
    if not intervals:
        return 0.0
    intervals = sorted(intervals)
    total = 0.0
    cur_start, cur_end = intervals[0]
    for start, end in intervals[1:]:
        if start > cur_end:
            total += cur_end - cur_start
            cur_start, cur_end = start, end
        else:
            cur_end = max(cur_end, end)
    total += cur_end - cur_start
    return total


@dataclass
class SimulationResult:
    """Outcome of executing one distributed training iteration."""

    makespan: float
    # per-GPU total busy compute seconds
    device_busy: Dict[str, float] = field(default_factory=dict)
    # per-resource busy seconds for links
    link_busy: Dict[str, float] = field(default_factory=dict)
    # wall-clock during which >=1 communication op was in flight
    communication_time: float = 0.0
    # wall-clock during which >=1 GPU was computing
    computation_wall: float = 0.0
    peak_memory: Dict[str, float] = field(default_factory=dict)
    oom_devices: List[str] = field(default_factory=list)
    # op name -> (start, end); retained only when tracing is requested
    schedule: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    # the run aborted cooperatively after ``makespan`` exceeded the
    # caller's ``prune_above`` threshold; every other field is partial
    # and ``makespan`` is a *lower bound* on the true iteration time
    pruned: bool = False

    @property
    def oom(self) -> bool:
        return bool(self.oom_devices)

    @property
    def computation_time(self) -> float:
        """Max per-GPU busy compute time — the Fig. 8 'Computation' bar."""
        if not self.device_busy:
            return 0.0
        return max(self.device_busy.values())

    @property
    def overlap_ratio(self) -> float:
        """(computation + communication) / per-iteration time (Sec. 6.7);
        > 1 indicates computation/communication overlap."""
        if self.makespan <= 0:
            return 0.0
        return (self.computation_time + self.communication_time) / self.makespan

    def utilization(self) -> Dict[str, float]:
        """Per-GPU busy fraction of the iteration."""
        if self.makespan <= 0:
            return {d: 0.0 for d in self.device_busy}
        return {d: b / self.makespan for d, b in self.device_busy.items()}

    def summary(self) -> Dict[str, float]:
        return {
            "makespan": self.makespan,
            "computation_time": self.computation_time,
            "communication_time": self.communication_time,
            "overlap_ratio": self.overlap_ratio,
            "oom": float(self.oom),
        }
