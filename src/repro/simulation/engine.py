"""Discrete-event simulator of one distributed training iteration.

Implements the execution model of Sec. 4.2 / Sec. 5: every GPU runs at
most one computation op at a time; every link carries at most one tensor
at a time; an AllReduce seizes its whole ring of links plus the global
NCCL token.  Ready ops on a contended resource are started in priority
order (the Scheduler's computed order, or FIFO ready-arrival order as
TensorFlow's default engine does).

The same engine serves as the Strategy Maker's internal simulator (with
:class:`ProfileCostModel`) and as the testbed stand-in (with
:class:`TruthCostModel`); see DESIGN.md.

Work-conserving scheduling is implemented with per-resource wait queues:
a ready-but-blocked op parks on the first busy resource it needs and is
re-tried (in priority order) when that resource frees — O(1) amortized
per event instead of rescanning every blocked op.

Two interchangeable implementations run that model:

- the **kernel engine** (default): operates on a :class:`SimKernel`
  array lowering of the graph — integer op/resource ids, precomputed
  adjacency, resources, activation sizes and (for deterministic cost
  providers) durations.  One lowering is shared across ranking, both
  candidate-order simulations and every re-simulation of a plan.
- the **reference engine** (``engine="reference"``): the original
  string-keyed event loop, kept verbatim as the golden oracle for the
  equivalence suite (tests/test_sim_kernel.py).

Both produce bit-identical results: the kernel loop replicates the
reference loop's event ordering, tie-breaking counter draws, float
arithmetic order, and even dict insertion orders of the result tables.
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import Dict, List, Mapping, Optional, Tuple

from .. import telemetry
from ..errors import SimulationError
from ..parallel.distgraph import DistGraph, DistOp
from .costs import CostProvider
from .kernel import PRUNE_GUARD, SimKernel, lower
from .memory import MemoryTracker
from .metrics import SimulationResult, union_length

_ENGINES = ("kernel", "reference")


class Simulator:
    """Executes a :class:`DistGraph` under a cost provider."""

    def __init__(self, cost: CostProvider):
        self.cost = cost

    def run(
        self,
        graph: DistGraph,
        *,
        priorities: Optional[Mapping[str, int]] = None,
        resident_bytes: Optional[Dict[str, int]] = None,
        capacities: Optional[Dict[str, int]] = None,
        trace: bool = False,
        strict: bool = False,
        kernel: Optional[SimKernel] = None,
        engine: str = "kernel",
        prune_above: Optional[float] = None,
        _prio_ids: Optional[List[int]] = None,
    ) -> SimulationResult:
        """Simulate one iteration.

        ``priorities``: smaller number = runs earlier on a contended
        resource.  When omitted, FIFO (ready-arrival order) is used.

        ``strict``: enforce the priority order *per resource* even when the
        next-in-order op is not ready yet (non-work-conserving — the exact
        discipline analyzed by the paper's appendix).  Requires
        ``priorities`` to be a linear extension of the DAG order (upward
        ranks are); the default work-conserving mode skips blocked ops.

        ``kernel``: a pre-lowered :class:`SimKernel` for ``graph`` (e.g.
        the one cached on an ExecutionPlan).  When omitted, the kernel is
        taken from the graph's own lowering cache.  ``engine="reference"``
        selects the original dict-based loop instead (golden oracle; it
        ignores ``kernel``).

        ``prune_above``: cooperative mid-simulation pruning.  The event
        loop aborts as soon as it can prove the makespan strictly
        exceeds this threshold — either the simulated clock itself
        passes it, or a completing op's downstream chain
        (:meth:`SimKernel.tails_for`) pushes ``now + tail`` past it,
        which fires long before the clock does on a losing schedule —
        and returns a partial result with ``pruned=True`` whose
        ``makespan`` is a lower bound on the true one.  Callers must
        only pass it for deterministic cost providers — aborting early
        under a stochastic provider would change the jitter RNG draw
        sequence of later runs.

        ``_prio_ids`` (internal): ``priorities`` already lowered to a
        per-op-index list that is a permutation of ``range(n)`` — the
        scheduler passes its freshly computed order this way so the
        kernel engine skips re-mapping the dict through the name table.
        Must agree with ``priorities``; the kernel engine trusts it.
        """
        if engine not in _ENGINES:
            raise SimulationError(
                f"unknown simulation engine {engine!r}; expected one of "
                f"{_ENGINES}"
            )
        tel = telemetry.active()
        if tel is None:
            return self._dispatch(graph, priorities=priorities,
                                  resident_bytes=resident_bytes,
                                  capacities=capacities, trace=trace,
                                  strict=strict, kernel=kernel,
                                  engine=engine, tel=None,
                                  prune_above=prune_above,
                                  prio_ids=_prio_ids)
        with tel.span("simulate", graph=graph.name, ops=len(graph)):
            return self._dispatch(graph, priorities=priorities,
                                  resident_bytes=resident_bytes,
                                  capacities=capacities, trace=trace,
                                  strict=strict, kernel=kernel,
                                  engine=engine, tel=tel,
                                  prune_above=prune_above,
                                  prio_ids=_prio_ids)

    def _dispatch(self, graph, *, priorities, resident_bytes, capacities,
                  trace, strict, kernel, engine, tel, prune_above=None,
                  prio_ids=None):
        if engine == "reference":
            return self._run_reference(
                graph, priorities=priorities, resident_bytes=resident_bytes,
                capacities=capacities, trace=trace, strict=strict, tel=tel,
                prune_above=prune_above)
        return self._run_kernel(
            graph, kernel if kernel is not None else lower(graph),
            priorities=priorities, resident_bytes=resident_bytes,
            capacities=capacities, trace=trace, strict=strict, tel=tel,
            prune_above=prune_above, prio_ids=prio_ids)

    # ------------------------------------------------------------------ #
    # kernel engine: integer-indexed arrays, one lowering per graph
    # ------------------------------------------------------------------ #
    def _run_kernel(
        self,
        graph: DistGraph,
        kernel: SimKernel,
        *,
        priorities: Optional[Mapping[str, int]],
        resident_bytes: Optional[Dict[str, int]],
        capacities: Optional[Dict[str, int]],
        trace: bool,
        strict: bool,
        tel: Optional["telemetry.Telemetry"],
        prune_above: Optional[float] = None,
        prio_ids: Optional[List[int]] = None,
    ) -> SimulationResult:
        if strict and priorities is None:
            raise SimulationError("strict mode requires explicit priorities")
        wall_start = time.perf_counter() if tel is not None else 0.0
        prune_limit = float("inf") if prune_above is None else prune_above
        # the tail bound's fp rounding differs from the event loop's own
        # accumulation; require violation beyond the guard margin so a
        # cut is sound in floating point (the clock check stays exact —
        # ``now`` IS a completion time of the run being bounded)
        tail_limit = prune_limit * (1.0 + PRUNE_GUARD)
        was_pruned = False

        n = kernel.n
        names = kernel.names
        ops = kernel.ops
        res_of = kernel.res_ids
        nres = len(kernel.resource_names)
        is_compute = kernel.is_compute
        is_link = kernel.is_link
        succ_of = kernel.succ
        pred_of = kernel.pred
        pending = list(kernel.pred_count)

        use_fifo = priorities is None
        if use_fifo:
            prio: List[float] = []
        elif prio_ids is not None:
            prio = prio_ids
        else:
            get_prio = priorities.get
            prio = [get_prio(name, 0) for name in names]
        counter = itertools.count()
        heappush = heapq.heappush
        # When priorities are all distinct (always true for FIFO, whose
        # priorities are fresh counter draws, for every scheduler-built
        # order, and for a prio_ids permutation), waiter-heap entries
        # never tie on priority, so the tie-break counter is never
        # compared and release_resource may move a still-blocked waiter's
        # heap entry to its next queue verbatim instead of paying a
        # try_start round trip.
        fast_requeue = (use_fifo or prio_ids is not None
                        or len(set(prio)) == n)

        durations = kernel.durations_for(self.cost)
        cost_duration = self.cost.duration
        # tail-based abort: once op i completes at t, the makespan is at
        # least t + tails[i] (its downstream chain must still run), so a
        # losing simulation is detected long before the clock itself
        # crosses the threshold.  Only priced for deterministic costs.
        tails = (kernel.tails_for(self.cost)
                 if prune_above is not None else None)

        # strict mode: per-resource queues in priority order; an op may only
        # start while it is at the head of every one of its resource queues
        if strict:
            strict_queues: List[List[int]] = [[] for _ in range(nres)]
            for i in range(n):
                for r in res_of[i]:
                    strict_queues[r].append(i)
            for queue in strict_queues:
                queue.sort(key=prio.__getitem__)
            head_index = [0] * nres

        # memory state, lowered: run-local device table seeded from the
        # resident map, extended in first-charge order (replicating the
        # MemoryTracker's dict insertion order for peaks and OOM reports)
        charge_dev = kernel.charge_dev
        out_bytes = kernel.out_bytes
        run_dev_of = [-1] * len(kernel.mem_dev_names)
        run_dev_names: List[str] = []
        mem_cur: List[float] = []
        mem_peak: List[float] = []
        if resident_bytes:
            mem_dev_index = kernel.mem_dev_index
            for dev, b in resident_bytes.items():
                ki = mem_dev_index.get(dev)
                if ki is not None:
                    run_dev_of[ki] = len(run_dev_names)
                run_dev_names.append(dev)
                mem_cur.append(float(b))
                mem_peak.append(float(b))
        refs = list(kernel.succ_count)

        resource_busy = [False] * nres
        # per-resource priority heap of (priority, tiebreak, op) waiters
        waiting: List[Optional[List[Tuple[float, int, int]]]] = [None] * nres
        now = 0.0
        completions: List[Tuple[float, int, int]] = []
        started = [0.0] * n
        start_order: List[int] = []
        finished = [0.0] * n
        device_busy: Dict[int, float] = {}
        link_intervals: Dict[int, List[Tuple[float, float]]] = {}
        comm_intervals: List[Tuple[float, float]] = []
        compute_intervals: List[Tuple[float, float]] = []
        in_wait_queue = [False] * n
        wait_seen = [False] * n
        wait_order: List[int] = []
        # telemetry: when each op first became ready / where it last parked
        if tel is not None:
            ready_seen = [False] * n
            ready_at = [0.0] * n
            parked_on = [-1] * n
            registry = tel.registry
            # metric handles are resolved once, outside the event loop
            queue_wait_hist = registry.histogram(
                "sim_queue_wait_seconds",
                help="simulated time ops spend ready but blocked",
            )
            resource_names = kernel.resource_names
            res_wait_counters: Dict[int, object] = {}
            ops_counters = {
                kind: registry.counter(
                    "sim_ops_total", labels={"kind": kind},
                    help="dist-ops completed, by kind",
                )
                for kind in set(kernel.kind_values)
            }
            kind_counter_of = [ops_counters[k] for k in kernel.kind_values]

        mem_dev_names = kernel.mem_dev_names

        def try_start(i: int, p: float) -> None:
            """Start op ``i`` if possible; otherwise park it on the first
            busy resource it needs (or the strict-order head block)."""
            if tel is not None and not ready_seen[i]:
                ready_seen[i] = True
                ready_at[i] = now
            blocked = -1
            for r in res_of[i]:
                if resource_busy[r]:
                    blocked = r
                    break
            if blocked < 0 and strict:
                # wait on the first resource where this op is not at the
                # head of the queue
                for r in res_of[i]:
                    if strict_queues[r][head_index[r]] != i:
                        blocked = r
                        break
            if blocked >= 0:
                queue = waiting[blocked]
                if queue is None:
                    queue = waiting[blocked] = []
                heappush(queue, (p, next(counter), i))
                in_wait_queue[i] = True
                if not wait_seen[i]:
                    wait_seen[i] = True
                    wait_order.append(i)
                if tel is not None:
                    parked_on[i] = blocked
                return

            if strict:
                for r in res_of[i]:
                    head_index[r] += 1
            for r in res_of[i]:
                resource_busy[r] = True
            duration = durations[i] if durations is not None \
                else cost_duration(ops[i])
            if duration < 0:
                raise SimulationError(
                    f"negative duration for {names[i]}: {duration}"
                )
            # memory on start: charge the op's output to its device
            ki = charge_dev[i]
            if ki >= 0:
                size = out_bytes[i]
                if size > 0:
                    ri = run_dev_of[ki]
                    if ri < 0:
                        ri = len(run_dev_names)
                        run_dev_of[ki] = ri
                        run_dev_names.append(mem_dev_names[ki])
                        mem_cur.append(0.0)
                        mem_peak.append(0.0)
                    current = mem_cur[ri] + size
                    mem_cur[ri] = current
                    if current > mem_peak[ri]:
                        mem_peak[ri] = current
            started[i] = now
            start_order.append(i)
            if tel is not None:
                wait = now - ready_at[i]
                queue_wait_hist.observe(wait)
                blocked_r = parked_on[i]
                parked_on[i] = -1
                if blocked_r >= 0 and wait > 0:
                    counter_handle = res_wait_counters.get(blocked_r)
                    if counter_handle is None:
                        counter_handle = registry.counter(
                            "sim_resource_wait_seconds_total",
                            labels={"resource": resource_names[blocked_r]},
                            help="simulated wait attributed to each resource",
                        )
                        res_wait_counters[blocked_r] = counter_handle
                    counter_handle.inc(wait)
            heappush(completions, (now + duration, next(counter), i))

        def drain_waiters(resource: int, queue: List[Tuple[float, int, int]]
                          ) -> None:
            """Retry a freed resource's waiters in priority order."""
            # those still blocked re-park on whatever resource now blocks
            # them (possibly this one again)
            waiting[resource] = None
            if fast_requeue:
                # a waiter that is still blocked re-parks on its first
                # busy resource; that scan is everything try_start would
                # do for it, so do it inline and move the heap entry as
                # is (only its never-compared tie-break counter goes
                # stale).  In strict mode a fully-free waiter still goes
                # through try_start for the head-of-queue check.
                for entry in (queue if len(queue) == 1 else sorted(queue)):
                    i = entry[2]
                    blocked = -1
                    for r in res_of[i]:
                        if resource_busy[r]:
                            blocked = r
                            break
                    if blocked >= 0:
                        queue2 = waiting[blocked]
                        if queue2 is None:
                            queue2 = waiting[blocked] = []
                        heappush(queue2, entry)
                        if tel is not None:
                            parked_on[i] = blocked
                    else:
                        in_wait_queue[i] = False
                        try_start(i, entry[0])
                return
            for p, _, i in (queue if len(queue) == 1 else sorted(queue)):
                in_wait_queue[i] = False
                try_start(i, p)

        # kick off sources in priority order
        initial = sorted(
            ((next(counter) if use_fifo else prio[i]), next(counter), i)
            for i in kernel.sources
        )
        for p, _, i in initial:
            try_start(i, p)

        executed = 0
        heappop = heapq.heappop
        while completions:
            now, _, i = heappop(completions)
            if now > prune_limit:
                # cooperative abort: every remaining completion is at or
                # after ``now``, so the true makespan strictly exceeds
                # the threshold and ``now`` is an admissible lower bound
                was_pruned = True
                break
            if tails is not None and now + tails[i] > tail_limit:
                # ``i``'s downstream chain alone pushes the makespan past
                # the threshold; report the violated bound as the partial
                # makespan (still admissible, strictly tighter than now)
                was_pruned = True
                now += tails[i]
                break
            finished[i] = now
            executed += 1
            # memory on finish: release one reference on each input; a
            # producer's output is freed when its last consumer finishes
            # (an op with no consumers frees its own output immediately)
            for p in pred_of[i]:
                left = refs[p]
                if left <= 0:
                    raise SimulationError(
                        f"refcount underflow on {names[p]!r}"
                    )
                refs[p] = left - 1
                if left == 1:
                    kp = charge_dev[p]
                    if kp >= 0:
                        size = out_bytes[p]
                        if size > 0:
                            mem_cur[run_dev_of[kp]] -= size
            if refs[i] == 0:
                ki = charge_dev[i]
                if ki >= 0:
                    size = out_bytes[i]
                    if size > 0:
                        mem_cur[run_dev_of[ki]] -= size
            if tel is not None:
                kind_counter_of[i].inc()

            begin = started[i]
            resources = res_of[i]
            if is_compute[i]:
                device = resources[0]
                busy = device_busy.get(device)
                device_busy[device] = (now - begin) if busy is None \
                    else busy + (now - begin)
                compute_intervals.append((begin, now))
            else:
                comm_intervals.append((begin, now))
                for r in resources:
                    if is_link[r]:
                        intervals = link_intervals.get(r)
                        if intervals is None:
                            intervals = link_intervals[r] = []
                        intervals.append((begin, now))

            # new ready successors first (so a freed resource sees them)
            for s in succ_of[i]:
                left = pending[s] - 1
                pending[s] = left
                if left == 0:
                    try_start(s, next(counter) if use_fifo else prio[s])

            for r in resources:
                resource_busy[r] = False
                queue = waiting[r]
                if queue:
                    drain_waiters(r, queue)

        if executed != n and not was_pruned:
            stuck = [names[i] for i in range(n) if pending[i] > 0][:5]
            waiting_named = [names[i] for i in wait_order
                             if in_wait_queue[i]][:5]
            raise SimulationError(
                f"deadlock: executed {executed}/{n} ops; "
                f"stuck deps on {stuck}; parked {waiting_named}"
            )

        capacities = capacities or {}
        resource_names = kernel.resource_names
        result = SimulationResult(
            makespan=now,
            device_busy={resource_names[r]: busy
                         for r, busy in device_busy.items()},
            link_busy={
                resource_names[r]: union_length(intervals)
                for r, intervals in link_intervals.items()
            },
            communication_time=union_length(comm_intervals),
            computation_wall=union_length(compute_intervals),
            peak_memory={run_dev_names[ri]: mem_peak[ri]
                         for ri in range(len(run_dev_names))},
            oom_devices=[
                run_dev_names[ri] for ri in range(len(run_dev_names))
                if run_dev_names[ri] in capacities
                and mem_peak[ri] > capacities[run_dev_names[ri]]
            ],
            pruned=was_pruned,
        )
        if trace:
            # dict(zip(...)) keeps the iteration in C; insertion order is
            # start order, matching the reference engine's trace dict
            result.schedule = dict(zip(
                map(names.__getitem__, start_order),
                zip(map(started.__getitem__, start_order),
                    map(finished.__getitem__, start_order)),
            ))
        if tel is not None:
            self._observe_run(tel, executed, now, wall_start)
        return result

    # ------------------------------------------------------------------ #
    # reference engine: the original dict-keyed loop, kept verbatim as
    # the golden oracle for the kernel-equivalence suite
    # ------------------------------------------------------------------ #
    def _run_reference(
        self,
        graph: DistGraph,
        *,
        priorities: Optional[Mapping[str, int]],
        resident_bytes: Optional[Dict[str, int]],
        capacities: Optional[Dict[str, int]],
        trace: bool,
        strict: bool,
        tel: Optional["telemetry.Telemetry"],
        prune_above: Optional[float] = None,
    ) -> SimulationResult:
        if strict and priorities is None:
            raise SimulationError("strict mode requires explicit priorities")
        wall_start = time.perf_counter() if tel is not None else 0.0
        prune_limit = float("inf") if prune_above is None else prune_above
        # see the kernel engine: tail cuts must violate by more than the
        # fp guard margin; the clock check stays exact
        tail_limit = prune_limit * (1.0 + PRUNE_GUARD)
        was_pruned = False

        ops: Dict[str, DistOp] = {name: graph.op(name)
                                  for name in graph.op_names}
        resources_of: Dict[str, Tuple[str, ...]] = {
            name: op.resources() for name, op in ops.items()
        }
        pending_deps: Dict[str, int] = {
            name: len(graph.predecessors(name)) for name in ops
        }

        # strict mode: per-resource queues in priority order; an op may only
        # start while it is at the head of every one of its resource queues
        if strict:
            strict_queues: Dict[str, List[str]] = {}
            for name in ops:
                for r in resources_of[name]:
                    strict_queues.setdefault(r, []).append(name)
            for r, names in strict_queues.items():
                names.sort(key=lambda n: priorities.get(n, 0))
            head_index: Dict[str, int] = {r: 0 for r in strict_queues}

            def is_head(name: str) -> bool:
                return all(
                    strict_queues[r][head_index[r]] == name
                    for r in resources_of[name]
                )

            def advance_heads(name: str) -> None:
                for r in resources_of[name]:
                    head_index[r] += 1
        else:
            def is_head(name: str) -> bool:  # noqa: ARG001
                return True

            def advance_heads(name: str) -> None:  # noqa: ARG001
                return None

        # tail-based abort mirror of the kernel engine: same recursion,
        # same float accumulation order (successor list order), so pruned
        # partial results stay bit-identical across engines
        tails: Optional[Dict[str, float]] = None
        if (prune_above is not None
                and getattr(self.cost, "deterministic", False)):
            try:
                order = graph.topological_order()
            except Exception:
                order = None  # cyclic: deadlock detection handles it
            if order is not None:
                tails = {}
                duration_of = self.cost.duration
                for name in reversed(order):
                    tail = 0.0
                    for s in graph.successors(name):
                        t = duration_of(ops[s]) + tails[s]
                        if t > tail:
                            tail = t
                    tails[name] = tail

        memory = MemoryTracker(graph, resident_bytes or {})
        use_fifo = priorities is None
        counter = itertools.count()

        def priority_of(name: str) -> float:
            return next(counter) if use_fifo else priorities.get(name, 0)

        resource_busy: Dict[str, bool] = {}
        # per-resource priority heap of (priority, tiebreak, name) waiters
        waiting: Dict[str, List[Tuple[float, int, str]]] = {}
        now = 0.0
        completions: List[Tuple[float, int, str]] = []
        started: Dict[str, float] = {}
        finished: Dict[str, float] = {}
        device_busy: Dict[str, float] = {}
        link_intervals: Dict[str, List[Tuple[float, float]]] = {}
        comm_intervals: List[Tuple[float, float]] = []
        compute_intervals: List[Tuple[float, float]] = []
        in_wait_queue: Dict[str, bool] = {}
        # telemetry: when each op first became ready / where it last parked
        ready_at: Dict[str, float] = {}
        parked_on: Dict[str, str] = {}

        def try_start(name: str, prio: float) -> None:
            """Start ``name`` if possible; otherwise park it on the first
            busy resource it needs (or the strict-order head block)."""
            if tel is not None and name not in ready_at:
                ready_at[name] = now
            op = ops[name]
            blocked_on: Optional[str] = None
            for r in resources_of[name]:
                if resource_busy.get(r, False):
                    blocked_on = r
                    break
            if blocked_on is None and not is_head(name):
                # strict mode: wait on the first resource where this op is
                # not at the head of the queue
                for r in resources_of[name]:
                    if strict_queues[r][head_index[r]] != name:
                        blocked_on = r
                        break
            if blocked_on is not None:
                heapq.heappush(
                    waiting.setdefault(blocked_on, []),
                    (prio, next(counter), name),
                )
                in_wait_queue[name] = True
                if tel is not None:
                    parked_on[name] = blocked_on
                return

            advance_heads(name)
            for r in resources_of[name]:
                resource_busy[r] = True
            duration = self.cost.duration(op)
            if duration < 0:
                raise SimulationError(
                    f"negative duration for {name}: {duration}"
                )
            memory.on_start(op)
            started[name] = now
            if tel is not None:
                wait = now - ready_at.get(name, now)
                tel.registry.histogram(
                    "sim_queue_wait_seconds",
                    help="simulated time ops spend ready but blocked",
                ).observe(wait)
                blocked = parked_on.pop(name, None)
                if blocked is not None and wait > 0:
                    tel.registry.counter(
                        "sim_resource_wait_seconds_total",
                        labels={"resource": blocked},
                        help="simulated wait attributed to each resource",
                    ).inc(wait)
            heapq.heappush(completions,
                           (now + duration, next(counter), name))

        def release_resource(resource: str) -> None:
            """Free a resource and retry its waiters in priority order."""
            resource_busy[resource] = False
            queue = waiting.get(resource)
            if not queue:
                return
            # retry all current waiters; those still blocked re-park on
            # whatever resource now blocks them (possibly this one again)
            current, waiting[resource] = queue, []
            for prio, _, name in sorted(current):
                in_wait_queue[name] = False
                try_start(name, prio)

        # kick off sources in priority order
        initial = sorted(
            (priority_of(name), next(counter), name)
            for name, deps in pending_deps.items() if deps == 0
        )
        for prio, _, name in initial:
            try_start(name, prio)

        executed = 0
        total = len(ops)
        while completions:
            now, _, name = heapq.heappop(completions)
            if now > prune_limit:
                was_pruned = True
                break
            if tails is not None and now + tails[name] > tail_limit:
                was_pruned = True
                now += tails[name]
                break
            op = ops[name]
            finished[name] = now
            executed += 1
            memory.on_finish(op)
            if tel is not None:
                tel.registry.counter(
                    "sim_ops_total", labels={"kind": op.kind.value},
                    help="dist-ops completed, by kind",
                ).inc()

            begin = started[name]
            if op.is_compute:
                device_busy[op.device] = device_busy.get(op.device, 0.0) + (
                    now - begin
                )
                compute_intervals.append((begin, now))
            else:
                comm_intervals.append((begin, now))
                for r in resources_of[name]:
                    if r.startswith("link:"):
                        link_intervals.setdefault(r, []).append((begin, now))

            # new ready successors first (so a freed resource sees them)
            for succ in graph.successors(name):
                pending_deps[succ] -= 1
                if pending_deps[succ] == 0:
                    try_start(succ, priority_of(succ))

            for r in resources_of[name]:
                release_resource(r)

        if executed != total and not was_pruned:
            stuck = [n for n, d in pending_deps.items() if d > 0][:5]
            waiting_named = [n for n, w in in_wait_queue.items() if w][:5]
            raise SimulationError(
                f"deadlock: executed {executed}/{total} ops; "
                f"stuck deps on {stuck}; parked {waiting_named}"
            )

        capacities = capacities or {}
        result = SimulationResult(
            makespan=now,
            device_busy=device_busy,
            link_busy={
                r: union_length(iv) for r, iv in link_intervals.items()
            },
            communication_time=union_length(comm_intervals),
            computation_wall=union_length(compute_intervals),
            peak_memory=dict(memory.peak),
            oom_devices=memory.oom_devices(capacities),
            pruned=was_pruned,
        )
        if trace:
            result.schedule = {
                n: (started[n], finished.get(n, 0.0)) for n in started
            }
        if tel is not None:
            self._observe_run(tel, executed, now, wall_start)
        return result

    # ------------------------------------------------------------------ #
    @staticmethod
    def _observe_run(tel: "telemetry.Telemetry", executed: int,
                     makespan: float, wall_start: float) -> None:
        wall = time.perf_counter() - wall_start
        reg = tel.registry
        reg.counter("sim_runs_total",
                    help="simulator invocations").inc()
        reg.counter("sim_events_total",
                    help="completion events processed").inc(executed)
        reg.histogram("sim_run_wall_seconds",
                      help="wall-clock per simulator run").observe(wall)
        reg.histogram("sim_makespan_seconds",
                      help="simulated iteration makespans").observe(makespan)
        if wall > 0:
            reg.gauge(
                "sim_events_per_second",
                help="events simulated per wall-clock second (last run)",
            ).set(executed / wall)
