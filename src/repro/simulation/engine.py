"""Discrete-event simulator of one distributed training iteration.

Implements the execution model of Sec. 4.2 / Sec. 5: every GPU runs at
most one computation op at a time; every link carries at most one tensor
at a time; an AllReduce seizes its whole ring of links plus the global
NCCL token.  Ready ops on a contended resource are started in priority
order (the Scheduler's computed order, or FIFO ready-arrival order as
TensorFlow's default engine does).

The same engine serves as the Strategy Maker's internal simulator (with
:class:`ProfileCostModel`) and as the testbed stand-in (with
:class:`TruthCostModel`); see DESIGN.md.

Work-conserving scheduling is implemented with per-resource wait queues:
a ready-but-blocked op parks on the first busy resource it needs and is
re-tried (in priority order) when that resource frees — O(1) amortized
per event instead of rescanning every blocked op.
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import Dict, List, Mapping, Optional, Tuple

from .. import telemetry
from ..errors import SimulationError
from ..parallel.distgraph import DistGraph, DistOp
from .costs import CostProvider
from .memory import MemoryTracker
from .metrics import SimulationResult, union_length


class Simulator:
    """Executes a :class:`DistGraph` under a cost provider."""

    def __init__(self, cost: CostProvider):
        self.cost = cost

    def run(
        self,
        graph: DistGraph,
        *,
        priorities: Optional[Mapping[str, int]] = None,
        resident_bytes: Optional[Dict[str, int]] = None,
        capacities: Optional[Dict[str, int]] = None,
        trace: bool = False,
        strict: bool = False,
    ) -> SimulationResult:
        """Simulate one iteration.

        ``priorities``: smaller number = runs earlier on a contended
        resource.  When omitted, FIFO (ready-arrival order) is used.

        ``strict``: enforce the priority order *per resource* even when the
        next-in-order op is not ready yet (non-work-conserving — the exact
        discipline analyzed by the paper's appendix).  Requires
        ``priorities`` to be a linear extension of the DAG order (upward
        ranks are); the default work-conserving mode skips blocked ops.
        """
        tel = telemetry.active()
        if tel is None:
            return self._run(graph, priorities=priorities,
                             resident_bytes=resident_bytes,
                             capacities=capacities, trace=trace,
                             strict=strict, tel=None)
        with tel.span("simulate", graph=graph.name, ops=len(graph)):
            return self._run(graph, priorities=priorities,
                             resident_bytes=resident_bytes,
                             capacities=capacities, trace=trace,
                             strict=strict, tel=tel)

    def _run(
        self,
        graph: DistGraph,
        *,
        priorities: Optional[Mapping[str, int]],
        resident_bytes: Optional[Dict[str, int]],
        capacities: Optional[Dict[str, int]],
        trace: bool,
        strict: bool,
        tel: Optional["telemetry.Telemetry"],
    ) -> SimulationResult:
        if strict and priorities is None:
            raise SimulationError("strict mode requires explicit priorities")
        wall_start = time.perf_counter() if tel is not None else 0.0

        ops: Dict[str, DistOp] = {name: graph.op(name)
                                  for name in graph.op_names}
        resources_of: Dict[str, Tuple[str, ...]] = {
            name: op.resources() for name, op in ops.items()
        }
        pending_deps: Dict[str, int] = {
            name: len(graph.predecessors(name)) for name in ops
        }

        # strict mode: per-resource queues in priority order; an op may only
        # start while it is at the head of every one of its resource queues
        if strict:
            strict_queues: Dict[str, List[str]] = {}
            for name in ops:
                for r in resources_of[name]:
                    strict_queues.setdefault(r, []).append(name)
            for r, names in strict_queues.items():
                names.sort(key=lambda n: priorities.get(n, 0))
            head_index: Dict[str, int] = {r: 0 for r in strict_queues}

            def is_head(name: str) -> bool:
                return all(
                    strict_queues[r][head_index[r]] == name
                    for r in resources_of[name]
                )

            def advance_heads(name: str) -> None:
                for r in resources_of[name]:
                    head_index[r] += 1
        else:
            def is_head(name: str) -> bool:  # noqa: ARG001
                return True

            def advance_heads(name: str) -> None:  # noqa: ARG001
                return None

        memory = MemoryTracker(graph, resident_bytes or {})
        use_fifo = priorities is None
        counter = itertools.count()

        def priority_of(name: str) -> float:
            return next(counter) if use_fifo else priorities.get(name, 0)

        resource_busy: Dict[str, bool] = {}
        # per-resource priority heap of (priority, tiebreak, name) waiters
        waiting: Dict[str, List[Tuple[float, int, str]]] = {}
        now = 0.0
        completions: List[Tuple[float, int, str]] = []
        started: Dict[str, float] = {}
        finished: Dict[str, float] = {}
        device_busy: Dict[str, float] = {}
        link_intervals: Dict[str, List[Tuple[float, float]]] = {}
        comm_intervals: List[Tuple[float, float]] = []
        compute_intervals: List[Tuple[float, float]] = []
        in_wait_queue: Dict[str, bool] = {}
        # telemetry: when each op first became ready / where it last parked
        ready_at: Dict[str, float] = {}
        parked_on: Dict[str, str] = {}

        def try_start(name: str, prio: float) -> None:
            """Start ``name`` if possible; otherwise park it on the first
            busy resource it needs (or the strict-order head block)."""
            if tel is not None and name not in ready_at:
                ready_at[name] = now
            op = ops[name]
            blocked_on: Optional[str] = None
            for r in resources_of[name]:
                if resource_busy.get(r, False):
                    blocked_on = r
                    break
            if blocked_on is None and not is_head(name):
                # strict mode: wait on the first resource where this op is
                # not at the head of the queue
                for r in resources_of[name]:
                    if strict_queues[r][head_index[r]] != name:
                        blocked_on = r
                        break
            if blocked_on is not None:
                heapq.heappush(
                    waiting.setdefault(blocked_on, []),
                    (prio, next(counter), name),
                )
                in_wait_queue[name] = True
                if tel is not None:
                    parked_on[name] = blocked_on
                return

            advance_heads(name)
            for r in resources_of[name]:
                resource_busy[r] = True
            duration = self.cost.duration(op)
            if duration < 0:
                raise SimulationError(
                    f"negative duration for {name}: {duration}"
                )
            memory.on_start(op)
            started[name] = now
            if tel is not None:
                wait = now - ready_at.get(name, now)
                tel.registry.histogram(
                    "sim_queue_wait_seconds",
                    help="simulated time ops spend ready but blocked",
                ).observe(wait)
                blocked = parked_on.pop(name, None)
                if blocked is not None and wait > 0:
                    tel.registry.counter(
                        "sim_resource_wait_seconds_total",
                        labels={"resource": blocked},
                        help="simulated wait attributed to each resource",
                    ).inc(wait)
            heapq.heappush(completions,
                           (now + duration, next(counter), name))

        def release_resource(resource: str) -> None:
            """Free a resource and retry its waiters in priority order."""
            resource_busy[resource] = False
            queue = waiting.get(resource)
            if not queue:
                return
            # retry all current waiters; those still blocked re-park on
            # whatever resource now blocks them (possibly this one again)
            current, waiting[resource] = queue, []
            for prio, _, name in sorted(current):
                in_wait_queue[name] = False
                try_start(name, prio)

        # kick off sources in priority order
        initial = sorted(
            (priority_of(name), next(counter), name)
            for name, deps in pending_deps.items() if deps == 0
        )
        for prio, _, name in initial:
            try_start(name, prio)

        executed = 0
        total = len(ops)
        while completions:
            now, _, name = heapq.heappop(completions)
            op = ops[name]
            finished[name] = now
            executed += 1
            memory.on_finish(op)
            if tel is not None:
                tel.registry.counter(
                    "sim_ops_total", labels={"kind": op.kind.value},
                    help="dist-ops completed, by kind",
                ).inc()

            begin = started[name]
            if op.is_compute:
                device_busy[op.device] = device_busy.get(op.device, 0.0) + (
                    now - begin
                )
                compute_intervals.append((begin, now))
            else:
                comm_intervals.append((begin, now))
                for r in resources_of[name]:
                    if r.startswith("link:"):
                        link_intervals.setdefault(r, []).append((begin, now))

            # new ready successors first (so a freed resource sees them)
            for succ in graph.successors(name):
                pending_deps[succ] -= 1
                if pending_deps[succ] == 0:
                    try_start(succ, priority_of(succ))

            for r in resources_of[name]:
                release_resource(r)

        if executed != total:
            stuck = [n for n, d in pending_deps.items() if d > 0][:5]
            waiting_named = [n for n, w in in_wait_queue.items() if w][:5]
            raise SimulationError(
                f"deadlock: executed {executed}/{total} ops; "
                f"stuck deps on {stuck}; parked {waiting_named}"
            )

        capacities = capacities or {}
        result = SimulationResult(
            makespan=now,
            device_busy=device_busy,
            link_busy={
                r: union_length(iv) for r, iv in link_intervals.items()
            },
            communication_time=union_length(comm_intervals),
            computation_wall=union_length(compute_intervals),
            peak_memory=dict(memory.peak),
            oom_devices=memory.oom_devices(capacities),
        )
        if trace:
            result.schedule = {
                n: (started[n], finished[n]) for n in started
            }
        if tel is not None:
            wall = time.perf_counter() - wall_start
            reg = tel.registry
            reg.counter("sim_runs_total",
                        help="simulator invocations").inc()
            reg.counter("sim_events_total",
                        help="completion events processed").inc(executed)
            reg.histogram("sim_run_wall_seconds",
                          help="wall-clock per simulator run").observe(wall)
            reg.histogram("sim_makespan_seconds",
                          help="simulated iteration makespans").observe(now)
            if wall > 0:
                reg.gauge(
                    "sim_events_per_second",
                    help="events simulated per wall-clock second (last run)",
                ).set(executed / wall)
        return result
