"""Array lowering of a :class:`DistGraph` for the simulation kernel.

The dict-based event loop paid a per-run tax that dwarfed the actual
event processing: rebuilding ``Dict[str, ...]`` tables of dependencies
and resources, re-deriving every op's exclusive-resource tuple, hashing
op-name strings in every heap operation, and recomputing activation
sizes (``memory.output_bytes``) on every start/free.  All of that is a
pure function of the graph, so :func:`lower` computes it **once** into a
:class:`SimKernel` of flat integer-indexed arrays:

- ops, durations-by-op-index, per-op resource-id tuples;
- CSR-style successor/predecessor adjacency;
- memory lowering (charge-device index + output bytes per op);
- a Kahn topological order shared with the ranking pass.

The kernel is cached on the graph itself (invalidated by a mutation
version stamp) and on the :class:`~repro.plan.plan.ExecutionPlan`, so
one lowering serves ranking, both candidate-order simulations in
:class:`~repro.scheduling.list_scheduler.ListScheduler`, and every later
re-simulation of the plan.

Durations are only pre-evaluated for *deterministic* cost providers
(``cost.deterministic`` is True).  Stochastic providers — the truth
model's per-execution jitter — are still queried lazily in start order,
which keeps the jitter RNG draw sequence, and therefore the results,
bit-identical to the dict engine.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..parallel.distgraph import (NCCL_RESOURCE, DistGraph, DistOp,
                                  DistOpKind)
from .costs import CostProvider
from .memory import output_bytes

#: max distinct cost providers whose duration arrays one kernel retains
_DURATION_CACHE_SLOTS = 4


class SimKernel:
    """A :class:`DistGraph` lowered to integer-indexed flat arrays.

    Instances are immutable snapshots: ``version`` records the graph
    mutation stamp at lowering time, and :func:`lower` re-lowers when
    the graph has changed since.  All arrays are indexed by *op index*
    (the graph's insertion order, matching ``graph.op_names``) or by
    *resource id* (first-use order over ops).
    """

    __slots__ = (
        "graph", "version", "n", "names", "index", "ops",
        "succ", "pred", "pred_count", "succ_count", "sources",
        "resource_names", "res_ids", "is_link",
        "is_compute", "is_comm", "kind_values",
        "charge_dev", "out_bytes", "mem_dev_names", "mem_dev_index",
        "topo", "has_cycle", "_dur_cache", "_topo_pos", "_bound_cache",
        "_tail_cache",
    )

    def __init__(self, graph: DistGraph):
        self.graph = graph
        self.version = graph.version
        # lowering reads the graph's internal tables directly: it runs once
        # per compiled graph on the cold-evaluation path, so the defensive
        # copies of the public accessors are pure overhead here
        ops = list(graph._ops.values())
        self.ops: List[DistOp] = ops
        names = [op.name for op in ops]
        self.names: List[str] = names
        index = {name: i for i, name in enumerate(names)}
        self.index: Dict[str, int] = index
        n = len(names)
        self.n = n

        # adjacency (list-of-lists keeps the graph's edge order, which the
        # engine relies on for memory refcount release order).  The graph
        # maintains an integer mirror in lock-step with add/add_edge;
        # copy it unless code mutated the string dicts directly (tests
        # craft cycles that way), in which case fall back to mapping the
        # authoritative string adjacency through the name table.
        succ_map = graph._succ
        pred_map = graph._pred
        succ_ids = graph._succ_ids
        pred_ids = graph._pred_ids
        if (list(map(len, succ_ids)) == list(map(len, succ_map.values()))
                and list(map(len, pred_ids))
                == list(map(len, pred_map.values()))):
            self.succ: List[Tuple[int, ...]] = list(map(tuple, succ_ids))
            self.pred: List[Tuple[int, ...]] = list(map(tuple, pred_ids))
        else:
            to_index = index.__getitem__
            self.succ = [
                tuple(map(to_index, succ_map[name])) for name in names
            ]
            self.pred = [
                tuple(map(to_index, pred_map[name])) for name in names
            ]
        self.pred_count: List[int] = [len(p) for p in self.pred]
        self.succ_count: List[int] = [len(s) for s in self.succ]
        self.sources: List[int] = [
            i for i, c in enumerate(self.pred_count) if c == 0
        ]

        # One fused pass per op computes kinds, resources (interned to
        # integer ids in first-use order) and the memory lowering (charge
        # device + output bytes, charge_device/output_bytes inlined).
        # Resources are interned by *structure* — link endpoints, device
        # name — so the "link:a->b" strings are built once per distinct
        # resource (~100s) rather than once per op (~1000s); the name
        # table comes out identical to interning op.resources() strings.
        resource_ids: Dict[str, int] = {}
        resource_names: List[str] = []
        link_ids: Dict[Tuple[str, str], int] = {}
        res_ids: List[Tuple[int, ...]] = []
        kinds: List[DistOpKind] = []
        is_compute: List[bool] = []
        is_comm: List[bool] = []
        mem_dev_index: Dict[str, int] = {}
        mem_dev_names: List[str] = []
        charge_dev: List[int] = []
        out_bytes: List[float] = []

        def intern(r: str) -> int:
            rid = resource_ids.get(r)
            if rid is None:
                rid = len(resource_names)
                resource_ids[r] = rid
                resource_names.append(r)
            return rid

        compute_k = DistOpKind.COMPUTE
        split_k = DistOpKind.SPLIT
        concat_k = DistOpKind.CONCAT
        transfer_k = DistOpKind.TRANSFER
        allreduce_k = DistOpKind.ALLREDUCE

        for op in ops:
            k = op.kind
            kinds.append(k)
            if (k is compute_k or k is split_k or k is concat_k
                    or k is DistOpKind.AGGREGATE or k is DistOpKind.APPLY):
                is_compute.append(True)
                is_comm.append(False)
                res_ids.append((intern(op.device),))
                mem_device = op.device
            elif k is transfer_k:
                is_compute.append(False)
                is_comm.append(True)
                key = (op.src_device, op.dst_device)
                rid = link_ids.get(key)
                if rid is None:
                    rid = intern(f"link:{key[0]}->{key[1]}")
                    link_ids[key] = rid
                extras = op.extra_resources
                if extras:
                    res_ids.append((rid,) + tuple(map(intern, extras)))
                else:
                    res_ids.append((rid,))
                mem_device = op.dst_device
            elif k is allreduce_k:
                is_compute.append(False)
                is_comm.append(True)
                devices = op.devices
                m = len(devices)
                rids: List[int] = []
                for j in range(m):
                    a, b = devices[j], devices[(j + 1) % m]
                    if a != b:
                        rid = link_ids.get((a, b))
                        if rid is None:
                            rid = intern(f"link:{a}->{b}")
                            link_ids[(a, b)] = rid
                        rids.append(rid)
                rids.extend(map(intern, op.extra_resources))
                rids.append(intern(NCCL_RESOURCE))
                res_ids.append(tuple(rids))
                mem_device = None
            else:  # pragma: no cover - no further kinds exist
                is_compute.append(op.is_compute)
                is_comm.append(op.is_communication)
                res_ids.append(tuple(map(intern, op.resources())))
                mem_device = None

            if mem_device is None:
                charge_dev.append(-1)
                out_bytes.append(0.0)
                continue
            di = mem_dev_index.get(mem_device)
            if di is None:
                di = len(mem_dev_names)
                mem_dev_index[mem_device] = di
                mem_dev_names.append(mem_device)
            charge_dev.append(di)
            out_bytes.append(output_bytes(op))

        self.resource_names = resource_names
        self.res_ids = res_ids
        self.is_link: List[bool] = [
            r.startswith("link:") for r in resource_names
        ]
        self.is_compute = is_compute
        self.is_comm = is_comm
        self.kind_values: List[str] = [k.value for k in kinds]
        self.mem_dev_names = mem_dev_names
        self.mem_dev_index = mem_dev_index
        self.charge_dev = charge_dev
        self.out_bytes = out_bytes

        # Kahn topological order (same tie-breaking as
        # DistGraph.topological_order: insertion order among ready ops).
        # A cyclic graph yields a partial order and sets ``has_cycle``;
        # the engine still runs it and reports the deadlock exactly as
        # the dict engine did.
        indeg = list(self.pred_count)
        topo: List[int] = [i for i in range(n) if indeg[i] == 0]
        head = 0
        while head < len(topo):
            node = topo[head]
            head += 1
            for s in self.succ[node]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    topo.append(s)
        self.topo = topo
        self.has_cycle = len(topo) != n

        # cost provider -> per-op duration array (deterministic providers)
        self._dur_cache: Dict[int, Tuple[CostProvider, List[float]]] = {}
        # op index -> topo position, built on first use (the kernel is an
        # immutable snapshot, so no further invalidation is needed)
        self._topo_pos: Optional[List[int]] = None
        # cost provider -> admissible makespan lower bound
        self._bound_cache: Dict[int, Tuple[CostProvider, float]] = {}
        # cost provider -> per-op downstream-chain durations (tails)
        self._tail_cache: Dict[int, Tuple[CostProvider, List[float]]] = {}

    # ------------------------------------------------------------------ #
    def durations_for(self, cost: CostProvider) -> Optional[List[float]]:
        """Per-op durations under ``cost``, or None for stochastic costs.

        Deterministic providers (``cost.deterministic`` truthy) are
        evaluated once per (kernel, provider) and cached, so ranking and
        every simulation of the same lowering share one pricing pass.
        """
        if not getattr(cost, "deterministic", False):
            return None
        key = id(cost)
        entry = self._dur_cache.get(key)
        if entry is not None and entry[0] is cost:
            return entry[1]
        durations = list(map(cost.duration, self.ops))
        if len(self._dur_cache) >= _DURATION_CACHE_SLOTS:
            self._dur_cache.clear()
        self._dur_cache[key] = (cost, durations)
        return durations

    def tails_for(self, cost: CostProvider) -> Optional[List[float]]:
        """Per-op *exclusive tail*: the duration-weighted longest chain of
        successors that must still execute after the op finishes.

        ``tail[i] = max over succ s of (dur[s] + tail[s])`` (0 at sinks).
        Whatever the schedule, once op ``i`` completes at time ``t`` the
        makespan is at least ``t + tail[i]`` — the engine's mid-simulation
        abort and :func:`kernel_lower_bound` both build on this array.
        ``None`` for stochastic cost providers (same contract and caching
        discipline as :meth:`durations_for`).
        """
        durations = self.durations_for(cost)
        if durations is None:
            return None
        key = id(cost)
        entry = self._tail_cache.get(key)
        if entry is not None and entry[0] is cost:
            return entry[1]
        succ_of = self.succ
        tails = [0.0] * self.n
        for i in reversed(self.topo):
            tail = 0.0
            for s in succ_of[i]:
                t = durations[s] + tails[s]
                if t > tail:
                    tail = t
            tails[i] = tail
        if len(self._tail_cache) >= _DURATION_CACHE_SLOTS:
            self._tail_cache.clear()
        self._tail_cache[key] = (cost, tails)
        return tails

    def topo_positions(self) -> List[int]:
        """Op index -> position in the topological order (memoized)."""
        pos = self._topo_pos
        if pos is None:
            pos = [0] * self.n
            for p, i in enumerate(self.topo):
                pos[i] = p
            self._topo_pos = pos
        return pos

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SimKernel({self.graph.name!r}, {self.n} ops, "
                f"{len(self.resource_names)} resources)")


#: relative slack applied to every bound-vs-threshold comparison before
#: pruning a candidate.  The bounds (static kernel bound, lane bound,
#: the mid-sim tail bound) are sums over op chains whose floating-point
#: rounding differs from the event loop's own accumulation, so a bound
#: can exceed the true makespan by a few ulps (~n*eps relative) — and a
#: threshold sitting within that noise of the true makespan (the
#: scheduler's internal rank-vs-earliest race produces exactly this)
#: would fire a false cut and shift the winner by one ulp.  Requiring a
#: violation by more than this margin keeps every cut sound in floating
#: point: a candidate inside the margin is simply evaluated in full.
#: n*eps stays far below 1e-9 for any graph this repo can lower.
PRUNE_GUARD = 1e-9


def kernel_lower_bound(kernel: SimKernel,
                       cost: CostProvider) -> Optional[float]:
    """Admissible makespan lower bound for ``kernel`` under ``cost``.

    The bound is the max of two quantities no schedule can beat:

    - the **critical path**: the longest duration-weighted path through
      the precedence DAG (raw durations, no comm-weight inflation);
    - the **busiest resource**: for each device, link and token, the sum
      of durations of every op that holds it — ops hold all their
      resources exclusively for their whole duration, so this is
      per-device assigned work / throughput and per-link bytes /
      bandwidth in one pass.

    Returns ``None`` for stochastic cost providers: pricing the graph
    would consume jitter RNG draws and perturb later simulations, and a
    jittered "bound" would not be admissible anyway.  The bound is
    cached per (kernel, provider) like the duration arrays.
    """
    durations = kernel.durations_for(cost)
    if durations is None:
        return None
    key = id(cost)
    entry = kernel._bound_cache.get(key)
    if entry is not None and entry[0] is cost:
        return entry[1]

    # longest path: dur[i] + exclusive tail, maximized over all ops (the
    # tails array is shared with the engine's mid-simulation abort)
    tails = kernel.tails_for(cost)
    best = 0.0
    for i in range(kernel.n):
        total = durations[i] + tails[i]
        if total > best:
            best = total

    # busiest exclusive resource
    res_busy = [0.0] * len(kernel.resource_names)
    for i, rids in enumerate(kernel.res_ids):
        d = durations[i]
        for r in rids:
            res_busy[r] += d
    if res_busy:
        busiest = max(res_busy)
        if busiest > best:
            best = busiest

    if len(kernel._bound_cache) >= _DURATION_CACHE_SLOTS:
        kernel._bound_cache.clear()
    kernel._bound_cache[key] = (cost, best)
    return best


def lower(graph: DistGraph) -> SimKernel:
    """Lower ``graph`` once; reuse the cached kernel until it mutates."""
    cached = getattr(graph, "_sim_kernel", None)
    if cached is not None and cached.version == graph.version:
        return cached
    kernel = SimKernel(graph)
    graph._sim_kernel = kernel
    return kernel
