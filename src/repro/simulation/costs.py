"""Cost providers: map a :class:`DistOp` to an execution duration.

Two implementations with deliberately different fidelity (see DESIGN.md):

- :class:`ProfileCostModel` — what the Strategy Maker's simulator uses.
  Durations come from the Profiler's fitted linear regressions, i.e. from
  *predictions* (the paper trains the GNN against simulated rewards).
- :class:`TruthCostModel` — what the execution engine ("the testbed")
  uses.  Durations come from the analytic ground truth with multiplicative
  log-normal jitter and a systematic inter-server bandwidth discount,
  modelling effects the profiler's clean microbenchmarks miss.
"""

from __future__ import annotations

from typing import Optional, Protocol, Tuple

import numpy as np

from ..cluster.device import GPUSpec
from ..cluster.topology import Cluster
from ..errors import DeviceLostError, SimulationError
from ..parallel.aggregation import allreduce_time
from ..parallel.distgraph import DistOp, DistOpKind
from ..profiling import cost_model
from ..profiling.profiler import Profile


# Per-transfer fixed cost of TensorFlow's rendezvous/executor path
# (Send/Recv kernel pair, proto handling) paid by every point-to-point
# tensor transfer — the PS push/pull path and MP activation routing.
# NCCL collectives bypass it (fused launch, modelled separately via
# NCCL_LAUNCH_OVERHEAD in repro.parallel.aggregation).  This constant is
# what makes PS expensive for models with many small gradients (ResNet)
# while staying cheap per byte for the few huge, spread-out tensors of
# BERT-class models — the paper's Table 1 crossover.
SENDRECV_OVERHEAD = 150e-6


class CostProvider(Protocol):
    """Interface the simulator uses to time dist-ops.

    ``deterministic`` declares that ``duration`` is a pure function of
    the op: the simulation kernel then prices every op once per lowering
    and shares the array across ranking and repeated simulations.
    Stochastic providers (per-execution jitter) must leave it False so
    durations keep being drawn lazily in start order.
    """

    deterministic: bool = False

    def duration(self, op: DistOp) -> float: ...

    def link_lookup(self, src: str, dst: str) -> Tuple[float, float]: ...


def _aux_compute_time(spec: GPUSpec, traffic_bytes: float) -> float:
    """Time of a memory-bound auxiliary op (Split/Concat/Aggregate)."""
    return traffic_bytes / spec.mem_bandwidth + spec.kernel_overhead


class _BaseCost:
    """Shared plumbing for both cost providers."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster

    def _spec(self, device: str) -> GPUSpec:
        return self.cluster.device(device).spec

    def _allreduce(self, op: DistOp) -> float:
        return allreduce_time(op.devices, op.size_bytes, self.link_lookup,
                              self.cluster, op.hierarchical)

    def link_lookup(self, src: str, dst: str) -> Tuple[float, float]:
        raise NotImplementedError


class ProfileCostModel(_BaseCost):
    """Durations from the profiler's regression predictions."""

    deterministic = True

    def __init__(self, cluster: Cluster, profile: Profile):
        super().__init__(cluster)
        self.profile = profile
        # predictions are pure functions of their keys; candidates of the
        # same model share most (op, device, share) triples and collective
        # shapes, so one provider prices each distinct key once
        self._op_time_cache: dict = {}
        self._transfer_cache: dict = {}
        self._allreduce_cache: dict = {}
        self._spec_of = {d: self.cluster.device(d).spec
                         for d in self.cluster.device_ids}

    def link_lookup(self, src: str, dst: str) -> Tuple[float, float]:
        model = self.profile.link_models.get((src, dst))
        if model is None:
            link = self.cluster.link(src, dst)
            return link.bandwidth, link.latency
        return model.bandwidth, model.latency

    def duration(self, op: DistOp) -> float:
        kind = op.kind
        if kind is DistOpKind.COMPUTE or kind is DistOpKind.APPLY:
            assert op.source_op is not None and op.device is not None
            key = (op.source_op.name, op.device, op.batch_fraction)
            cache = self._op_time_cache
            t = cache.get(key)
            if t is None:
                t = cache[key] = self.profile.op_time(*key)
            return t
        if kind is DistOpKind.TRANSFER:
            key = (op.src_device, op.dst_device, op.size_bytes)
            cache = self._transfer_cache
            t = cache.get(key)
            if t is None:
                t = cache[key] = SENDRECV_OVERHEAD + \
                    self.profile.transfer_time(*key)
            return t
        if kind is DistOpKind.ALLREDUCE:
            key = (op.devices, op.size_bytes, op.hierarchical)
            cache = self._allreduce_cache
            t = cache.get(key)
            if t is None:
                t = cache[key] = self._allreduce(op)
            return t
        if (kind is DistOpKind.SPLIT or kind is DistOpKind.CONCAT
                or kind is DistOpKind.AGGREGATE):
            assert op.device is not None
            return _aux_compute_time(self._spec_of[op.device], op.size_bytes)
        raise SimulationError(f"cannot cost op kind {op.kind}")


class MappingCostModel:
    """Fixed per-op durations, for crafted instances (appendix worst case)
    and deterministic unit tests."""

    deterministic = True

    def __init__(self, durations: dict, default: Optional[float] = None):
        self.durations = dict(durations)
        self.default = default

    def duration(self, op: DistOp) -> float:
        if op.name in self.durations:
            return float(self.durations[op.name])
        if self.default is not None:
            return float(self.default)
        raise SimulationError(f"no duration registered for {op.name!r}")

    def link_lookup(self, src: str, dst: str) -> Tuple[float, float]:
        return float("inf"), 0.0


class TruthCostModel(_BaseCost):
    """Ground-truth durations with jitter — the stand-in for real hardware.

    ``jitter_sigma`` is the log-normal sigma applied per execution;
    ``interserver_discount`` scales down cross-machine bandwidth (switch
    contention, protocol overhead) relative to what profiling measured.

    ``rng`` shares an existing seeded generator (the ExecutionEngine
    passes its own so the engine -> cost model -> fault injector chain
    draws from one reproducible stream); when omitted, a fresh generator
    is created from ``seed`` — the two forms produce identical draws.

    The resilience layer applies faults through the overlay hooks
    (:meth:`set_fault_overlay` / :meth:`clear_fault_overlay`): crashed
    devices make any op touching them raise :class:`DeviceLostError`,
    stragglers multiply compute durations, and degraded links divide
    bandwidth.  With no overlay installed every code path is byte-for-
    byte the pre-fault arithmetic, so fault-free runs stay bit-identical.
    """

    def __init__(self, cluster: Cluster, jitter_sigma: float = 0.04,
                 interserver_discount: float = 0.92,
                 seed: Optional[int] = 1234,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(cluster)
        if not 0.0 < interserver_discount <= 1.0:
            raise SimulationError(
                f"interserver_discount must be in (0, 1], got "
                f"{interserver_discount}"
            )
        self.jitter_sigma = jitter_sigma
        self.interserver_discount = interserver_discount
        self._rng = rng if rng is not None else np.random.default_rng(seed)
        self._overlay = None

    @property
    def deterministic(self) -> bool:
        # with jitter the RNG must be drawn in op start order, so the
        # kernel may not pre-evaluate durations; an active fault overlay
        # likewise varies durations between iterations
        return self.jitter_sigma <= 0 and self._overlay is None

    # ---------------------------------------------------------------- #
    # fault hooks (repro.resilience.FaultInjector drives these)
    # ---------------------------------------------------------------- #
    def set_fault_overlay(self, overlay) -> None:
        """Install the active-fault view (``None`` clears it).

        ``overlay`` duck-types :class:`repro.resilience.FaultOverlay`:
        ``failed_devices`` (set of ids), ``compute_scale`` (device id ->
        duration multiplier > 1) and ``link_scale`` ((src, dst) ->
        bandwidth multiplier in (0, 1]).
        """
        self._overlay = overlay

    def clear_fault_overlay(self) -> None:
        self._overlay = None

    @property
    def fault_overlay(self):
        return self._overlay

    def _jitter(self) -> float:
        if self.jitter_sigma <= 0:
            return 1.0
        return float(self._rng.lognormal(0.0, self.jitter_sigma))

    def link_lookup(self, src: str, dst: str) -> Tuple[float, float]:
        link = self.cluster.link(src, dst)
        bandwidth = link.bandwidth
        if not link.intra_server:
            bandwidth *= self.interserver_discount
        overlay = self._overlay
        if overlay is not None:
            scale = overlay.link_scale.get((src, dst))
            if scale is not None:
                bandwidth *= scale
        return bandwidth, link.latency

    def duration(self, op: DistOp) -> float:
        overlay = self._overlay
        if overlay is None:
            return self._base_duration(op) * self._jitter()
        if overlay.failed_devices:
            self._check_lost(op, overlay.failed_devices)
        base = self._base_duration(op)
        if op.is_compute:
            scale = overlay.compute_scale.get(op.device)
            if scale is not None:
                base *= scale
        return base * self._jitter()

    @staticmethod
    def _check_lost(op: DistOp, failed) -> None:
        """Raise if ``op`` touches a crashed device (first use detects)."""
        if op.is_compute:
            if op.device in failed:
                raise DeviceLostError(op.device, op.name)
        elif op.kind is DistOpKind.TRANSFER:
            if op.src_device in failed:
                raise DeviceLostError(op.src_device, op.name)
            if op.dst_device in failed:
                raise DeviceLostError(op.dst_device, op.name)
        else:
            for device in op.devices:
                if device in failed:
                    raise DeviceLostError(device, op.name)

    def _base_duration(self, op: DistOp) -> float:
        if op.kind in (DistOpKind.COMPUTE, DistOpKind.APPLY):
            assert op.source_op is not None and op.device is not None
            return cost_model.op_time(op.source_op, self._spec(op.device),
                                      op.batch_fraction)
        if op.kind in (DistOpKind.SPLIT, DistOpKind.CONCAT,
                       DistOpKind.AGGREGATE):
            assert op.device is not None
            return _aux_compute_time(self._spec(op.device), op.size_bytes)
        if op.kind is DistOpKind.TRANSFER:
            bandwidth, latency = self.link_lookup(op.src_device, op.dst_device)
            return SENDRECV_OVERHEAD + latency + op.size_bytes / bandwidth
        if op.kind is DistOpKind.ALLREDUCE:
            return self._allreduce(op)
        raise SimulationError(f"cannot cost op kind {op.kind}")
