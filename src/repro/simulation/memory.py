"""Reference-counted memory tracking (paper Sec. 5).

"The simulator also simulates memory allocation and releasing when
executing an operation (using reference counting), and records the peak
memory usage on each of the device."

Accounting per device:

- *resident* bytes: parameters + optimizer state, allocated for the whole
  iteration (provided by the compiler);
- *activation* bytes: a compute op's output is allocated when the op
  starts and freed when its last consumer finishes; transfer buffers are
  charged to the destination device the same way.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import SimulationError
from ..parallel.distgraph import DistGraph, DistOp, DistOpKind
from ..profiling.cost_model import op_memory_bytes


def output_bytes(op: DistOp) -> float:
    """Bytes the op's output pins on its device (activation + the training
    overheads folded into ``cost_model.ACTIVATION_OVERHEAD``)."""
    if op.kind in (DistOpKind.COMPUTE, DistOpKind.APPLY):
        if op.source_op is None:  # synthetic instances (crafted DAGs)
            return 0.0
        return float(op_memory_bytes(op.source_op, op.batch_fraction))
    if op.kind in (DistOpKind.SPLIT, DistOpKind.CONCAT, DistOpKind.AGGREGATE,
                   DistOpKind.TRANSFER):
        return float(op.size_bytes)
    return 0.0  # allreduce works in place on the gradient buffers


def charge_device(op: DistOp) -> Optional[str]:
    """Device whose memory holds the op's output (None: no charge)."""
    if op.is_compute:
        return op.device
    if op.kind is DistOpKind.TRANSFER:
        return op.dst_device
    return None


class MemoryTracker:
    """Tracks per-device memory while the simulator executes a DistGraph."""

    def __init__(self, graph: DistGraph, resident_bytes: Dict[str, int]):
        self.graph = graph
        self.current: Dict[str, float] = {
            d: float(b) for d, b in resident_bytes.items()
        }
        self.peak: Dict[str, float] = dict(self.current)
        # refcount per producing op = number of successors yet to finish
        self._refs: Dict[str, int] = {}
        for name in graph.op_names:
            self._refs[name] = len(graph.successors(name))

    # ------------------------------------------------------------------ #
    def on_start(self, op: DistOp) -> None:
        device = charge_device(op)
        if device is None:
            return
        size = output_bytes(op)
        if size <= 0:
            return
        if device not in self.current:
            self.current[device] = 0.0
            self.peak[device] = 0.0
        self.current[device] += size
        if self.current[device] > self.peak[device]:
            self.peak[device] = self.current[device]

    def on_finish(self, op: DistOp) -> None:
        # finishing `op` releases one reference on each of its inputs
        for pred_name in self.graph.predecessors(op.name):
            self._release(pred_name)
        if self._refs[op.name] == 0:  # sink: nothing will ever consume it
            self._free(self.graph.op(op.name))

    def _release(self, producer_name: str) -> None:
        refs = self._refs[producer_name]
        if refs <= 0:
            raise SimulationError(
                f"refcount underflow on {producer_name!r}"
            )
        self._refs[producer_name] = refs - 1
        if self._refs[producer_name] == 0:
            self._free(self.graph.op(producer_name))

    def _free(self, op: DistOp) -> None:
        device = charge_device(op)
        if device is None:
            return
        size = output_bytes(op)
        if size <= 0:
            return
        self.current[device] -= size

    # ------------------------------------------------------------------ #
    def oom_devices(self, capacities: Dict[str, int]) -> List[str]:
        """Devices whose peak usage exceeded their memory capacity."""
        return [
            d for d, peak in self.peak.items()
            if d in capacities and peak > capacities[d]
        ]
