"""Discrete-event simulation of distributed training iterations."""

from .batch import LanePlanner
from .costs import CostProvider, ProfileCostModel, TruthCostModel
from .engine import Simulator
from .kernel import SimKernel, lower
from .memory import MemoryTracker, charge_device, output_bytes
from .metrics import SimulationResult, union_length

__all__ = [
    "CostProvider",
    "LanePlanner",
    "ProfileCostModel",
    "TruthCostModel",
    "Simulator",
    "SimKernel",
    "lower",
    "SimulationResult",
    "MemoryTracker",
    "union_length",
    "output_bytes",
    "charge_device",
]
