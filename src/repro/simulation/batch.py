"""Batched population simulation: lane-stacked admissible bounds.

Every search path (REINFORCE episodes, CEM rounds, the multijob oracle,
elastic replanning) evaluates a *population* of candidate strategies of
one source graph.  The serial pipeline pays compile -> lower -> schedule
for each candidate before any of them can be rejected; on a 16-candidate
cold search the compile step alone is the dominant cost, yet most
candidates lose by a wide margin.

This module lowers the **source graph once** into a :class:`LanePlanner`
and then prices K candidate strategies ("lanes") against it without
compiling any of them.  Per lane it reconstructs, by mirroring
:class:`~repro.parallel.compiler.GraphCompiler` decision-for-decision:

- every compute/apply instance the compiler would create (one per
  ``batch_shares()`` entry) and its exact profiled duration;
- every transfer the router would insert — broadcast, gather/concat/
  split/slice chains with the compiler's own route-dedup keys, PS
  push/aggregate/apply/pull chains (including the stateful
  ``choose_ps_device`` load balancing, replayed in the same topological
  order), and ring/hierarchical AllReduce collectives (same
  ``choose_allreduce`` selection, same cached collective times).

From that reconstruction each lane gets an **admissible lower bound**
on its simulated makespan, the max of

- the *no-contention critical path*: earliest-finish DP over (op,
  device) states with exact edge costs — every true start time is >=
  its no-contention start, so the DP's max finish can never exceed the
  simulated makespan;
- the *strengthened busy-resource bound*: for every device, link, NIC
  port and the NCCL token, ``min earliest-start + total busy time`` —
  all holders run exclusively, none can start before the earliest
  no-contention start among them.

Per-op results are stacked into ``(K, n_ops)`` arrays (earliest finish
per source op per lane) and the bounds into a length-``K`` vector, which
is what :meth:`~repro.plan.builder.PlanBuilder.evaluate_many` orders
lanes by and prunes against a shared
:class:`~repro.plan.pruning.BestSoFar` snapshot.  Lanes the bound
cannot kill run the unchanged serial pipeline, so every surviving
lane's outcome is bit-identical to its serial (and ``engine="reference"``)
evaluation by construction.

Admissibility is the whole contract: a bound that overestimated would
prune a potential winner.  Any lane whose reconstruction fails (a
strategy the compiler would reject, an op the profile cannot price)
degrades to ``-inf`` — never pruned, fully evaluated, so errors are
reported by the real pipeline, not guessed here.  The paired-fuzz suite
(``tests/test_batched_identity.py``) hammers bound <= true makespan
across graphs, strategies and cost regimes.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..cluster.topology import Cluster
from ..graph.dag import ComputationGraph
from ..graph.op import Operation, OpPhase
from ..parallel.aggregation import choose_allreduce, choose_ps_device
from ..parallel.strategy import CommMethod, Strategy
from .costs import ProfileCostModel, _aux_compute_time

_SHARE_TOL = 1e-9  # must match GraphCompiler._SHARE_TOL


class _LaneInfeasible(Exception):
    """Lane reconstruction hit a case the compiler would reject (or one
    this mirror does not model); the lane's bound degrades to -inf."""


class LanePlanner:
    """One source-graph lowering shared by every lane of a population.

    Bound to one (graph, cluster, cost) context like the PlanBuilder
    that owns it.  All profiled quantities are read through the cost
    model's own caches (``_op_time_cache`` / ``_transfer_cache`` /
    ``_allreduce_cache``), so lane pricing and the real simulations of
    surviving candidates share one pricing pass per distinct key.
    """

    def __init__(self, graph: ComputationGraph, cluster: Cluster,
                 cost: ProfileCostModel):
        self.graph = graph
        self.cluster = cluster
        self.cost = cost
        self.usable = (
            isinstance(cost, ProfileCostModel)
            and getattr(cost, "deterministic", False)
        )
        self.n_ops = 0
        if not self.usable:
            return
        self.profile = cost.profile
        self._spec_of = cost._spec_of
        self._lookup = cost.link_lookup
        # (devices, bytes) -> hierarchical? (choose_allreduce is pure)
        self._ar_choice: Dict[Tuple[Tuple[str, ...], float], bool] = {}
        # (src, dst) -> same-server? (NIC ports exist only across servers)
        self._same_server: Dict[Tuple[str, str], bool] = {}
        self._dev_server = {d: cluster.device(d).server
                            for d in cluster.device_ids}

        # topological walk over the source graph, APPLY ops resolved to
        # their parameter-gradient producer exactly like the compiler
        self.ops: List[Operation] = []
        self.preds: List[List[Operation]] = []
        self.apply_of: Dict[str, Operation] = {}
        self.index: Dict[str, int] = {}
        for name in graph.topological_order():
            op = graph.op(name)
            if op.phase is OpPhase.APPLY:
                continue
            self.index[op.name] = len(self.ops)
            self.ops.append(op)
            self.preds.append([graph.op(p)
                               for p in graph.predecessors(op.name)])
            if op.produces_param_gradient:
                applies = [graph.op(s) for s in graph.successors(op.name)
                           if graph.op(s).phase is OpPhase.APPLY]
                # != 1 is a CompileError at compile time; mark it so the
                # lane degrades instead of bounding a graph the compiler
                # will reject anyway
                if len(applies) == 1:
                    self.apply_of[op.name] = applies[0]
        self.n_ops = len(self.ops)

    # ------------------------------------------------------------------ #
    # cached pricing through the cost model's own caches
    def _op_t(self, name: str, device: str, fraction: float) -> float:
        key = (name, device, fraction)
        cache = self.cost._op_time_cache
        t = cache.get(key)
        if t is None:
            t = cache[key] = self.profile.op_time(*key)
        return t

    def _tr_t(self, src: str, dst: str, size_bytes: float) -> float:
        key = (src, dst, size_bytes)
        cache = self.cost._transfer_cache
        t = cache.get(key)
        if t is None:
            from .costs import SENDRECV_OVERHEAD
            t = cache[key] = SENDRECV_OVERHEAD + \
                self.profile.transfer_time(*key)
        return t

    def _ar_t(self, devices: Tuple[str, ...], size_bytes: float
              ) -> Tuple[bool, float]:
        ckey = (devices, size_bytes)
        hier = self._ar_choice.get(ckey)
        if hier is None:
            hier, est = choose_allreduce(devices, size_bytes, self._lookup,
                                         self.cluster)
            self._ar_choice[ckey] = hier
            # seed the cost model's collective cache with the same value
            # the chosen structure prices to
            self.cost._allreduce_cache.setdefault(
                (devices, size_bytes, hier), est)
            return hier, est
        key = (devices, size_bytes, hier)
        cache = self.cost._allreduce_cache
        t = cache.get(key)
        if t is None:
            from ..parallel.aggregation import allreduce_time
            t = cache[key] = allreduce_time(devices, size_bytes,
                                            self._lookup, self.cluster, hier)
        return hier, t

    def _cross_server(self, src: str, dst: str) -> bool:
        key = (src, dst)
        same = self._same_server.get(key)
        if same is None:
            same = self._dev_server[src] == self._dev_server[dst]
            self._same_server[key] = same
        return not same

    # ------------------------------------------------------------------ #
    def bounds(self, strategies: Sequence[Strategy]
               ) -> Tuple[np.ndarray, np.ndarray]:
        """Admissible makespan lower bounds for K candidate lanes.

        Returns ``(bounds, finish)``: a ``(K,)`` vector of admissible
        lower bounds (``-inf`` for lanes whose reconstruction failed —
        they must be fully evaluated) and the ``(K, n_ops)`` stacked
        earliest-finish matrix over the source ops (0 where a lane
        failed).  Bounds never overestimate the simulated makespan.
        """
        k = len(strategies)
        finish = np.zeros((k, self.n_ops))
        bounds = np.full(k, float("-inf"))
        if not self.usable:
            return bounds, finish
        for lane, strategy in enumerate(strategies):
            try:
                bounds[lane] = self._lane(strategy, finish[lane])
            except Exception:
                # anything the mirror cannot price (a strategy the
                # compiler rejects, a missing profile entry, a modelling
                # gap) falls back to full evaluation: -inf never prunes
                bounds[lane] = float("-inf")
                finish[lane] = 0.0
        return bounds, finish

    # ------------------------------------------------------------------ #
    def _lane(self, strategy: Strategy, finish_row: np.ndarray) -> float:
        """No-contention earliest-finish DP + strengthened busy bounds
        for one lane, mirroring the compiler's lowering decisions."""
        graph = self.graph
        op_t = self._op_t
        tr_t = self._tr_t

        # op name -> {device: no-contention earliest finish}
        fin: Dict[str, Dict[str, float]] = {}
        # resolved OpStrategy per op (param-grad/apply follow forward)
        st_of: Dict[str, object] = {}
        # resource accounting: key -> (min earliest start, total busy).
        # Keys: device strings, ('l', src, dst) links, ('o', server) /
        # ('i', server) NIC ports, and the NCCL token ('nccl',).
        starts: Dict[object, float] = {}
        busy: Dict[object, float] = {}
        # mirrors GraphCompiler._route_cache: same dedup keys, but the
        # value is the transfer's finish time instead of its dist-op name
        routes: Dict[Tuple, float] = {}
        split_memo: Dict[str, Tuple[str, float]] = {}
        ps_load: Dict[str, float] = {}
        cp = 0.0

        def hold(res: object, start: float, dur: float) -> None:
            nonlocal cp
            b = busy.get(res)
            if b is None:
                busy[res] = dur
                starts[res] = start
            else:
                busy[res] = b + dur
                if start < starts[res]:
                    starts[res] = start

        def transfer(src: str, dst: str, size_bytes: float,
                     ready: float) -> float:
            """Charge one point-to-point transfer; returns its finish."""
            t = tr_t(src, dst, size_bytes)
            hold(('l', src, dst), ready, t)
            if self._cross_server(src, dst):
                hold(('o', self._dev_server[src]), ready, t)
                hold(('i', self._dev_server[dst]), ready, t)
            return ready + t

        def resolved(op: Operation):
            st = st_of.get(op.name)
            if st is None:
                if op.forward_ref is not None and (
                    op.produces_param_gradient or op.phase is OpPhase.APPLY
                ):
                    st = strategy.get(op.forward_ref)
                else:
                    st = strategy.get(op.name)
                st_of[op.name] = st
            return st

        def arrival(pred: Operation, device: str, fraction: float) -> float:
            """Finish time of whatever makes ``pred``'s output available
            on ``device`` — the compiler's ``_tensor_at``, priced."""
            memo_key = (pred.name, device, fraction)
            cached = routes.get(memo_key)
            if cached is not None:
                return cached
            pred_fin = fin[pred.name]
            if pred.output.batch_dim is None:
                # unbatched broadcast: requires a single producer
                if len(pred_fin) != 1:
                    raise _LaneInfeasible(pred.name)
                (src, f), = pred_fin.items()
                bkey = (pred.name, device, "bc")
                if src == device:
                    out = f
                else:
                    out = routes.get(bkey)
                    if out is None:
                        out = routes[bkey] = transfer(
                            src, device, float(pred.output.size_bytes), f)
            else:
                pred_shares = resolved(pred).batch_shares()
                share = pred_shares.get(device)
                if share is not None and abs(share - fraction) < _SHARE_TOL:
                    out = pred_fin[device]
                else:
                    out = _slice_arrival(pred, pred_shares, device, fraction)
            routes[memo_key] = out
            return out

        def _slice_arrival(pred: Operation, pred_shares: Mapping[str, float],
                           device: str, fraction: float) -> float:
            full_bytes = float(pred.output.size_bytes)
            memo = split_memo.get(pred.name)
            if memo is None:
                pred_fin = fin[pred.name]
                gather = max(pred_shares,
                             key=lambda d: (pred_shares[d], d))
                spec = self._spec_of[gather]
                if len(pred_shares) == 1:
                    concat_f = pred_fin[gather]
                else:
                    ready = pred_fin[gather]
                    for dev, share in pred_shares.items():
                        if dev == gather:
                            continue
                        gkey = (pred.name, dev, "gather")
                        f = routes.get(gkey)
                        if f is None:
                            f = routes[gkey] = transfer(
                                dev, gather, full_bytes * share,
                                pred_fin[dev])
                        if f > ready:
                            ready = f
                    concat_dur = _aux_compute_time(spec, full_bytes)
                    hold(gather, ready, concat_dur)
                    concat_f = ready + concat_dur
                split_dur = _aux_compute_time(spec, full_bytes)
                hold(gather, concat_f, split_dur)
                memo = (gather, concat_f + split_dur)
                split_memo[pred.name] = memo
            gather, split_f = memo
            if device == gather:
                return split_f
            skey = (pred.name, device, "slice", round(fraction, 12))
            out = routes.get(skey)
            if out is None:
                out = routes[skey] = transfer(
                    gather, device, full_bytes * fraction, split_f)
            return out

        for i, op in enumerate(self.ops):
            st = resolved(op)
            shares = st.batch_shares()
            if not shares:
                raise _LaneInfeasible(op.name)
            op_fin: Dict[str, float] = {}
            preds = self.preds[i]
            op_max = 0.0
            for device, fraction in shares.items():
                ready = 0.0
                for pred in preds:
                    a = arrival(pred, device, fraction)
                    if a > ready:
                        ready = a
                dur = op_t(op.name, device, fraction)
                hold(device, ready, dur)
                f = ready + dur
                op_fin[device] = f
                if f > op_max:
                    op_max = f
            fin[op.name] = op_fin
            finish_row[i] = op_max
            if op_max > cp:
                cp = op_max
            if op.produces_param_gradient:
                cp = max(cp, self._aggregate(op, st, op_fin, fin,
                                             hold, transfer, ps_load, op_t))

        # strengthened busy-resource bounds: every holder of r runs on it
        # exclusively and none can start before the earliest
        # no-contention start among them
        bound = cp
        for res, b in busy.items():
            s = starts[res] + b
            if s > bound:
                bound = s
        return bound

    # ------------------------------------------------------------------ #
    def _aggregate(self, op: Operation, st, op_fin: Dict[str, float],
                   fin: Dict[str, Dict[str, float]], hold, transfer,
                   ps_load: Dict[str, float], op_t) -> float:
        """Mirror of ``_lower_param_gradient``: PS chains, AllReduce
        collectives, and the trailing ApplyGradient instances."""
        apply_op = self.apply_of.get(op.name)
        if apply_op is None:
            raise _LaneInfeasible(op.name)
        devices = st.devices()
        grad_bytes = float(op.output.size_bytes)
        apply_fin: Dict[str, float] = {}
        cp = 0.0

        if len(devices) == 1:
            dev = devices[0]
            ready = max(op_fin.values())
            dur = op_t(apply_op.name, dev, 1.0)
            hold(dev, ready, dur)
            cp = apply_fin[dev] = ready + dur
        elif st.comm is CommMethod.PS:
            ps_dev = choose_ps_device(devices, grad_bytes, self._lookup,
                                      load=ps_load)
            ready = 0.0
            for dev in devices:
                f = op_fin[dev]
                a = f if dev == ps_dev else transfer(dev, ps_dev,
                                                     grad_bytes, f)
                if a > ready:
                    ready = a
            spec = self._spec_of[ps_dev]
            agg_dur = _aux_compute_time(spec, grad_bytes * len(devices))
            hold(ps_dev, ready, agg_dur)
            agg_f = ready + agg_dur
            apply_dur = op_t(apply_op.name, ps_dev, 1.0)
            hold(ps_dev, agg_f, apply_dur)
            apply_f = agg_f + apply_dur
            cp = apply_fin[ps_dev] = apply_f
            for dev in devices:
                if dev == ps_dev:
                    continue
                pull_f = transfer(ps_dev, dev, float(op.param_bytes),
                                  apply_f)
                if pull_f > cp:
                    cp = pull_f
        elif st.comm is CommMethod.ALLREDUCE:
            dev_tuple = tuple(devices)
            _, ar_dur = self._ar_t(dev_tuple, grad_bytes)
            ready = max(op_fin.values())
            hold(('nccl',), ready, ar_dur)
            n = len(dev_tuple)
            seen_ports = set()
            for j in range(n):
                a, b = dev_tuple[j], dev_tuple[(j + 1) % n]
                if a == b:
                    continue
                hold(('l', a, b), ready, ar_dur)
                if self._cross_server(a, b):
                    for port in (('o', self._dev_server[a]),
                                 ('i', self._dev_server[b])):
                        if port not in seen_ports:
                            seen_ports.add(port)
                            hold(port, ready, ar_dur)
            ar_f = ready + ar_dur
            for dev in devices:
                dur = op_t(apply_op.name, dev, 1.0)
                hold(dev, ar_f, dur)
                f = apply_fin[dev] = ar_f + dur
                if f > cp:
                    cp = f
        else:
            raise _LaneInfeasible(op.name)

        fin[apply_op.name] = apply_fin
        return cp
