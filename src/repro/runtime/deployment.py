"""Deployment bundle: compiled graph + schedule + placement metadata.

``build_deployment`` is the one canonical constructor: it accepts
either a ready :class:`~repro.plan.ExecutionPlan` or a
(graph, cluster, strategy) triple, runs the plan layer when needed, and
re-shapes the plan into the engine-facing :class:`Deployment` (plus the
plan itself, for consumers that want the fingerprint or capacities).
The historical ``make_deployment`` / ``deployment_from_plan`` split was
removed after a deprecation cycle; both call shapes live on as the two
forms of ``build_deployment``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from ..cluster.topology import Cluster
from ..errors import ReproError
from ..graph.dag import ComputationGraph
from ..parallel.distgraph import DistGraph
from ..parallel.strategy import Strategy
from ..plan import ExecutionPlan, PlanBuilder
from ..profiling.profiler import Profile
from ..scheduling.list_scheduler import Schedule


@dataclass
class Deployment:
    """Everything needed to execute a strategy on the cluster."""

    graph: ComputationGraph
    cluster: Cluster
    strategy: Strategy
    dist: DistGraph
    schedule: Schedule
    resident_bytes: Dict[str, int]
    profile: Profile
    plan: Optional[ExecutionPlan] = None

    @property
    def num_dist_ops(self) -> int:
        return len(self.dist)


def build_deployment(source: Union[ExecutionPlan, ComputationGraph],
                     cluster: Optional[Cluster] = None,
                     strategy: Optional[Strategy] = None, *,
                     profile: Optional[Profile] = None,
                     use_order_scheduling: bool = True,
                     group_of: Optional[Dict[str, int]] = None,
                     builder: Optional[PlanBuilder] = None) -> Deployment:
    """The canonical Deployment constructor.

    Two call shapes:

    - ``build_deployment(plan)`` — re-shape an already-built
      :class:`ExecutionPlan` (no compilation happens);
    - ``build_deployment(graph, cluster, strategy, ...)`` — compile +
      schedule through the plan layer.  Pass ``builder`` to reuse an
      existing :class:`PlanBuilder` (and its plan cache) instead of
      constructing a fresh context.
    """
    if isinstance(source, ExecutionPlan):
        if cluster is not None or strategy is not None \
                or builder is not None:
            raise ReproError(
                "build_deployment(plan) takes no cluster/strategy/builder "
                "— the plan already carries them"
            )
        plan = source
    else:
        if not isinstance(source, ComputationGraph):
            raise ReproError(
                f"build_deployment takes an ExecutionPlan or a "
                f"ComputationGraph, got {type(source).__name__}"
            )
        if cluster is None or strategy is None:
            raise ReproError(
                "build_deployment(graph, ...) needs both a cluster and a "
                "strategy"
            )
        if builder is None:
            builder = PlanBuilder(
                source, cluster, profile,
                use_order_scheduling=use_order_scheduling,
                group_of=group_of,
            )
        plan = builder.build(strategy)
    return Deployment(
        graph=plan.graph,
        cluster=plan.cluster,
        strategy=plan.strategy,
        dist=plan.dist,
        schedule=plan.schedule,
        resident_bytes=dict(plan.resident_bytes),
        profile=plan.profile,
        plan=plan,
    )
