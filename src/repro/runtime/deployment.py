"""Deployment bundle: compiled graph + schedule + placement metadata.

``make_deployment`` is a thin wrapper over the plan layer: the actual
compile -> schedule chain runs inside :class:`repro.plan.PlanBuilder`,
and a :class:`Deployment` is just an :class:`~repro.plan.ExecutionPlan`
re-shaped for the execution engine (plus the plan itself, for consumers
that want the fingerprint or capacities).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..cluster.topology import Cluster
from ..graph.dag import ComputationGraph
from ..parallel.distgraph import DistGraph
from ..parallel.strategy import Strategy
from ..plan import ExecutionPlan, PlanBuilder
from ..profiling.profiler import Profile
from ..scheduling.list_scheduler import Schedule


@dataclass
class Deployment:
    """Everything needed to execute a strategy on the cluster."""

    graph: ComputationGraph
    cluster: Cluster
    strategy: Strategy
    dist: DistGraph
    schedule: Schedule
    resident_bytes: Dict[str, int]
    profile: Profile
    plan: Optional[ExecutionPlan] = None

    @property
    def num_dist_ops(self) -> int:
        return len(self.dist)


def deployment_from_plan(plan: ExecutionPlan) -> Deployment:
    """Re-shape an ExecutionPlan into the engine-facing Deployment."""
    return Deployment(
        graph=plan.graph,
        cluster=plan.cluster,
        strategy=plan.strategy,
        dist=plan.dist,
        schedule=plan.schedule,
        resident_bytes=dict(plan.resident_bytes),
        profile=plan.profile,
        plan=plan,
    )


def make_deployment(graph: ComputationGraph, cluster: Cluster,
                    strategy: Strategy, *,
                    profile: Optional[Profile] = None,
                    use_order_scheduling: bool = True,
                    group_of: Optional[Dict[str, int]] = None,
                    builder: Optional[PlanBuilder] = None) -> Deployment:
    """Compile + schedule a strategy into a runnable deployment.

    Pass ``builder`` to reuse an existing :class:`PlanBuilder` (and its
    plan cache) instead of constructing a fresh context.
    """
    if builder is None:
        builder = PlanBuilder(
            graph, cluster, profile,
            use_order_scheduling=use_order_scheduling, group_of=group_of,
        )
    return deployment_from_plan(builder.build(strategy))
