"""Deployment bundle: compiled graph + schedule + placement metadata."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..cluster.topology import Cluster
from ..graph.dag import ComputationGraph
from ..parallel.compiler import GraphCompiler
from ..parallel.distgraph import DistGraph
from ..parallel.strategy import Strategy
from ..profiling.profiler import Profile, Profiler
from ..scheduling.list_scheduler import FifoScheduler, ListScheduler, Schedule
from ..simulation.costs import ProfileCostModel


@dataclass
class Deployment:
    """Everything needed to execute a strategy on the cluster."""

    graph: ComputationGraph
    cluster: Cluster
    strategy: Strategy
    dist: DistGraph
    schedule: Schedule
    resident_bytes: Dict[str, int]
    profile: Profile

    @property
    def num_dist_ops(self) -> int:
        return len(self.dist)


def make_deployment(graph: ComputationGraph, cluster: Cluster,
                    strategy: Strategy, *,
                    profile: Optional[Profile] = None,
                    use_order_scheduling: bool = True,
                    group_of: Optional[Dict[str, int]] = None) -> Deployment:
    """Compile + schedule a strategy into a runnable deployment."""
    if profile is None:
        profile = Profiler().profile(graph, cluster)
    compiler = GraphCompiler(cluster, profile, group_of=group_of)
    dist = compiler.compile(graph, strategy)
    cost = ProfileCostModel(cluster, profile)
    scheduler = ListScheduler() if use_order_scheduling else FifoScheduler()
    schedule = scheduler.schedule(dist, cost)
    return Deployment(
        graph=graph,
        cluster=cluster,
        strategy=strategy,
        dist=dist,
        schedule=schedule,
        resident_bytes=compiler.resident_bytes,
        profile=profile,
    )
