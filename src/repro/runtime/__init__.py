"""Runtime: execution engine (testbed stand-in), deployments, runner."""

from .deployment import Deployment, build_deployment
from .execution_engine import ExecutionEngine, IterationStats
from .runner import DistributedRunner, TrainingReport
from .trainer_loop import (
    SAMPLES_TO_TARGET,
    ConvergenceModel,
    DetectionEvent,
    FailureDetector,
    end_to_end_minutes,
)

__all__ = [
    "Deployment",
    "build_deployment",
    "ExecutionEngine",
    "IterationStats",
    "DistributedRunner",
    "TrainingReport",
    "ConvergenceModel",
    "end_to_end_minutes",
    "SAMPLES_TO_TARGET",
    "DetectionEvent",
    "FailureDetector",
]
