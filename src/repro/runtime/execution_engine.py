"""Ground-truth execution engine — the testbed stand-in.

Runs a compiled deployment under :class:`TruthCostModel` (analytic costs
with jitter and inter-server bandwidth discount).  All numbers reported
by the experiment harness come from this engine, never from the Strategy
Maker's profile-based simulator, so strategy search and evaluation use
different cost models (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .. import telemetry
from ..cluster.topology import Cluster
from ..errors import OutOfMemoryError
from ..parallel.distgraph import DistGraph
from ..scheduling.list_scheduler import Schedule
from ..simulation.costs import TruthCostModel
from ..simulation.engine import Simulator
from ..simulation.metrics import SimulationResult


@dataclass
class IterationStats:
    """Aggregate over measured training iterations."""

    times: List[float] = field(default_factory=list)
    last_result: Optional[SimulationResult] = None

    @property
    def mean(self) -> float:
        return float(np.mean(self.times)) if self.times else float("nan")

    @property
    def std(self) -> float:
        """Sample standard deviation (ddof=1); NaN below 2 iterations."""
        if len(self.times) < 2:
            return float("nan")
        return float(np.std(self.times, ddof=1))

    @property
    def iterations(self) -> int:
        return len(self.times)


class ExecutionEngine:
    """Executes distributed training iterations on the modelled cluster.

    The engine owns one seeded RNG stream (``self.rng``) shared with its
    :class:`TruthCostModel` (jitter draws) and, when a ``fault_injector``
    is attached, with the injector — so a whole faulted run is a pure
    function of ``seed`` plus the fault schedule, and a run with an
    empty schedule is bit-identical to one with no injector at all.
    """

    def __init__(self, cluster: Cluster, *, jitter_sigma: float = 0.04,
                 interserver_discount: float = 0.92, seed: int = 1234,
                 rng: Optional[np.random.Generator] = None,
                 fault_injector=None):
        self.cluster = cluster
        # an explicit generator continues an existing stream (the elastic
        # trainer rebuilds the engine mid-run when the fleet grows and
        # must not restart the jitter sequence); otherwise seed a fresh one
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        self.cost = TruthCostModel(cluster, jitter_sigma=jitter_sigma,
                                   interserver_discount=interserver_discount,
                                   rng=self.rng)
        self._simulator = Simulator(self.cost)
        self.capacities = {d.device_id: d.usable_memory_bytes
                           for d in cluster.devices}
        self.fault_injector = fault_injector
        if fault_injector is not None:
            fault_injector.bind(self)

    def run_iteration(self, dist: DistGraph, schedule: Schedule,
                      resident_bytes: Dict[str, int], *,
                      check_memory: bool = True,
                      trace: bool = False) -> SimulationResult:
        """Execute one iteration; raises :class:`OutOfMemoryError` if a
        device's peak usage exceeds its capacity (as the real run would)."""
        tel = telemetry.active()
        with telemetry.span("engine.iteration", graph=dist.name):
            result = self._simulator.run(
                dist,
                priorities=schedule.priorities,
                resident_bytes=resident_bytes,
                capacities=self.capacities,
                trace=trace,
            )
        if tel is not None:
            tel.registry.histogram(
                "engine_iteration_seconds", labels={"graph": dist.name},
                help="simulated per-iteration time on the truth engine",
            ).observe(result.makespan)
            for device in result.oom_devices:
                tel.registry.counter(
                    "engine_oom_total", labels={"device": device},
                    help="iterations that exceeded a device's memory",
                ).inc()
        if check_memory and result.oom_devices:
            worst = result.oom_devices[0]
            raise OutOfMemoryError(
                worst,
                required=int(result.peak_memory[worst]),
                capacity=self.capacities[worst],
            )
        return result

    def measure(self, dist: DistGraph, schedule: Schedule,
                resident_bytes: Dict[str, int], *, iterations: int = 10,
                warmup: int = 1) -> IterationStats:
        """Run ``warmup + iterations`` iterations; keep stats of the last
        ``iterations`` (the paper averages over 500 real iterations)."""
        stats = IterationStats()
        with telemetry.span("engine.measure", graph=dist.name,
                            iterations=iterations, warmup=warmup):
            for i in range(warmup + iterations):
                result = self.run_iteration(dist, schedule, resident_bytes)
                if i >= warmup:
                    stats.times.append(result.makespan)
                    stats.last_result = result
        tel = telemetry.active()
        if tel is not None and stats.iterations >= 2 and stats.mean > 0:
            # realized run-to-run jitter (std/mean) vs the configured sigma
            tel.registry.gauge(
                "engine_jitter_realized", labels={"graph": dist.name},
                help="coefficient of variation of measured iterations",
            ).set(stats.std / stats.mean)
        return stats
