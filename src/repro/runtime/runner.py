"""The ``dist_runner`` returned by the client API (paper Sec. 3.5)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .. import telemetry
from ..errors import ReproError
from ..graph.op import OpPhase
from .deployment import Deployment
from .execution_engine import ExecutionEngine


@dataclass
class TrainingReport:
    """What ``dist_runner.run(steps)`` hands back."""

    steps: int
    iteration_times: List[float] = field(default_factory=list)
    global_batch: int = 0

    @property
    def mean_iteration_time(self) -> float:
        if not self.iteration_times:
            return float("nan")
        return float(np.mean(self.iteration_times))

    @property
    def throughput(self) -> float:
        """Training throughput in samples/second."""
        mean = self.mean_iteration_time
        if not mean or mean != mean:  # zero or NaN
            return 0.0
        return self.global_batch / mean

    @property
    def total_seconds(self) -> float:
        return float(np.sum(self.iteration_times))


class DistributedRunner:
    """Executes the distributed training model produced by HeteroG.

    ``run(steps)`` plays ``steps`` training iterations on the execution
    engine, enforcing the computed execution order (Sec. 3.4, "Order
    Enforcement") and the per-device memory limits.
    """

    def __init__(self, deployment: Deployment,
                 engine: Optional[ExecutionEngine] = None):
        self.deployment = deployment
        self.engine = engine or ExecutionEngine(deployment.cluster)
        self._global_batch = _infer_global_batch(deployment)

    @property
    def global_batch(self) -> int:
        return self._global_batch

    def run(self, steps: int) -> TrainingReport:
        if steps <= 0:
            raise ReproError(f"steps must be positive, got {steps}")
        report = TrainingReport(steps=steps, global_batch=self._global_batch)
        with telemetry.span("pipeline.execute",
                            graph=self.deployment.graph.name, steps=steps):
            for _ in range(steps):
                result = self.engine.run_iteration(
                    self.deployment.dist,
                    self.deployment.schedule,
                    self.deployment.resident_bytes,
                )
                report.iteration_times.append(result.makespan)
        tel = telemetry.active()
        if tel is not None:
            tel.registry.gauge(
                "runner_throughput_samples_per_second",
                labels={"graph": self.deployment.graph.name},
                help="training throughput of the last run() call",
            ).set(report.throughput)
        return report


def _infer_global_batch(deployment: Deployment) -> int:
    for op in deployment.graph:
        if op.phase is OpPhase.INPUT and op.output.batch_size:
            return int(op.output.batch_size)
    return 0
