"""End-to-end training-time model (paper Sec. 6.4 / Table 5) and the
failure-detection layer of the resilience subsystem.

HeteroG's graph rewriting is semantics-preserving (synchronous SGD, same
global batch size), so "the total number of training iterations needed
for model convergence is not changed" across strategies.  End-to-end
time therefore equals iterations-to-target x per-iteration time.

``SAMPLES_TO_TARGET`` holds the number of training samples each CNN
needs to reach its target top-5 accuracy, back-derived from the paper's
Table 5 (end-to-end minutes / per-iteration seconds x global batch);
iterations = samples / global_batch, which also reproduces the paper's
12-GPU rows (same samples, larger batch, fewer iterations).

:class:`FailureDetector` watches iteration results the way a real
trainer loop watches health probes: hard failures (a lost device, OOM)
surface as exceptions from the engine and are classified immediately;
soft failures (a persistent straggler, a degraded NIC) show up as a
per-device busy-time or per-link transfer-time blow-up against a warmed
baseline — the same signal :func:`repro.telemetry.critical_path`
attributes blame with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from .. import telemetry
from ..errors import DeviceLostError, OutOfMemoryError, ReproError
from ..simulation.metrics import SimulationResult
from ..telemetry.context import record_event

# samples to converge to target top-5 accuracy, per model family
SAMPLES_TO_TARGET: Dict[str, float] = {
    "vgg19": 12.8e6,
    "resnet200": 10.5e6,
    "inception_v3": 18.2e6,
    "mobilenet_v2": 11.0e6,
    "nasnet": 15.9e6,
    # NLP models: pre-training sample budgets (not in Table 5 but useful
    # for the examples)
    "transformer": 30.0e6,
    "bert_large": 8.0e6,
    "xlnet_large": 8.0e6,
}


@dataclass(frozen=True)
class ConvergenceModel:
    """Iterations/minutes needed to reach the target accuracy."""

    model_name: str
    global_batch: int

    @property
    def samples(self) -> float:
        try:
            return SAMPLES_TO_TARGET[self.model_name]
        except KeyError:
            raise ReproError(
                f"no convergence budget known for {self.model_name!r}; "
                f"known: {sorted(SAMPLES_TO_TARGET)}"
            ) from None

    @property
    def iterations(self) -> int:
        return int(round(self.samples / self.global_batch))

    def end_to_end_minutes(self, per_iteration_seconds: float) -> float:
        minutes = self.iterations * per_iteration_seconds / 60.0
        tel = telemetry.active()
        if tel is not None:
            labels = {"model": self.model_name}
            tel.registry.gauge(
                "trainer_iterations_to_target", labels=labels,
                help="iterations needed to reach the target accuracy",
            ).set(self.iterations)
            tel.registry.gauge(
                "trainer_end_to_end_minutes", labels=labels,
                help="projected end-to-end training minutes",
            ).set(minutes)
        return minutes


def end_to_end_minutes(model_name: str, global_batch: int,
                       per_iteration_seconds: float) -> float:
    """Convenience wrapper for the Table 5 harness."""
    model = ConvergenceModel(model_name, global_batch)
    return model.end_to_end_minutes(per_iteration_seconds)


# --------------------------------------------------------------------- #
# failure detection (resilience subsystem)
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class DetectionEvent:
    """One detected fault: what, where, and how bad.

    ``kind`` is one of ``device_lost``, ``oom``, ``straggler`` or
    ``link_degraded``; ``resource`` names the device or ``link:a->b``;
    ``severity`` is the blow-up ratio against the healthy baseline
    (0.0 for hard failures, which have no meaningful ratio).
    """

    iteration: int
    kind: str
    resource: str
    severity: float = 0.0

    @property
    def is_hard(self) -> bool:
        return self.kind in ("device_lost", "oom")


class FailureDetector:
    """Notices failed/degraded resources from iteration results.

    Hard failures arrive as exceptions (:meth:`observe_error`); soft
    degradations are inferred from :class:`SimulationResult` busy-time
    tables (:meth:`observe`): after ``warmup`` healthy iterations seed
    an exponential-moving-average baseline, any device whose busy time
    exceeds ``blowup_threshold`` x its baseline is flagged a straggler,
    and any link whose busy time exceeds ``link_threshold`` x baseline
    is flagged degraded.  The thresholds sit well above the engine's
    run-to-run jitter (sigma ~= 0.04) so healthy noise never trips them.

    Each resource is flagged at most once; after the controller replans
    (the execution profile legitimately changes), call :meth:`reset` to
    re-warm the baselines against the new deployment.
    """

    def __init__(self, *, blowup_threshold: float = 1.4,
                 link_threshold: float = 1.4, warmup: int = 2,
                 ema: float = 0.5):
        if blowup_threshold <= 1.0 or link_threshold <= 1.0:
            raise ReproError("detection thresholds must be > 1.0")
        if not 0 < ema <= 1:
            raise ReproError(f"ema weight must be in (0, 1], got {ema}")
        self.blowup_threshold = blowup_threshold
        self.link_threshold = link_threshold
        self.warmup = warmup
        self.ema = ema
        self._device_baseline: Dict[str, float] = {}
        self._link_baseline: Dict[str, float] = {}
        self._healthy = 0
        self._flagged: Set[str] = set()

    def reset(self) -> None:
        """Forget baselines and flags (after a replan changed the plan)."""
        self._device_baseline.clear()
        self._link_baseline.clear()
        self._healthy = 0
        self._flagged.clear()

    # ---------------------------------------------------------------- #
    def observe_error(self, iteration: int,
                      exc: Exception) -> DetectionEvent:
        """Classify a hard failure the engine raised."""
        if isinstance(exc, DeviceLostError):
            event = DetectionEvent(iteration, "device_lost", exc.device)
        elif isinstance(exc, OutOfMemoryError):
            event = DetectionEvent(iteration, "oom", exc.device)
        else:
            raise ReproError(
                f"cannot classify {type(exc).__name__}: {exc}") from exc
        self._flagged.add(event.resource)
        self._count(event)
        return event

    def observe(self, iteration: int, result: SimulationResult,
                ) -> List[DetectionEvent]:
        """Update baselines with one healthy-looking iteration; return
        any soft degradations it reveals."""
        events: List[DetectionEvent] = []
        if self._healthy < self.warmup:
            self._absorb(result)
            self._healthy += 1
            return events
        events.extend(self._scan(
            iteration, result.device_busy, self._device_baseline,
            self.blowup_threshold, "straggler"))
        events.extend(self._scan(
            iteration, result.link_busy, self._link_baseline,
            self.link_threshold, "link_degraded"))
        for event in events:
            self._count(event)
        return events

    # ---------------------------------------------------------------- #
    def _absorb(self, result: SimulationResult) -> None:
        for table, baseline in (
                (result.device_busy, self._device_baseline),
                (result.link_busy, self._link_baseline)):
            for resource, busy in table.items():
                prev = baseline.get(resource)
                baseline[resource] = busy if prev is None \
                    else (1 - self.ema) * prev + self.ema * busy

    def _scan(self, iteration: int, table: Dict[str, float],
              baseline: Dict[str, float], threshold: float,
              kind: str) -> List[DetectionEvent]:
        events: List[DetectionEvent] = []
        for resource, busy in table.items():
            if resource in self._flagged:
                continue
            prev = baseline.get(resource)
            if prev is None or prev <= 0:
                baseline[resource] = busy
                continue
            ratio = busy / prev
            if ratio > threshold:
                self._flagged.add(resource)
                events.append(DetectionEvent(iteration, kind, resource,
                                             severity=ratio))
            else:
                # healthy sample: keep tracking drift
                baseline[resource] = (1 - self.ema) * prev + self.ema * busy
        return events

    @staticmethod
    def _count(event: DetectionEvent) -> None:
        record_event("fault_detected", kind=event.kind,
                     resource=event.resource, iteration=event.iteration,
                     severity=event.severity)
        tel = telemetry.active()
        if tel is not None:
            tel.registry.counter(
                "resilience_detections_total",
                labels={"kind": event.kind},
                help="faults noticed by the failure detector",
            ).inc()
