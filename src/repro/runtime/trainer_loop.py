"""End-to-end training-time model (paper Sec. 6.4 / Table 5).

HeteroG's graph rewriting is semantics-preserving (synchronous SGD, same
global batch size), so "the total number of training iterations needed
for model convergence is not changed" across strategies.  End-to-end
time therefore equals iterations-to-target x per-iteration time.

``SAMPLES_TO_TARGET`` holds the number of training samples each CNN
needs to reach its target top-5 accuracy, back-derived from the paper's
Table 5 (end-to-end minutes / per-iteration seconds x global batch);
iterations = samples / global_batch, which also reproduces the paper's
12-GPU rows (same samples, larger batch, fewer iterations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .. import telemetry
from ..errors import ReproError

# samples to converge to target top-5 accuracy, per model family
SAMPLES_TO_TARGET: Dict[str, float] = {
    "vgg19": 12.8e6,
    "resnet200": 10.5e6,
    "inception_v3": 18.2e6,
    "mobilenet_v2": 11.0e6,
    "nasnet": 15.9e6,
    # NLP models: pre-training sample budgets (not in Table 5 but useful
    # for the examples)
    "transformer": 30.0e6,
    "bert_large": 8.0e6,
    "xlnet_large": 8.0e6,
}


@dataclass(frozen=True)
class ConvergenceModel:
    """Iterations/minutes needed to reach the target accuracy."""

    model_name: str
    global_batch: int

    @property
    def samples(self) -> float:
        try:
            return SAMPLES_TO_TARGET[self.model_name]
        except KeyError:
            raise ReproError(
                f"no convergence budget known for {self.model_name!r}; "
                f"known: {sorted(SAMPLES_TO_TARGET)}"
            ) from None

    @property
    def iterations(self) -> int:
        return int(round(self.samples / self.global_batch))

    def end_to_end_minutes(self, per_iteration_seconds: float) -> float:
        minutes = self.iterations * per_iteration_seconds / 60.0
        tel = telemetry.active()
        if tel is not None:
            labels = {"model": self.model_name}
            tel.registry.gauge(
                "trainer_iterations_to_target", labels=labels,
                help="iterations needed to reach the target accuracy",
            ).set(self.iterations)
            tel.registry.gauge(
                "trainer_end_to_end_minutes", labels=labels,
                help="projected end-to-end training minutes",
            ).set(minutes)
        return minutes


def end_to_end_minutes(model_name: str, global_batch: int,
                       per_iteration_seconds: float) -> float:
    """Convenience wrapper for the Table 5 harness."""
    model = ConvergenceModel(model_name, global_batch)
    return model.end_to_end_minutes(per_iteration_seconds)
