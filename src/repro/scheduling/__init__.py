"""Execution-order scheduling: ranks, list scheduler, FIFO, bounds."""

from .bounds import (
    WorstCaseInstance,
    critical_path,
    optimal_lower_bound,
    total_work,
    worst_case_instance,
)
from .list_scheduler import FifoScheduler, ListScheduler, Schedule
from .ranking import compute_ranks

__all__ = [
    "ListScheduler",
    "FifoScheduler",
    "Schedule",
    "compute_ranks",
    "worst_case_instance",
    "WorstCaseInstance",
    "total_work",
    "critical_path",
    "optimal_lower_bound",
]
