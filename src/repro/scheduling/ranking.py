"""Operation ranks for list scheduling (paper Sec. 4.2).

``rank(o_i) = p_i + max_{o_j in succ(o_i)} rank(o_j)`` — an op's rank is
the length of the longest remaining path to the sink, counting both
computation and communication durations.  HEFT-style upward rank.

``comm_weight`` implements the "maximal computation-communication
overlap" goal: communication durations are inflated when computing ranks
(not when simulating!), so a cheap compute op that unblocks a large
tensor transfer or collective outranks equally-cheap compute that only
continues the backward chain.  Without it, every parameter-gradient op
(tiny compute, short remaining path) is postponed behind the backward
chain and all gradient aggregations serialize in a tail after BP — the
exact pathology Figs. 1-2 of the paper illustrate.

The computation runs over the graph's :class:`SimKernel` array lowering:
the topological order, per-op durations (for deterministic cost
providers) and successor adjacency are shared with the simulator instead
of being re-derived per call.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..parallel.distgraph import DistGraph
from ..simulation.costs import CostProvider
from ..simulation.kernel import SimKernel, lower

#: default inflation of communication time in rank computation
DEFAULT_COMM_WEIGHT = 4.0


def kernel_ranks(kernel: SimKernel, cost: CostProvider,
                 comm_weight: float = DEFAULT_COMM_WEIGHT) -> "list[float]":
    """Upward ranks indexed by kernel op index.

    Shares the kernel's cached duration array when the cost provider is
    deterministic; stochastic providers are queried in reverse
    topological order (the same draw order the dict implementation
    used).
    """
    if comm_weight <= 0:
        raise ValueError(f"comm_weight must be positive, got {comm_weight}")
    if kernel.has_cycle:
        # raise the same CompileError the graph API raises for cycles
        kernel.graph.topological_order()
    durations = kernel.durations_for(cost)
    is_comm = kernel.is_comm
    succ = kernel.succ
    ranks = [0.0] * kernel.n
    cost_duration = cost.duration
    ops = kernel.ops
    for i in reversed(kernel.topo):
        duration = durations[i] if durations is not None \
            else cost_duration(ops[i])
        if is_comm[i]:
            duration *= comm_weight
        succ_rank = 0.0
        for s in succ[i]:
            rank = ranks[s]
            if rank > succ_rank:
                succ_rank = rank
        ranks[i] = duration + succ_rank
    return ranks


def compute_ranks(graph: DistGraph, cost: CostProvider,
                  comm_weight: float = DEFAULT_COMM_WEIGHT, *,
                  kernel: Optional[SimKernel] = None
                  ) -> Dict[str, float]:
    """Upward rank of every dist-op under the given cost model."""
    kernel = kernel if kernel is not None else lower(graph)
    ranks = kernel_ranks(kernel, cost, comm_weight)
    names = kernel.names
    # keyed in reverse topological order, matching the historical
    # insertion order of the dict implementation
    return {names[i]: ranks[i] for i in reversed(kernel.topo)}
