"""Operation ranks for list scheduling (paper Sec. 4.2).

``rank(o_i) = p_i + max_{o_j in succ(o_i)} rank(o_j)`` — an op's rank is
the length of the longest remaining path to the sink, counting both
computation and communication durations.  HEFT-style upward rank.

``comm_weight`` implements the "maximal computation-communication
overlap" goal: communication durations are inflated when computing ranks
(not when simulating!), so a cheap compute op that unblocks a large
tensor transfer or collective outranks equally-cheap compute that only
continues the backward chain.  Without it, every parameter-gradient op
(tiny compute, short remaining path) is postponed behind the backward
chain and all gradient aggregations serialize in a tail after BP — the
exact pathology Figs. 1-2 of the paper illustrate.
"""

from __future__ import annotations

from typing import Dict

from ..parallel.distgraph import DistGraph
from ..simulation.costs import CostProvider

#: default inflation of communication time in rank computation
DEFAULT_COMM_WEIGHT = 4.0


def compute_ranks(graph: DistGraph, cost: CostProvider,
                  comm_weight: float = DEFAULT_COMM_WEIGHT
                  ) -> Dict[str, float]:
    """Upward rank of every dist-op under the given cost model."""
    if comm_weight <= 0:
        raise ValueError(f"comm_weight must be positive, got {comm_weight}")
    ranks: Dict[str, float] = {}
    for name in reversed(graph.topological_order()):
        op = graph.op(name)
        duration = cost.duration(op)
        if op.is_communication:
            duration *= comm_weight
        succ_rank = max(
            (ranks[s] for s in graph.successors(name)), default=0.0
        )
        ranks[name] = duration + succ_rank
    return ranks
