"""Theorem 1 / Theorem 2 machinery (paper appendix).

- :func:`theorem1_bound` — the (M + M^2) * T* upper bound on the
  list-scheduled makespan, with the two T* lower bounds from the proof
  (total work divided by resource count; critical path).
- :func:`worst_case_instance` — the crafted DAG of Theorem 2 on which the
  list schedule approaches the bound: H-1 chains of k*H ops round-robined
  over H devices (duration p on the first device of each batch, e ~ 0
  elsewhere) plus k independent p-ops pinned to the last device, with
  adversarial tie-breaking among equal ranks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..parallel.distgraph import DistGraph, DistOp, DistOpKind
from ..simulation.costs import MappingCostModel


def total_work(graph: DistGraph, cost) -> float:
    """Sum of all op durations (Theorem 1's sum p_i)."""
    return sum(cost.duration(graph.op(n)) for n in graph.op_names)


def critical_path(graph: DistGraph, cost) -> float:
    """Longest-path duration through the DAG."""
    best: Dict[str, float] = {}
    for name in reversed(graph.topological_order()):
        d = cost.duration(graph.op(name))
        best[name] = d + max(
            (best[s] for s in graph.successors(name)), default=0.0
        )
    return max(best.values(), default=0.0)


def optimal_lower_bound(graph: DistGraph, cost, num_resources: int) -> float:
    """max(total work / resources, critical path) <= T*."""
    if num_resources <= 0:
        raise ValueError("need at least one resource")
    return max(total_work(graph, cost) / num_resources,
               critical_path(graph, cost))


def theorem1_bound(graph: DistGraph, cost, num_gpus: int) -> float:
    """(M + M^2) * (T* lower bound) — any list schedule must beat this...
    more precisely, Theorem 1 guarantees TLS <= (M + M^2) * T*, and since
    T* >= our lower bound is not usable directly, we return the *provable*
    cap TLS <= sum_i p_i (first inequality of the proof)."""
    return total_work(graph, cost)


@dataclass
class WorstCaseInstance:
    """The crafted Theorem 2 instance plus its closed-form times."""
    graph: DistGraph
    cost: MappingCostModel
    priorities: Dict[str, int]
    num_devices: int
    t_ls_formula: float
    t_opt_formula: float

    @property
    def ratio_formula(self) -> float:
        return self.t_ls_formula / self.t_opt_formula


def worst_case_instance(h: int = 4, k: int = 20, p: float = 1.0,
                        e: float = 1e-4) -> WorstCaseInstance:
    """Build the Theorem 2 instance for H devices.

    Chains ``1..H-1`` each have ``k * H`` ops; op ``n*H + h`` of a chain is
    placed on device ``h``.  The first op of each batch (on device 1 for
    chain structure as in appendix Fig. 3) costs ``p``; the rest cost
    ``e``.  ``k`` independent ``p``-ops sit on device ``H``.  Adversarial
    priorities make the list scheduler serialize the p-ops of a batch
    across chains before touching the independent ops.

    Formulas from the appendix:
      T_LS  = ((k-1)H + 1) p + ((k-1)(2H-3) + H-1) e
      T*    = k (p + (H-1) e) + (H-2) e
    """
    if h < 3:
        raise ValueError("theorem 2 instance needs H >= 3")
    if k < 2:
        raise ValueError("need k >= 2 batches")
    graph = DistGraph(f"worst_case_H{h}_k{k}")
    durations: Dict[str, float] = {}

    def add(name: str, device: int, dur: float, deps=()) -> str:
        graph.add(
            DistOp(name=name, kind=DistOpKind.COMPUTE, device=f"dev{device}",
                   source_op=None),
            deps,
        )
        durations[name] = dur
        return name

    # H-1 chains, each k*H ops; position j (0-based) runs on device j mod H.
    # The op starting each batch (position j % H == 0) costs p, others e.
    chain_ops: Dict[Tuple[int, int], str] = {}
    for c in range(h - 1):
        prev = None
        for j in range(k * h):
            dev = j % h
            dur = p if dev == 0 else e
            name = f"chain{c}_op{j}"
            add(name, dev, dur, deps=[prev] if prev else ())
            chain_ops[(c, j)] = name
            prev = name

    for i in range(k):
        add(f"indep{i}", h - 1, p)

    # Adversarial priorities consistent with ranks: within a batch of equal
    # ranks, device 0 executes chains in reverse order (H-2 .. 0) while the
    # later devices execute them in forward order (0 .. H-2), maximally
    # staggering the chains.  Independent ops are last (lowest rank).
    priorities: Dict[str, int] = {}
    counter = 0
    for batch in range(k):
        # device 0 ops of this batch, chains in reverse
        for c in reversed(range(h - 1)):
            priorities[chain_ops[(c, batch * h)]] = counter
            counter += 1
        # remaining ops of the batch in forward chain order
        for j in range(batch * h + 1, (batch + 1) * h):
            for c in range(h - 1):
                priorities[chain_ops[(c, j)]] = counter
                counter += 1
    for i in range(k):
        priorities[f"indep{i}"] = counter
        counter += 1

    t_ls = ((k - 1) * h + 1) * p + ((k - 1) * (2 * h - 3) + h - 1) * e
    t_opt = k * (p + (h - 1) * e) + (h - 2) * e
    return WorstCaseInstance(
        graph=graph,
        cost=MappingCostModel(durations),
        priorities=priorities,
        num_devices=h,
        t_ls_formula=t_ls,
        t_opt_formula=t_opt,
    )
