"""Rank-based list scheduling (paper Sec. 4.2) and the FIFO baseline.

The Scheduler assigns every dist-op a priority derived from its upward
rank; the execution engine then runs ready ops on each device/link in
priority order.  ``TensorFlow``'s default behaviour — executing ops in the
order they become ready — is the FIFO baseline of Table 7.

Scheduling is *single-pass*: the two candidate-order simulations run on
the graph's shared :class:`SimKernel` lowering, and the winning
candidate's full :class:`SimulationResult` is returned on the
:class:`Schedule` so the plan layer can reuse it instead of simulating
the chosen order a third time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .. import telemetry
from ..parallel.distgraph import DistGraph
from ..simulation.costs import CostProvider
from ..simulation.kernel import SimKernel, lower
from ..simulation.metrics import SimulationResult
from .ranking import DEFAULT_COMM_WEIGHT, kernel_ranks


@dataclass(frozen=True)
class Schedule:
    """An execution-order decision: per-op priority (smaller runs first)."""

    priorities: Optional[Dict[str, int]]  # None = engine-native FIFO
    ranks: Optional[Dict[str, float]] = None
    estimated_makespan: Optional[float] = None
    chosen: Optional[str] = None  # which candidate order won
    # the winning candidate's simulation (traced), when the scheduler
    # already ran it under the caller's resident_bytes/capacities —
    # PlanBuilder reuses this instead of re-simulating the plan
    sim_result: Optional[SimulationResult] = None

    @property
    def is_fifo(self) -> bool:
        return self.priorities is None


class ListScheduler:
    """Computes the HeteroG execution order for a distributed graph.

    Two candidate orders are evaluated in the Strategy Maker's simulator
    and the better one is enforced:

    - ``rank``: upward-rank priorities with communication inflated by
      ``comm_weight`` — dominant when independent links (PS pushes/pulls)
      carry the traffic and the critical path matters;
    - ``earliest``: the emergent ready-arrival order, captured from a
      simulation trace into a static order — dominant when a single
      serialized resource (NCCL) is the bottleneck and collectives must
      start as early as possible.

    Both are schedules the paper's Scheduler could emit; simulating
    candidates is exactly what its Simulator component is for (Sec. 3.3).

    The scheduler carries no per-call state, so one instance is safe to
    share across threads (ranks travel on the returned Schedule, not on
    the scheduler).
    """

    def __init__(self, comm_weight: float = DEFAULT_COMM_WEIGHT):
        self.comm_weight = comm_weight

    def _rank_priorities(
        self, kernel: SimKernel, cost: CostProvider
    ) -> Tuple[Dict[str, int], Dict[str, float], "list[int]"]:
        ranks = kernel_ranks(kernel, cost, comm_weight=self.comm_weight)
        # higher rank -> runs earlier; ties broken by topological position
        # for determinism (matching the engine's stable heap ordering)
        topo_pos = kernel.topo_positions()
        # C-level sort key: precompute (-rank, topo_pos) tuples and index
        # into them, instead of calling a Python lambda per comparison
        sort_keys = list(zip([-r for r in ranks], topo_pos))
        ordered = sorted(range(kernel.n), key=sort_keys.__getitem__)
        prio_arr = [0] * kernel.n
        for pos, i in enumerate(ordered):
            prio_arr[i] = pos
        names = kernel.names
        priorities = dict(zip(names, prio_arr))
        rank_map = {names[i]: ranks[i] for i in reversed(kernel.topo)}
        return priorities, rank_map, prio_arr

    @staticmethod
    def _trace_order(schedule_trace: Dict[str, tuple]) -> Dict[str, int]:
        ordered = sorted(schedule_trace, key=lambda n: schedule_trace[n])
        return {name: i for i, name in enumerate(ordered)}

    def schedule(self, graph: DistGraph, cost: CostProvider, *,
                 kernel: Optional[SimKernel] = None,
                 resident_bytes: Optional[Dict[str, int]] = None,
                 capacities: Optional[Dict[str, int]] = None,
                 prune_above: Optional[float] = None,
                 prune: bool = True,
                 engine: str = "kernel") -> Schedule:
        """Choose the better of the two candidate orders.

        ``kernel`` reuses an existing lowering (otherwise taken from the
        graph's cache).  When ``resident_bytes``/``capacities`` are
        given, the candidate simulations account memory under them and
        the winner's result — returned as ``Schedule.sim_result`` — is a
        full evaluation of the chosen order.

        ``prune_above`` aborts both candidate simulations once they
        exceed the caller's best-so-far: when *both* abort, the returned
        Schedule carries a ``pruned`` sim_result whose makespan is a
        lower bound on this strategy's winner (the plan layer turns that
        into a pruned outcome).  Independently, the ``earliest``
        candidate is always raced against the completed ``rank``
        makespan — an earliest run that exceeds it has already lost the
        ``<=`` tie-break, so aborting there returns the identical
        winner.  Both prunings apply only under deterministic cost
        providers (a stochastic provider's RNG draw sequence must not
        depend on pruning) and ``prune=False`` disables them outright.

        ``engine`` selects the candidate simulations' event loop
        (``"kernel"`` or ``"reference"``); the two engines are
        bit-identical, so the chosen order and its makespan do not
        depend on it.
        """
        from ..simulation.engine import Simulator  # local: avoid cycle
        tel = telemetry.active()
        kernel = kernel if kernel is not None else lower(graph)
        simulator = Simulator(cost)
        can_prune = prune and getattr(cost, "deterministic", False)
        limit = prune_above if can_prune else None
        with telemetry.span("schedule.ranking", graph=graph.name):
            rank_start = time.perf_counter()
            rank_priorities, ranks, prio_arr = self._rank_priorities(
                kernel, cost)
            rank_seconds = time.perf_counter() - rank_start
        with telemetry.span("schedule.placement", graph=graph.name):
            place_start = time.perf_counter()
            rank_run = simulator.run(graph, priorities=rank_priorities,
                                     resident_bytes=resident_bytes,
                                     capacities=capacities, trace=True,
                                     kernel=kernel, engine=engine,
                                     prune_above=limit,
                                     _prio_ids=prio_arr)
            # a completed rank run's makespan is itself a prune
            # threshold for the earliest candidate: rank wins ties, so
            # any earliest run that exceeds it has already lost
            if rank_run.pruned:
                earliest_limit = limit
            elif can_prune:
                earliest_limit = rank_run.makespan
            else:
                earliest_limit = None
            earliest_run = simulator.run(graph, priorities=None,
                                         resident_bytes=resident_bytes,
                                         capacities=capacities, trace=True,
                                         kernel=kernel, engine=engine,
                                         prune_above=earliest_limit)
            place_seconds = time.perf_counter() - place_start
        if rank_run.pruned and earliest_run.pruned:
            # both candidates exceed the caller's best-so-far: the whole
            # strategy is out of the race; min of the partial makespans
            # is a lower bound on whatever the winner would have been
            pruned_result = (rank_run
                             if rank_run.makespan <= earliest_run.makespan
                             else earliest_run)
            return Schedule(priorities=rank_priorities, ranks=ranks,
                            estimated_makespan=None, chosen=None,
                            sim_result=pruned_result)
        if rank_run.pruned:
            chosen = "earliest"
        elif earliest_run.pruned:
            chosen = "rank"
        else:
            chosen = ("rank" if rank_run.makespan <= earliest_run.makespan
                      else "earliest")
        if tel is not None:
            reg = tel.registry
            reg.histogram("sched_ranking_seconds",
                          help="upward-rank computation wall time",
                          ).observe(rank_seconds)
            reg.histogram("sched_placement_seconds",
                          help="candidate-order simulation wall time",
                          ).observe(place_seconds)
            reg.counter("sched_chosen_total", labels={"order": chosen},
                        help="which candidate execution order won").inc()
        if chosen == "rank":
            return Schedule(priorities=rank_priorities,
                            ranks=ranks,
                            estimated_makespan=rank_run.makespan,
                            chosen="rank",
                            sim_result=rank_run)
        return Schedule(
            priorities=self._trace_order(earliest_run.schedule),
            ranks=ranks,
            estimated_makespan=earliest_run.makespan,
            chosen="earliest",
            sim_result=earliest_run,
        )


class FifoScheduler:
    """The framework's default execution order (no order enforcement).

    TensorFlow's executor drains its ready queue with a thread pool, so
    the order among simultaneously-ready ops is effectively arbitrary
    and varies run to run.  We model it with seeded random priorities
    (``randomize=True``, the default): among ready ops, an arbitrary one
    starts first.  ``randomize=False`` gives strict ready-arrival order —
    an idealized FIFO that is often unrealistically good, because the
    compiler happens to enqueue gradient producers right before their
    consumers.
    """

    def __init__(self, randomize: bool = True, seed: int = 0):
        self.randomize = randomize
        self.seed = seed

    def schedule(self, graph: DistGraph,
                 cost: Optional[CostProvider] = None, *,
                 kernel: Optional[SimKernel] = None,
                 resident_bytes: Optional[Dict[str, int]] = None,
                 capacities: Optional[Dict[str, int]] = None,
                 prune_above: Optional[float] = None,
                 prune: bool = True,
                 engine: str = "kernel") -> Schedule:
        # prune_above/prune/engine are accepted for scheduler
        # interchangeability but moot here: FIFO ordering runs no
        # candidate simulations
        if not self.randomize:
            return Schedule(priorities=None)
        rng = np.random.default_rng(self.seed)
        names = graph.op_names
        order = rng.permutation(len(names))
        return Schedule(priorities={n: int(order[i])
                                    for i, n in enumerate(names)})
