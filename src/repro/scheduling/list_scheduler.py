"""Rank-based list scheduling (paper Sec. 4.2) and the FIFO baseline.

The Scheduler assigns every dist-op a priority derived from its upward
rank; the execution engine then runs ready ops on each device/link in
priority order.  ``TensorFlow``'s default behaviour — executing ops in the
order they become ready — is the FIFO baseline of Table 7.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

from .. import telemetry
from ..parallel.distgraph import DistGraph
from ..simulation.costs import CostProvider
from .ranking import DEFAULT_COMM_WEIGHT, compute_ranks


@dataclass(frozen=True)
class Schedule:
    """An execution-order decision: per-op priority (smaller runs first)."""

    priorities: Optional[Dict[str, int]]  # None = engine-native FIFO
    ranks: Optional[Dict[str, float]] = None
    estimated_makespan: Optional[float] = None
    chosen: Optional[str] = None  # which candidate order won

    @property
    def is_fifo(self) -> bool:
        return self.priorities is None


class ListScheduler:
    """Computes the HeteroG execution order for a distributed graph.

    Two candidate orders are evaluated in the Strategy Maker's simulator
    and the better one is enforced:

    - ``rank``: upward-rank priorities with communication inflated by
      ``comm_weight`` — dominant when independent links (PS pushes/pulls)
      carry the traffic and the critical path matters;
    - ``earliest``: the emergent ready-arrival order, captured from a
      simulation trace into a static order — dominant when a single
      serialized resource (NCCL) is the bottleneck and collectives must
      start as early as possible.

    Both are schedules the paper's Scheduler could emit; simulating
    candidates is exactly what its Simulator component is for (Sec. 3.3).
    """

    def __init__(self, comm_weight: float = DEFAULT_COMM_WEIGHT):
        self.comm_weight = comm_weight

    def _rank_priorities(self, graph: DistGraph, cost: CostProvider
                         ) -> Dict[str, int]:
        ranks = compute_ranks(graph, cost, comm_weight=self.comm_weight)
        # higher rank -> runs earlier; ties broken by topological position
        # for determinism (matching the engine's stable heap ordering)
        topo_pos = {name: i for i, name in enumerate(graph.topological_order())}
        ordered = sorted(
            graph.op_names,
            key=lambda n: (-ranks[n], topo_pos[n]),
        )
        self._last_ranks = ranks
        return {name: i for i, name in enumerate(ordered)}

    @staticmethod
    def _trace_order(schedule_trace: Dict[str, tuple]) -> Dict[str, int]:
        ordered = sorted(schedule_trace, key=lambda n: schedule_trace[n])
        return {name: i for i, name in enumerate(ordered)}

    def schedule(self, graph: DistGraph, cost: CostProvider) -> Schedule:
        from ..simulation.engine import Simulator  # local: avoid cycle
        tel = telemetry.active()
        simulator = Simulator(cost)
        with telemetry.span("schedule.ranking", graph=graph.name):
            rank_start = time.perf_counter()
            rank_priorities = self._rank_priorities(graph, cost)
            rank_seconds = time.perf_counter() - rank_start
        with telemetry.span("schedule.placement", graph=graph.name):
            place_start = time.perf_counter()
            rank_run = simulator.run(graph, priorities=rank_priorities)
            earliest_run = simulator.run(graph, priorities=None, trace=True)
            place_seconds = time.perf_counter() - place_start
        chosen = ("rank" if rank_run.makespan <= earliest_run.makespan
                  else "earliest")
        if tel is not None:
            reg = tel.registry
            reg.histogram("sched_ranking_seconds",
                          help="upward-rank computation wall time",
                          ).observe(rank_seconds)
            reg.histogram("sched_placement_seconds",
                          help="candidate-order simulation wall time",
                          ).observe(place_seconds)
            reg.counter("sched_chosen_total", labels={"order": chosen},
                        help="which candidate execution order won").inc()
        if chosen == "rank":
            return Schedule(priorities=rank_priorities,
                            ranks=self._last_ranks,
                            estimated_makespan=rank_run.makespan,
                            chosen="rank")
        return Schedule(
            priorities=self._trace_order(earliest_run.schedule),
            ranks=self._last_ranks,
            estimated_makespan=earliest_run.makespan,
            chosen="earliest",
        )


class FifoScheduler:
    """The framework's default execution order (no order enforcement).

    TensorFlow's executor drains its ready queue with a thread pool, so
    the order among simultaneously-ready ops is effectively arbitrary
    and varies run to run.  We model it with seeded random priorities
    (``randomize=True``, the default): among ready ops, an arbitrary one
    starts first.  ``randomize=False`` gives strict ready-arrival order —
    an idealized FIFO that is often unrealistically good, because the
    compiler happens to enqueue gradient producers right before their
    consumers.
    """

    def __init__(self, randomize: bool = True, seed: int = 0):
        self.randomize = randomize
        self.seed = seed

    def schedule(self, graph: DistGraph,
                 cost: Optional[CostProvider] = None) -> Schedule:
        if not self.randomize:
            return Schedule(priorities=None)
        import numpy as np
        rng = np.random.default_rng(self.seed)
        names = graph.op_names
        order = rng.permutation(len(names))
        return Schedule(priorities={n: int(order[i])
                                    for i, n in enumerate(names)})
