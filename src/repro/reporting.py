"""Reporting utilities: schedule timelines, Gantt export, strategy diffs.

These are inspection tools for the artifacts the pipeline produces: a
text Gantt chart of one simulated iteration, a JSON trace in Chrome
``chrome://tracing`` format, and summaries comparing two strategies.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from .parallel.distgraph import DistGraph, DistOpKind
from .parallel.strategy import Strategy
from .simulation.memory import MemoryTracker
from .simulation.metrics import SimulationResult
from .telemetry import Tracer


def _resource_of(dist: DistGraph, name: str) -> str:
    op = dist.op(name)
    if op.is_compute:
        return op.device  # type: ignore[return-value]
    if op.kind is DistOpKind.TRANSFER:
        return f"link {op.src_device}->{op.dst_device}"
    return "nccl"


def text_gantt(dist: DistGraph, result: SimulationResult, *,
               width: int = 80, max_rows: int = 40,
               only_devices: bool = True) -> str:
    """ASCII Gantt chart of a traced simulation (run with ``trace=True``)."""
    if not result.schedule:
        raise ValueError("result has no trace; simulate with trace=True")
    makespan = result.makespan or 1.0
    rows: Dict[str, List[Tuple[float, float]]] = {}
    for name, (start, end) in result.schedule.items():
        resource = _resource_of(dist, name)
        if only_devices and resource.startswith("link "):
            continue
        rows.setdefault(resource, []).append((start, end))

    lines: List[str] = [f"0{' ' * (width - 12)}{makespan * 1e3:.2f} ms"]
    ordered = sorted(rows)
    for resource in ordered[:max_rows]:
        cells = [" "] * width
        for start, end in rows[resource]:
            lo = int(start / makespan * (width - 1))
            hi = max(lo + 1, int(end / makespan * (width - 1)))
            for i in range(lo, min(hi, width)):
                cells[i] = "#" if resource != "nccl" else "="
        lines.append(f"{resource:>22s} |{''.join(cells)}|")
    hidden = len(ordered) - max_rows
    if hidden > 0:
        lines.append(f"(+{hidden} more resources)")
    return "\n".join(lines)


SIM_PID = 0       # simulated resources (devices, links, nccl)
PIPELINE_PID = 1  # wall-clock pipeline spans from the tracer


def _resource_rows(dist: DistGraph,
                   schedule: Dict[str, Tuple[float, float]]) -> Dict[str, int]:
    """Stable resource -> tid mapping: devices, then links, then nccl."""
    resources = {_resource_of(dist, name) for name in schedule}
    devices = sorted(r for r in resources
                     if not r.startswith("link ") and r != "nccl")
    links = sorted(r for r in resources if r.startswith("link "))
    ordered = devices + links + (["nccl"] if "nccl" in resources else [])
    return {r: i for i, r in enumerate(ordered)}


def _memory_counters(dist: DistGraph,
                     schedule: Dict[str, Tuple[float, float]],
                     resident_bytes: Optional[Dict[str, int]]) -> List[dict]:
    """Per-device memory counter tracks, replaying the refcounted
    tracker over the traced start/finish times."""
    memory = MemoryTracker(dist, resident_bytes or {})
    # finishes sort before starts at equal timestamps, matching the
    # engine's release-then-start event ordering
    timeline: List[Tuple[float, int, str]] = []
    for name, (start, end) in schedule.items():
        timeline.append((start, 1, name))
        timeline.append((end, 0, name))
    events: List[dict] = []
    for ts, is_start, name in sorted(timeline):
        op = dist.op(name)
        before = dict(memory.current)
        if is_start:
            memory.on_start(op)
        else:
            memory.on_finish(op)
        for device, value in memory.current.items():
            if before.get(device) != value:
                events.append({
                    "name": f"mem {device}", "ph": "C", "pid": SIM_PID,
                    "ts": ts * 1e6, "args": {"MiB": value / 2 ** 20},
                })
    return events


def _utilization_counters(dist: DistGraph,
                          schedule: Dict[str, Tuple[float, float]]
                          ) -> List[dict]:
    """Binary busy/idle counter tracks for links and the NCCL token
    (each is an exclusive resource, so utilization is 0 or 1)."""
    events: List[dict] = []
    for name in sorted(schedule):
        resource = _resource_of(dist, name)
        if not resource.startswith("link ") and resource != "nccl":
            continue
        start, end = schedule[name]
        track = f"util {resource}"
        events.append({"name": track, "ph": "C", "pid": SIM_PID,
                       "ts": start * 1e6, "args": {"busy": 1}})
        events.append({"name": track, "ph": "C", "pid": SIM_PID,
                       "ts": end * 1e6, "args": {"busy": 0}})
    return events


def chrome_trace(dist: DistGraph, result: SimulationResult, *,
                 tracer: Optional[Tracer] = None,
                 resident_bytes: Optional[Dict[str, int]] = None,
                 include_flows: bool = True,
                 include_counters: bool = True) -> List[dict]:
    """Events in Chrome tracing format (chrome://tracing or Perfetto).

    Emits, in addition to one ``X`` slice per dist-op:

    - ``M`` metadata events (``process_name``/``thread_name`` plus
      ``thread_sort_index``) so resources group deterministically:
      devices first, then links, then the NCCL token;
    - ``s``/``f`` flow events for every dependency edge
      (``include_flows``);
    - ``C`` counter tracks for per-device memory and per-link/NCCL
      utilization (``include_counters``; pass the deployment's
      ``resident_bytes`` to include parameters + optimizer state);
    - the tracer's wall-clock pipeline span tree on a second process
      when ``tracer`` is given.
    """
    if not result.schedule:
        raise ValueError("result has no trace; simulate with trace=True")
    schedule = result.schedule
    tid_of = _resource_rows(dist, schedule)

    events: List[dict] = [{
        "name": "process_name", "ph": "M", "pid": SIM_PID, "tid": 0,
        "args": {"name": "simulation"},
    }]
    for resource, tid in sorted(tid_of.items(), key=lambda kv: kv[1]):
        events.append({"name": "thread_name", "ph": "M", "pid": SIM_PID,
                       "tid": tid, "args": {"name": resource}})
        events.append({"name": "thread_sort_index", "ph": "M",
                       "pid": SIM_PID, "tid": tid,
                       "args": {"sort_index": tid}})

    ordered = sorted(schedule, key=lambda n: (schedule[n][0], n))
    for name in ordered:
        start, end = schedule[name]
        op = dist.op(name)
        args: Dict[str, object] = {"kind": op.kind.value}
        if op.size_bytes:
            args["size_bytes"] = op.size_bytes
        if op.is_compute and op.batch_fraction != 1.0:
            args["batch_fraction"] = op.batch_fraction
        events.append({
            "name": name,
            "cat": op.kind.value,
            "ph": "X",
            "ts": start * 1e6,
            "dur": (end - start) * 1e6,
            "pid": SIM_PID,
            "tid": tid_of[_resource_of(dist, name)],
            "args": args,
        })

    if include_flows:
        flow_id = 0
        for name in ordered:
            for succ in dist.successors(name):
                if succ not in schedule:
                    continue
                flow_id += 1
                events.append({
                    "name": "dep", "cat": "dependency", "ph": "s",
                    "id": flow_id, "ts": schedule[name][1] * 1e6,
                    "pid": SIM_PID,
                    "tid": tid_of[_resource_of(dist, name)],
                })
                events.append({
                    "name": "dep", "cat": "dependency", "ph": "f",
                    "bp": "e", "id": flow_id,
                    "ts": schedule[succ][0] * 1e6,
                    "pid": SIM_PID,
                    "tid": tid_of[_resource_of(dist, succ)],
                })

    if include_counters:
        events.extend(_memory_counters(dist, schedule, resident_bytes))
        events.extend(_utilization_counters(dist, schedule))

    if tracer is not None:
        events.extend(tracer.chrome_events(pid=PIPELINE_PID))
    return events


def save_chrome_trace(dist: DistGraph, result: SimulationResult,
                      path: str, *, tracer: Optional[Tracer] = None,
                      resident_bytes: Optional[Dict[str, int]] = None
                      ) -> None:
    """Write a chrome://tracing JSON file for a traced simulation."""
    events = chrome_trace(dist, result, tracer=tracer,
                          resident_bytes=resident_bytes)
    with open(path, "w") as fh:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, fh)


def strategy_diff(a: Strategy, b: Strategy) -> Dict[str, Tuple[str, str]]:
    """Ops whose strategy label differs between two strategies."""
    if a.graph is not b.graph and a.graph.name != b.graph.name:
        raise ValueError("strategies cover different graphs")
    out: Dict[str, Tuple[str, str]] = {}
    for name in a.graph.op_names:
        la, lb = a.get(name).label(), b.get(name).label()
        if la != lb:
            out[name] = (la, lb)
    return out


def describe_strategy(strategy: Strategy, top: int = 10) -> str:
    """Human-readable strategy summary: mix + the heaviest MP placements."""
    mix = strategy.strategy_mix()
    lines = ["strategy mix:"]
    for label, fraction in sorted(mix.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {label:12s} {fraction * 100:5.1f}%")
    heavy: List[Tuple[int, str, str]] = []
    for name in strategy.graph.op_names:
        st = strategy.get(name)
        op = strategy.graph.op(name)
        if st.label().startswith("MP:") and op.param_bytes > 0:
            heavy.append((op.param_bytes, name, st.label()))
    if heavy:
        heavy.sort(reverse=True)
        lines.append("largest unreplicated (MP) parameter owners:")
        for bytes_, name, label in heavy[:top]:
            lines.append(f"  {name:40s} {bytes_ / 2 ** 20:8.1f} MiB  {label}")
    return "\n".join(lines)
