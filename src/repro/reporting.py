"""Reporting utilities: schedule timelines, Gantt export, strategy diffs.

These are inspection tools for the artifacts the pipeline produces: a
text Gantt chart of one simulated iteration, a JSON trace in Chrome
``chrome://tracing`` format, and summaries comparing two strategies.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from .parallel.distgraph import DistGraph, DistOpKind
from .parallel.strategy import Strategy
from .simulation.metrics import SimulationResult


def _resource_of(dist: DistGraph, name: str) -> str:
    op = dist.op(name)
    if op.is_compute:
        return op.device  # type: ignore[return-value]
    if op.kind is DistOpKind.TRANSFER:
        return f"link {op.src_device}->{op.dst_device}"
    return "nccl"


def text_gantt(dist: DistGraph, result: SimulationResult, *,
               width: int = 80, max_rows: int = 40,
               only_devices: bool = True) -> str:
    """ASCII Gantt chart of a traced simulation (run with ``trace=True``)."""
    if not result.schedule:
        raise ValueError("result has no trace; simulate with trace=True")
    makespan = result.makespan or 1.0
    rows: Dict[str, List[Tuple[float, float]]] = {}
    for name, (start, end) in result.schedule.items():
        resource = _resource_of(dist, name)
        if only_devices and resource.startswith("link "):
            continue
        rows.setdefault(resource, []).append((start, end))

    lines: List[str] = [f"0{' ' * (width - 12)}{makespan * 1e3:.2f} ms"]
    for resource in sorted(rows)[:max_rows]:
        cells = [" "] * width
        for start, end in rows[resource]:
            lo = int(start / makespan * (width - 1))
            hi = max(lo + 1, int(end / makespan * (width - 1)))
            for i in range(lo, min(hi, width)):
                cells[i] = "#" if resource != "nccl" else "="
        lines.append(f"{resource:>22s} |{''.join(cells)}|")
    return "\n".join(lines)


def chrome_trace(dist: DistGraph, result: SimulationResult) -> List[dict]:
    """Events in Chrome tracing format (load via chrome://tracing)."""
    if not result.schedule:
        raise ValueError("result has no trace; simulate with trace=True")
    events = []
    for name, (start, end) in result.schedule.items():
        op = dist.op(name)
        events.append({
            "name": name,
            "cat": op.kind.value,
            "ph": "X",
            "ts": start * 1e6,
            "dur": (end - start) * 1e6,
            "pid": 0,
            "tid": _resource_of(dist, name),
        })
    return events


def save_chrome_trace(dist: DistGraph, result: SimulationResult,
                      path: str) -> None:
    """Write a chrome://tracing JSON file for a traced simulation."""
    with open(path, "w") as fh:
        json.dump({"traceEvents": chrome_trace(dist, result)}, fh)


def strategy_diff(a: Strategy, b: Strategy) -> Dict[str, Tuple[str, str]]:
    """Ops whose strategy label differs between two strategies."""
    if a.graph is not b.graph and a.graph.name != b.graph.name:
        raise ValueError("strategies cover different graphs")
    out: Dict[str, Tuple[str, str]] = {}
    for name in a.graph.op_names:
        la, lb = a.get(name).label(), b.get(name).label()
        if la != lb:
            out[name] = (la, lb)
    return out


def describe_strategy(strategy: Strategy, top: int = 10) -> str:
    """Human-readable strategy summary: mix + the heaviest MP placements."""
    mix = strategy.strategy_mix()
    lines = ["strategy mix:"]
    for label, fraction in sorted(mix.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {label:12s} {fraction * 100:5.1f}%")
    heavy: List[Tuple[int, str, str]] = []
    for name in strategy.graph.op_names:
        st = strategy.get(name)
        op = strategy.graph.op(name)
        if st.label().startswith("MP:") and op.param_bytes > 0:
            heavy.append((op.param_bytes, name, st.label()))
    if heavy:
        heavy.sort(reverse=True)
        lines.append("largest unreplicated (MP) parameter owners:")
        for bytes_, name, label in heavy[:top]:
            lines.append(f"  {name:40s} {bytes_ / 2 ** 20:8.1f} MiB  {label}")
    return "\n".join(lines)
