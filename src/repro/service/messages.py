"""Typed wire protocol between the fleet manager and its workers.

Every object crossing the manager/worker process boundary is one of
the message dataclasses below, round-tripped through a **versioned
wire dict** (``to_wire`` / :func:`message_from_wire`).  The split
mirrors optuna-distributed's ``messages/`` + ``ipc/`` layering: the
transport (a pair of ``multiprocessing`` queues, see
:mod:`repro.service.backends.fleet`) only ever carries these dicts, so
a protocol mismatch fails loudly with
:class:`~repro.errors.FleetProtocolError` instead of silently
mis-dispatching, and the message surface can evolve behind the version
field.

Manager -> worker:

- :class:`PlanRequestMessage` — serve one admitted plan request on a
  warm worker-side context;
- :class:`EvalRequestMessage` — evaluate a chunk of candidate
  strategies (the :class:`~repro.plan.BatchEvaluator` borrow path);
- :class:`ShutdownMessage` — drain and exit.

Worker -> manager:

- :class:`WorkerReadyMessage` — the process is up (carries its pid);
- :class:`ProgressMessage` — a request started serving (the manager
  uses it for dispatch attribution and tests use it as a deterministic
  "mid-request" hook);
- :class:`CompletedMessage` / :class:`FailedMessage` — one request's
  outcome;
- :class:`EvalCompletedMessage` — one evaluation chunk's outcomes;
- :class:`HeartbeatMessage` — periodic liveness beacon from a
  worker-side daemon thread (missed beats trigger failure detection).

Payload fields (``request``, ``result``, profile tuples, outcomes)
stay live objects inside the wire dict — the queue's pickling moves
them — so the round trip is about typed framing, not serialization.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..errors import FleetProtocolError

# v2: EvalRequestMessage grew the best-so-far piggyback fields
# (``prune_above`` per-context thresholds + the ``prune`` escape hatch)
WIRE_VERSION = 2

_WIRE_FIELDS = ("v", "type")


@dataclass(frozen=True)
class Message:
    """Base message: subclasses set ``TYPE`` and are auto-registered."""

    TYPE = ""

    def to_wire(self) -> Dict[str, Any]:
        """Flat dict form: ``{"v": .., "type": ..}`` + shallow fields."""
        out: Dict[str, Any] = {"v": WIRE_VERSION, "type": self.TYPE}
        for f in dataclasses.fields(self):
            out[f.name] = getattr(self, f.name)
        return out


_REGISTRY: Dict[str, type] = {}


def _register(cls: type) -> type:
    if not cls.TYPE:
        raise FleetProtocolError(f"{cls.__name__} has no TYPE tag")
    if cls.TYPE in _REGISTRY:
        raise FleetProtocolError(f"duplicate message type {cls.TYPE!r}")
    _REGISTRY[cls.TYPE] = cls
    return cls


def message_from_wire(data: Mapping[str, Any]) -> "Message":
    """Decode one wire dict back into its typed message.

    Raises :class:`~repro.errors.FleetProtocolError` on a non-dict
    frame, a missing/unsupported version, an unknown type tag, or
    missing fields — the receiving loop treats any of these as a
    poisoned channel rather than guessing.
    """
    if not isinstance(data, Mapping):
        raise FleetProtocolError(
            f"wire message must be a dict, got {type(data).__name__}")
    for key in _WIRE_FIELDS:
        if key not in data:
            raise FleetProtocolError(
                f"wire message missing {key!r} field: keys "
                f"{sorted(data)}")
    if data["v"] != WIRE_VERSION:
        raise FleetProtocolError(
            f"unsupported wire version {data['v']!r} "
            f"(this build speaks {WIRE_VERSION})")
    cls = _REGISTRY.get(data["type"])
    if cls is None:
        raise FleetProtocolError(
            f"unknown message type {data['type']!r}; known: "
            f"{', '.join(sorted(_REGISTRY))}")
    kwargs = {k: v for k, v in data.items() if k not in _WIRE_FIELDS}
    names = {f.name for f in dataclasses.fields(cls)}
    missing = names - set(kwargs)
    extra = set(kwargs) - names
    if missing or extra:
        raise FleetProtocolError(
            f"message {data['type']!r} field mismatch: "
            f"missing {sorted(missing)}, unexpected {sorted(extra)}")
    return cls(**kwargs)


# --------------------------------------------------------------------- #
# manager -> worker
@_register
@dataclass(frozen=True)
class PlanRequestMessage(Message):
    """Serve one plan request; ``ticket`` is the request fingerprint."""

    TYPE = "plan_request"

    ticket: str = ""
    request: Any = None              # the PlanRequest itself
    queue_seconds: float = 0.0
    stall_seconds: float = 0.0       # fault-injection: sleep before serving


@_register
@dataclass(frozen=True)
class EvalRequestMessage(Message):
    """Evaluate a chunk of (context, strategy-dict) candidate pairs.

    ``digests`` names the builder context(s) the chunk needs;
    ``payloads`` carries the (graph, cluster, profile, flags) tuples
    only for contexts the manager has not yet primed on this worker.

    ``prune_above`` piggybacks the manager's best-so-far per context at
    dispatch time: the worker prunes candidates that provably exceed
    the threshold for their context (missing contexts are evaluated in
    full).  ``prune=False`` disables worker-side pruning outright.
    """

    TYPE = "eval_request"

    job: str = ""
    digests: Dict[str, str] = field(default_factory=dict)
    payloads: Dict[str, tuple] = field(default_factory=dict)
    items: List[Tuple[str, dict]] = field(default_factory=list)
    prune_above: Dict[str, float] = field(default_factory=dict)
    prune: bool = True


@_register
@dataclass(frozen=True)
class ShutdownMessage(Message):
    """Drain and exit the worker main loop."""

    TYPE = "shutdown"

    reason: str = ""


# --------------------------------------------------------------------- #
# worker -> manager
@_register
@dataclass(frozen=True)
class WorkerReadyMessage(Message):
    TYPE = "worker_ready"

    worker: str = ""
    pid: int = 0


@_register
@dataclass(frozen=True)
class ProgressMessage(Message):
    """A job started serving on ``worker`` (dispatch attribution)."""

    TYPE = "progress"

    ticket: str = ""
    worker: str = ""
    stage: str = "serving"


@_register
@dataclass(frozen=True)
class CompletedMessage(Message):
    TYPE = "completed"

    ticket: str = ""
    worker: str = ""
    result: Any = None               # the PlanResult


@_register
@dataclass(frozen=True)
class EvalCompletedMessage(Message):
    TYPE = "eval_completed"

    job: str = ""
    worker: str = ""
    outcomes: List[Any] = field(default_factory=list)


@_register
@dataclass(frozen=True)
class FailedMessage(Message):
    """A job raised on the worker.

    The original exception is flattened to ``(error_type, message)`` —
    exception subclasses with structured constructors don't all
    survive pickling, and the manager rebuilds a structured
    :class:`~repro.errors.ReproError` from the pair instead.
    """

    TYPE = "failed"

    ticket: str = ""
    worker: str = ""
    kind: str = "plan"               # "plan" | "eval"
    error_type: str = ""
    message: str = ""


@_register
@dataclass(frozen=True)
class HeartbeatMessage(Message):
    TYPE = "heartbeat"

    worker: str = ""
    ts: float = 0.0
    served: int = 0


def rebuild_error(error_type: str, message: str,
                  fallback: Optional[type] = None) -> Exception:
    """Reconstruct a structured error from a :class:`FailedMessage`.

    Known single-argument :class:`~repro.errors.ReproError` subclasses
    are rebuilt by name; anything else (unknown type, structured
    constructor) degrades to ``fallback`` (default
    :class:`~repro.errors.ServiceError`) with the type name prefixed,
    so no failure detail is lost even when the class can't be revived.
    """
    from .. import errors as errors_mod
    if fallback is None:
        fallback = errors_mod.ServiceError
    cls = getattr(errors_mod, error_type, None)
    if isinstance(cls, type) and issubclass(cls, errors_mod.ReproError):
        try:
            return cls(message)
        except TypeError:
            pass
    return fallback(f"{error_type}: {message}")
