"""The long-lived planning service: admit -> coalesce -> plan -> respond.

:class:`PlanningService` is the single front door to the planning
pipeline.  It accepts typed :class:`~repro.service.request.PlanRequest`
objects, and:

- **dedupes** — identical in-flight requests (same content fingerprint)
  are coalesced onto one computation; identical *completed* requests
  are served from a bounded result cache without any new work;
- **admits** — the priority queue is bounded; a full queue rejects new
  work fast with a structured
  :class:`~repro.errors.ServiceOverloadedError`, and requests whose
  deadline expires while queued are failed without being evaluated;
- **dispatches** — to an :class:`~repro.service.backends.base.
  ExecutionBackend`, which serves admitted requests in (priority,
  arrival) order on warm :class:`~repro.service.context.PlanContext`
  sessions.  ``backend="auto"`` (the default) preserves the historical
  modes: ``workers=0`` is the inline backend (the whole pipeline on
  the caller's thread — the mode the :class:`~repro.heterog.HeteroG`
  facade and the resilience replanner use), anything else the
  in-process thread pool.  ``backend="fleet"`` serves on persistent
  worker *processes* with heartbeat failure detection and re-dispatch
  (:class:`~repro.service.backends.fleet.ProcessFleetBackend`).

Telemetry (when a session is active): ``service_queue_depth`` gauge,
``service_wait_seconds`` / ``service_latency_seconds`` histograms, and
``service_requests_total`` / ``service_coalesced_total`` /
``service_rejected_total`` / ``service_timeouts_total`` counters, plus
the shared ``plan_cache_{hits,misses}_total{kind="service"}`` counters
from the result cache.
"""

from __future__ import annotations

import dataclasses
import heapq
import threading
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from .. import telemetry
from ..errors import (
    ReproError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    ServiceTimeoutError,
)
from ..plan import PlanCache
from ..telemetry.context import request_scope
from ..telemetry.critical_path import critical_path
from ..telemetry.flight import FlightRecorder, default_recorder
from ..telemetry.slo import SLOTracker, priority_class
from .backends.base import ExecutionBackend, make_backend
from .context import PlanContext
from .request import PlanRequest, PlanResult

DEFAULT_WORKERS = 2
DEFAULT_MAX_QUEUE = 64
DEFAULT_MAX_CONTEXTS = 16
DEFAULT_RESULT_CACHE = 256


class PlanTicket:
    """Future-like handle for one admitted (or coalesced) request."""

    def __init__(self, request: PlanRequest, fingerprint: str, seq: int = 0):
        self.request = request
        self.fingerprint = fingerprint
        self.seq = seq
        self.waiters = 1
        self.submitted_at = time.perf_counter()
        self.deadline = (self.submitted_at + request.timeout
                         if request.timeout is not None else None)
        self._event = threading.Event()
        self._result: Optional[PlanResult] = None
        self._error: Optional[BaseException] = None

    # ------------------------------------------------------------------ #
    def _resolve(self, result: Optional[PlanResult],
                 error: Optional[BaseException] = None) -> None:
        self._result = result
        self._error = error
        self._event.set()

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> PlanResult:
        """Block until the request resolves; raise its structured error.

        Raises :class:`~repro.errors.ServiceTimeoutError` when the wait
        exceeds ``timeout`` — the computation itself keeps running and
        later duplicates may still coalesce onto it.
        """
        if not self._event.wait(timeout):
            raise ServiceTimeoutError(timeout or 0.0, stage="wait",
                                      fingerprint=self.fingerprint)
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result


@dataclasses.dataclass
class ServiceStats:
    """Plain counters mirrored into telemetry (always available)."""

    submitted: int = 0
    executed: int = 0        # requests actually evaluated
    coalesced: int = 0       # folded onto an in-flight duplicate
    result_hits: int = 0     # served from the completed-result cache
    result_misses: int = 0   # submissions that missed the result cache
    rejected: int = 0        # refused by admission control
    timeouts: int = 0        # queue-expired or caller stopped waiting
    completed: int = 0
    failed: int = 0
    contexts_warm: int = 0   # current warm PlanContext LRU occupancy

    def snapshot(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


class PlanningService:
    """In-process plan-serving layer with coalescing and admission control."""

    def __init__(self, *, workers: int = DEFAULT_WORKERS,
                 max_queue: int = DEFAULT_MAX_QUEUE,
                 max_contexts: int = DEFAULT_MAX_CONTEXTS,
                 result_cache_size: int = DEFAULT_RESULT_CACHE,
                 name: str = "planning",
                 recorder: Optional[FlightRecorder] = None,
                 slo: Optional[SLOTracker] = None,
                 backend: object = "auto",
                 backend_options: Optional[Dict[str, object]] = None):
        if workers < 0:
            raise ReproError(f"workers must be >= 0, got {workers}")
        if max_queue < 1:
            raise ReproError(f"max_queue must be >= 1, got {max_queue}")
        if max_contexts < 1:
            raise ReproError(f"max_contexts must be >= 1, got {max_contexts}")
        self.workers = workers
        self.max_queue = max_queue
        self.max_contexts = max_contexts
        self.name = name
        self.stats = ServiceStats()
        self.recorder = recorder if recorder is not None \
            else default_recorder()
        self.slo = slo if slo is not None else SLOTracker()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._queue: List[Tuple[int, int, str]] = []  # (-priority, seq, fp)
        self._tickets: Dict[str, PlanTicket] = {}     # in-flight by fp
        self._results = PlanCache(result_cache_size, kind="service")
        self._contexts: "OrderedDict[str, PlanContext]" = OrderedDict()
        self._seq = 0
        self._closed = False
        self._backend: ExecutionBackend = make_backend(
            backend, workers=workers, options=backend_options)
        self._backend.bind(self)

    # ------------------------------------------------------------------ #
    def __enter__(self) -> "PlanningService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return len(self._queue)

    def snapshot(self) -> Dict[str, object]:
        """One-shot live status: stats, queue, inflight, caches, SLOs.

        This is what ``repro status`` renders and what ``repro serve
        --status-out`` saves; everything in it is always-on accounting
        (no telemetry session required).
        """
        now = time.perf_counter()
        with self._lock:
            inflight = [{
                "request_id": t.request.request_id,
                "label": t.request.label,
                "priority": t.request.priority,
                "age_seconds": now - t.submitted_at,
            } for t in self._tickets.values()]
            depth = len(self._queue)
            warm = len(self._contexts)
        return {
            "service": self.name,
            "stats": self.stats.snapshot(),
            "backend": self._backend.snapshot(),
            "queue": {"depth": depth, "capacity": self.max_queue},
            "inflight": inflight,
            "contexts": {"warm": warm, "capacity": self.max_contexts},
            "result_cache": {
                "hits": self._results.hits,
                "misses": self._results.misses,
                "hit_rate": self._results.hit_rate,
                "size": len(self._results),
                "capacity": self._results.maxsize,
            },
            "slo": self.slo.snapshot(),
        }

    # ------------------------------------------------------------------ #
    def submit(self, request: PlanRequest) -> PlanTicket:
        """Admit one request; returns immediately with a ticket.

        Raises :class:`ServiceOverloadedError` when the queue is full
        and :class:`ServiceClosedError` after :meth:`close`.
        """
        if not isinstance(request, PlanRequest):
            raise ReproError(
                f"submit() takes a PlanRequest, got "
                f"{type(request).__name__}")
        fp = request.fingerprint
        rid = request.request_id
        submitted = time.perf_counter()
        inline: Optional[PlanTicket] = None
        with self._lock:
            if self._closed:
                raise ServiceClosedError(
                    f"planning service {self.name!r} is closed")
            self.stats.submitted += 1
            self.recorder.begin(
                rid, label=request.label, graph=request.graph.name,
                fingerprint=fp, parent_id=request.parent_id,
                priority=request.priority)
            self.recorder.emit(
                rid, "request_accepted", graph=request.graph.name,
                label=request.label, priority=request.priority,
                queue_depth=len(self._queue),
                parent_id=request.parent_id, fingerprint=fp[:12])
            cached = self._results.get(fp)
            if cached is not None:
                self.stats.result_hits += 1
                ticket = PlanTicket(request, fp)
                ticket._resolve(dataclasses.replace(
                    cached, from_cache=True, request_id=rid))
                seconds = time.perf_counter() - submitted
                self.recorder.emit(rid, "cache_hit")
                self.recorder.emit(
                    rid, "completed", seconds=seconds,
                    slo_class=priority_class(request.priority),
                    from_cache=True)
                self.recorder.finish(rid, "completed", queue_seconds=0.0,
                                     service_seconds=seconds)
                self.slo.observe(priority_class(request.priority), seconds)
                return ticket
            self.stats.result_misses += 1
            existing = self._tickets.get(fp)
            if existing is not None:
                existing.waiters += 1
                self.stats.coalesced += 1
                self._count("service_coalesced_total")
                self.recorder.emit(rid, "coalesced",
                                   primary=existing.request.request_id)
                self.recorder.finish(rid, "coalesced")
                return existing
            if self._backend.inline:
                if len(self._tickets) >= self.max_queue:
                    # inline mode has no queue, but the same admission
                    # bound applies to concurrent inline submissions
                    self._reject(request, len(self._tickets))
                inline = PlanTicket(request, fp)
                self._tickets[fp] = inline
            else:
                if len(self._queue) >= self.max_queue:
                    self._reject(request, len(self._queue))
                self._seq += 1
                ticket = PlanTicket(request, fp, seq=self._seq)
                self._tickets[fp] = ticket
                heapq.heappush(self._queue,
                               (-request.priority, ticket.seq, fp))
                self._gauge("service_queue_depth", len(self._queue))
                self._backend.ensure_started()
                self._not_empty.notify()
        if inline is None:
            self._backend.wake()
            return ticket
        # inline backend: execute synchronously on the caller's thread
        self._backend.run_inline(inline)
        return inline

    def _reject(self, request: PlanRequest, depth: int) -> None:
        """Caller holds the lock: account + journal one rejection."""
        self.stats.rejected += 1
        self._count("service_rejected_total")
        rid = request.request_id
        self.recorder.emit(rid, "rejected", queue_depth=depth,
                           limit=self.max_queue)
        self.recorder.finish(rid, "rejected")
        error = ServiceOverloadedError(depth, self.max_queue)
        error.request_id = rid
        raise error

    def plan(self, request: PlanRequest) -> PlanResult:
        """Submit and wait: the blocking convenience entrypoint."""
        ticket = self.submit(request)
        try:
            return ticket.result(request.timeout)
        except ServiceTimeoutError as exc:
            if exc.stage == "wait":
                with self._lock:
                    self.stats.timeouts += 1
                self._count("service_timeouts_total", {"stage": "wait"})
                rid = request.request_id
                exc.request_id = rid
                self.recorder.emit(
                    rid, "timeout", stage="wait",
                    seconds=time.perf_counter() - ticket.submitted_at,
                    slo_class=priority_class(request.priority))
                self.recorder.finish(rid, "timeout")
            raise

    def close(self) -> None:
        """Stop accepting work; fail queued requests; stop the backend.

        Idempotent across all backends: a second (or concurrent)
        ``close()`` is a no-op.  Backends bound their own shutdown
        waits and surface a stuck worker (``worker_join_timeout``
        journal event + ``RuntimeWarning``) instead of hanging forever.
        """
        with self._not_empty:
            if self._closed:
                return
            self._closed = True
            pending = []
            for _, _, fp in self._queue:
                ticket = self._tickets.pop(fp, None)
                if ticket is not None:
                    pending.append(ticket)
            self._queue.clear()
            self._gauge("service_queue_depth", 0)
            self._not_empty.notify_all()
        for ticket in pending:
            ticket._resolve(None, ServiceClosedError(
                f"planning service {self.name!r} closed before serving "
                f"request {ticket.fingerprint[:12]}"))
        self._backend.close()

    # ------------------------------------------------------------------ #
    def context_for(self, request: PlanRequest) -> PlanContext:
        """The (possibly warmed) context a request would be served on."""
        key = request.context_key
        with self._lock:
            ctx = self._contexts.get(key)
            warm = ctx is not None
            if ctx is None:
                ctx = PlanContext(request)
                self._contexts[key] = ctx
                if len(self._contexts) > self.max_contexts:
                    self._contexts.popitem(last=False)
            else:
                self._contexts.move_to_end(key)
            self.stats.contexts_warm = len(self._contexts)
        self.recorder.emit(
            request.request_id,
            "context_warm" if warm else "context_cold",
            context=key[:12])
        return ctx

    # ------------------------------------------------------------------ #
    def _next_ticket(self) -> Optional[PlanTicket]:
        """Pop the highest-priority queued ticket without blocking.

        The fleet manager's dispatch path; thread workers block on the
        condition variable instead (see ``ThreadBackend._worker``).
        """
        with self._lock:
            if not self._queue:
                return None
            _, _, fp = heapq.heappop(self._queue)
            self._gauge("service_queue_depth", len(self._queue))
            return self._tickets.get(fp)

    def _fail_expired(self, ticket: PlanTicket,
                      queue_seconds: float) -> bool:
        """Fail a ticket whose deadline lapsed while queued (no eval)."""
        if ticket.deadline is None \
                or time.perf_counter() <= ticket.deadline:
            return False
        with self._lock:
            self.stats.timeouts += 1
        self._count("service_timeouts_total", {"stage": "queue"})
        self._finish(ticket, error=ServiceTimeoutError(
            ticket.request.timeout or 0.0, stage="queue",
            fingerprint=ticket.fingerprint),
            queue_seconds=queue_seconds)
        return True

    def _run_ticket(self, ticket: PlanTicket) -> None:
        queue_seconds = time.perf_counter() - ticket.submitted_at
        self._observe("service_wait_seconds", queue_seconds)
        with request_scope(ticket.request.request_id, self.recorder):
            if self._fail_expired(ticket, queue_seconds):
                # deadline missed while queued: fail fast, never evaluate
                return
            try:
                result = self._serve(ticket.request, queue_seconds)
            except ReproError as exc:
                self._finish(ticket, error=exc,
                             queue_seconds=queue_seconds)
                return
            except (ValueError, KeyError, TypeError) as exc:
                # stray errors from graph/cluster plumbing get structured
                self._finish(ticket, error=ServiceError(
                    f"planning failed for "
                    f"{ticket.request.graph.name!r}: {exc}"),
                    queue_seconds=queue_seconds)
                return
            self._finish(ticket, result=result,
                         queue_seconds=queue_seconds)

    def _serve(self, request: PlanRequest,
               queue_seconds: float) -> PlanResult:
        start = time.perf_counter()
        ctx = self.context_for(request)
        with telemetry.span("service.request", graph=request.graph.name,
                            kind="search" if request.is_search else "build",
                            label=request.label):
            with ctx.lock:
                reused = ctx.served > 0
                with self._lock:
                    self.stats.executed += 1
                served = ctx.handle(request)
        return PlanResult(
            fingerprint=request.fingerprint,
            strategy=served.strategy,
            outcome=served.outcome,
            deployment=served.deployment,
            profile=served.profile,
            episodes=served.episodes,
            reused_context=reused,
            plan_cache_hits=served.plan_cache_hits,
            outcome_cache_hits=served.outcome_cache_hits,
            queue_seconds=queue_seconds,
            service_seconds=time.perf_counter() - start,
            measured_time=served.measured_time,
            measured_oom=served.measured_oom,
            request_id=request.request_id,
        )

    def _finish(self, ticket: PlanTicket,
                result: Optional[PlanResult] = None,
                error: Optional[BaseException] = None,
                queue_seconds: Optional[float] = None) -> None:
        with self._lock:
            self._tickets.pop(ticket.fingerprint, None)
            if result is not None:
                result.coalesced = ticket.waiters - 1
                # only successes are cached: a timeout or failure never
                # poisons the result cache
                self._results.put(ticket.fingerprint, result)
                self.stats.completed += 1
                status = "completed"
            else:
                self.stats.failed += 1
                status = "failed"
        self._count("service_requests_total", {"status": status})
        seconds = time.perf_counter() - ticket.submitted_at
        self._observe("service_latency_seconds", seconds)
        rid = ticket.request.request_id
        slo_class = priority_class(ticket.request.priority)
        if result is not None:
            self.recorder.emit(
                rid, "completed", seconds=seconds, slo_class=slo_class,
                queue_seconds=result.queue_seconds,
                service_seconds=result.service_seconds,
                coalesced=result.coalesced)
            self.recorder.finish(
                rid, "completed", queue_seconds=result.queue_seconds,
                service_seconds=result.service_seconds,
                blame=self._blame(result))
            self.slo.observe(slo_class, seconds, ok=True)
        else:
            if getattr(error, "request_id", None) is None:
                error.request_id = rid
            if isinstance(error, ServiceTimeoutError):
                self.recorder.emit(rid, "timeout", stage=error.stage,
                                   seconds=seconds, slo_class=slo_class)
                self.recorder.finish(rid, "timeout",
                                     queue_seconds=queue_seconds)
            else:
                self.recorder.emit(
                    rid, "failed", error=type(error).__name__,
                    message=str(error)[:200], seconds=seconds,
                    slo_class=slo_class)
                self.recorder.finish(rid, "failed",
                                     queue_seconds=queue_seconds)
            self.slo.observe(slo_class, seconds, ok=False)
        ticket._resolve(result, error)

    @staticmethod
    def _blame(result: PlanResult) -> Optional[Dict[str, float]]:
        """Critical-path blame fractions when a sim trace exists."""
        outcome = result.outcome
        if result.deployment is None or outcome.result is None \
                or not getattr(outcome.result, "schedule", None):
            return None
        try:
            report = critical_path(result.deployment.dist, outcome.result)
        except (ValueError, KeyError):
            return None
        return report.blame_fractions()

    # ------------------------------------------------------------------ #
    # thin delegates to the shared ambient-session helpers
    # (kept as methods: backends and tests go through the service)
    def _count(self, metric: str,
               labels: Optional[Dict[str, str]] = None) -> None:
        telemetry.emit_count(
            metric, labels=labels,
            help="planning-service request accounting")

    def _gauge(self, metric: str, value: float) -> None:
        telemetry.emit_gauge(
            metric, value, help="planning-service queue depth")

    def _observe(self, metric: str, value: float) -> None:
        telemetry.emit_observe(
            metric, value, help="planning-service latency breakdown")
