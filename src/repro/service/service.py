"""The long-lived planning service: admit -> coalesce -> plan -> respond.

:class:`PlanningService` is the single front door to the planning
pipeline.  It accepts typed :class:`~repro.service.request.PlanRequest`
objects, and:

- **dedupes** — identical in-flight requests (same content fingerprint)
  are coalesced onto one computation; identical *completed* requests
  are served from a bounded result cache without any new work;
- **admits** — the priority queue is bounded; a full queue rejects new
  work fast with a structured
  :class:`~repro.errors.ServiceOverloadedError`, and requests whose
  deadline expires while queued are failed without being evaluated;
- **dispatches** — a bounded pool of daemon worker threads serves
  requests in (priority, arrival) order on warm
  :class:`~repro.service.context.PlanContext` sessions, one lock per
  context, so distinct contexts plan concurrently while results stay
  bit-identical to serial execution.

``workers=0`` runs the whole pipeline inline on the caller's thread
(no queue, no threads) — the mode the :class:`~repro.heterog.HeteroG`
facade and the resilience replanner use, where ordering is already
serial and determinism is the priority.

Telemetry (when a session is active): ``service_queue_depth`` gauge,
``service_wait_seconds`` / ``service_latency_seconds`` histograms, and
``service_requests_total`` / ``service_coalesced_total`` /
``service_rejected_total`` / ``service_timeouts_total`` counters, plus
the shared ``plan_cache_{hits,misses}_total{kind="service"}`` counters
from the result cache.
"""

from __future__ import annotations

import dataclasses
import heapq
import threading
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from .. import telemetry
from ..errors import (
    ReproError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    ServiceTimeoutError,
)
from ..plan import PlanCache
from .context import PlanContext
from .request import PlanRequest, PlanResult

DEFAULT_WORKERS = 2
DEFAULT_MAX_QUEUE = 64
DEFAULT_MAX_CONTEXTS = 16
DEFAULT_RESULT_CACHE = 256


class PlanTicket:
    """Future-like handle for one admitted (or coalesced) request."""

    def __init__(self, request: PlanRequest, fingerprint: str, seq: int = 0):
        self.request = request
        self.fingerprint = fingerprint
        self.seq = seq
        self.waiters = 1
        self.submitted_at = time.perf_counter()
        self.deadline = (self.submitted_at + request.timeout
                         if request.timeout is not None else None)
        self._event = threading.Event()
        self._result: Optional[PlanResult] = None
        self._error: Optional[BaseException] = None

    # ------------------------------------------------------------------ #
    def _resolve(self, result: Optional[PlanResult],
                 error: Optional[BaseException] = None) -> None:
        self._result = result
        self._error = error
        self._event.set()

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> PlanResult:
        """Block until the request resolves; raise its structured error.

        Raises :class:`~repro.errors.ServiceTimeoutError` when the wait
        exceeds ``timeout`` — the computation itself keeps running and
        later duplicates may still coalesce onto it.
        """
        if not self._event.wait(timeout):
            raise ServiceTimeoutError(timeout or 0.0, stage="wait",
                                      fingerprint=self.fingerprint)
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result


@dataclasses.dataclass
class ServiceStats:
    """Plain counters mirrored into telemetry (always available)."""

    submitted: int = 0
    executed: int = 0        # requests actually evaluated
    coalesced: int = 0       # folded onto an in-flight duplicate
    result_hits: int = 0     # served from the completed-result cache
    rejected: int = 0        # refused by admission control
    timeouts: int = 0        # queue-expired or caller stopped waiting
    completed: int = 0
    failed: int = 0

    def snapshot(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


class PlanningService:
    """In-process plan-serving layer with coalescing and admission control."""

    def __init__(self, *, workers: int = DEFAULT_WORKERS,
                 max_queue: int = DEFAULT_MAX_QUEUE,
                 max_contexts: int = DEFAULT_MAX_CONTEXTS,
                 result_cache_size: int = DEFAULT_RESULT_CACHE,
                 name: str = "planning"):
        if workers < 0:
            raise ReproError(f"workers must be >= 0, got {workers}")
        if max_queue < 1:
            raise ReproError(f"max_queue must be >= 1, got {max_queue}")
        if max_contexts < 1:
            raise ReproError(f"max_contexts must be >= 1, got {max_contexts}")
        self.workers = workers
        self.max_queue = max_queue
        self.max_contexts = max_contexts
        self.name = name
        self.stats = ServiceStats()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._queue: List[Tuple[int, int, str]] = []  # (-priority, seq, fp)
        self._tickets: Dict[str, PlanTicket] = {}     # in-flight by fp
        self._results = PlanCache(result_cache_size, kind="service")
        self._contexts: "OrderedDict[str, PlanContext]" = OrderedDict()
        self._threads: List[threading.Thread] = []
        self._seq = 0
        self._closed = False

    # ------------------------------------------------------------------ #
    def __enter__(self) -> "PlanningService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return len(self._queue)

    # ------------------------------------------------------------------ #
    def submit(self, request: PlanRequest) -> PlanTicket:
        """Admit one request; returns immediately with a ticket.

        Raises :class:`ServiceOverloadedError` when the queue is full
        and :class:`ServiceClosedError` after :meth:`close`.
        """
        if not isinstance(request, PlanRequest):
            raise ReproError(
                f"submit() takes a PlanRequest, got "
                f"{type(request).__name__}")
        fp = request.fingerprint
        inline: Optional[PlanTicket] = None
        with self._lock:
            if self._closed:
                raise ServiceClosedError(
                    f"planning service {self.name!r} is closed")
            self.stats.submitted += 1
            cached = self._results.get(fp)
            if cached is not None:
                self.stats.result_hits += 1
                ticket = PlanTicket(request, fp)
                ticket._resolve(dataclasses.replace(cached, from_cache=True))
                return ticket
            existing = self._tickets.get(fp)
            if existing is not None:
                existing.waiters += 1
                self.stats.coalesced += 1
                self._count("service_coalesced_total")
                return existing
            if self.workers == 0:
                inline = PlanTicket(request, fp)
                self._tickets[fp] = inline
            else:
                if len(self._queue) >= self.max_queue:
                    self.stats.rejected += 1
                    self._count("service_rejected_total")
                    raise ServiceOverloadedError(len(self._queue),
                                                 self.max_queue)
                self._seq += 1
                ticket = PlanTicket(request, fp, seq=self._seq)
                self._tickets[fp] = ticket
                heapq.heappush(self._queue,
                               (-request.priority, ticket.seq, fp))
                self._gauge("service_queue_depth", len(self._queue))
                self._ensure_workers()
                self._not_empty.notify()
                return ticket
        # workers == 0: execute synchronously on the caller's thread
        self._run_ticket(inline)
        return inline

    def plan(self, request: PlanRequest) -> PlanResult:
        """Submit and wait: the blocking convenience entrypoint."""
        ticket = self.submit(request)
        try:
            return ticket.result(request.timeout)
        except ServiceTimeoutError as exc:
            if exc.stage == "wait":
                with self._lock:
                    self.stats.timeouts += 1
                self._count("service_timeouts_total", {"stage": "wait"})
            raise

    def close(self) -> None:
        """Stop accepting work; fail queued requests; join the workers."""
        with self._not_empty:
            if self._closed:
                return
            self._closed = True
            pending = []
            for _, _, fp in self._queue:
                ticket = self._tickets.pop(fp, None)
                if ticket is not None:
                    pending.append(ticket)
            self._queue.clear()
            self._gauge("service_queue_depth", 0)
            self._not_empty.notify_all()
        for ticket in pending:
            ticket._resolve(None, ServiceClosedError(
                f"planning service {self.name!r} closed before serving "
                f"request {ticket.fingerprint[:12]}"))
        for thread in self._threads:
            thread.join(timeout=60.0)
        self._threads.clear()

    # ------------------------------------------------------------------ #
    def context_for(self, request: PlanRequest) -> PlanContext:
        """The (possibly warmed) context a request would be served on."""
        key = request.context_key
        with self._lock:
            ctx = self._contexts.get(key)
            if ctx is None:
                ctx = PlanContext(request)
                self._contexts[key] = ctx
                if len(self._contexts) > self.max_contexts:
                    self._contexts.popitem(last=False)
            else:
                self._contexts.move_to_end(key)
            return ctx

    # ------------------------------------------------------------------ #
    def _ensure_workers(self) -> None:
        """Spawn worker threads lazily (caller holds the lock)."""
        while len(self._threads) < self.workers:
            thread = threading.Thread(
                target=self._worker, daemon=True,
                name=f"{self.name}-worker-{len(self._threads)}")
            self._threads.append(thread)
            thread.start()

    def _worker(self) -> None:
        while True:
            with self._not_empty:
                while not self._queue and not self._closed:
                    self._not_empty.wait()
                if self._closed and not self._queue:
                    return
                _, _, fp = heapq.heappop(self._queue)
                self._gauge("service_queue_depth", len(self._queue))
                ticket = self._tickets.get(fp)
            if ticket is not None:
                self._run_ticket(ticket)

    def _run_ticket(self, ticket: PlanTicket) -> None:
        queue_seconds = time.perf_counter() - ticket.submitted_at
        self._observe("service_wait_seconds", queue_seconds)
        if ticket.deadline is not None \
                and time.perf_counter() > ticket.deadline:
            # deadline missed while queued: fail fast, never evaluate
            with self._lock:
                self.stats.timeouts += 1
            self._count("service_timeouts_total", {"stage": "queue"})
            self._finish(ticket, error=ServiceTimeoutError(
                ticket.request.timeout or 0.0, stage="queue",
                fingerprint=ticket.fingerprint))
            return
        try:
            result = self._serve(ticket.request, queue_seconds)
        except ReproError as exc:
            self._finish(ticket, error=exc)
            return
        except (ValueError, KeyError, TypeError) as exc:
            # stray errors from graph/cluster plumbing become structured
            self._finish(ticket, error=ServiceError(
                f"planning failed for {ticket.request.graph.name!r}: {exc}"))
            return
        self._finish(ticket, result=result)

    def _serve(self, request: PlanRequest,
               queue_seconds: float) -> PlanResult:
        start = time.perf_counter()
        ctx = self.context_for(request)
        with telemetry.span("service.request", graph=request.graph.name,
                            kind="search" if request.is_search else "build",
                            label=request.label):
            with ctx.lock:
                reused = ctx.served > 0
                with self._lock:
                    self.stats.executed += 1
                served = ctx.handle(request)
        return PlanResult(
            fingerprint=request.fingerprint,
            strategy=served.strategy,
            outcome=served.outcome,
            deployment=served.deployment,
            profile=served.profile,
            episodes=served.episodes,
            reused_context=reused,
            plan_cache_hits=served.plan_cache_hits,
            outcome_cache_hits=served.outcome_cache_hits,
            queue_seconds=queue_seconds,
            service_seconds=time.perf_counter() - start,
            measured_time=served.measured_time,
            measured_oom=served.measured_oom,
        )

    def _finish(self, ticket: PlanTicket,
                result: Optional[PlanResult] = None,
                error: Optional[BaseException] = None) -> None:
        with self._lock:
            self._tickets.pop(ticket.fingerprint, None)
            if result is not None:
                result.coalesced = ticket.waiters - 1
                # only successes are cached: a timeout or failure never
                # poisons the result cache
                self._results.put(ticket.fingerprint, result)
                self.stats.completed += 1
                status = "completed"
            else:
                self.stats.failed += 1
                status = "failed"
        self._count("service_requests_total", {"status": status})
        self._observe("service_latency_seconds",
                      time.perf_counter() - ticket.submitted_at)
        ticket._resolve(result, error)

    # ------------------------------------------------------------------ #
    def _count(self, metric: str,
               labels: Optional[Dict[str, str]] = None) -> None:
        tel = telemetry.active()
        if tel is not None:
            tel.registry.counter(
                metric, labels=labels,
                help="planning-service request accounting",
            ).inc()

    def _gauge(self, metric: str, value: float) -> None:
        tel = telemetry.active()
        if tel is not None:
            tel.registry.gauge(
                metric, help="planning-service queue depth",
            ).set(value)

    def _observe(self, metric: str, value: float) -> None:
        tel = telemetry.active()
        if tel is not None:
            tel.registry.histogram(
                metric, help="planning-service latency breakdown",
            ).observe(value)
