"""Service workload helpers: the ``repro serve`` demo and the
coalescing throughput benchmark behind ``repro bench-service`` and
``benchmarks/test_service_throughput.py``.

The benchmark proves the service's core claim: under concurrent
duplicate load, exactly one evaluation runs per unique plan fingerprint
(the rest coalesce or hit the result cache), the results are
bit-identical to naive serial replanning, and throughput is at least as
good as the serial baseline.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .. import telemetry
from ..config import HeteroGConfig
from ..errors import ReproError
from ..graph.dag import ComputationGraph
from .request import PlanRequest, PlanResult
from .service import PlanningService


@dataclass
class WorkloadOutcome:
    """One request's fate in a served workload."""

    label: str
    status: str                      # "ok" | error class name
    seconds: float
    detail: str = ""
    result: Optional[PlanResult] = None


@dataclass
class WorkloadReport:
    """What ``run_workload`` hands back to the CLI."""

    outcomes: List[WorkloadOutcome] = field(default_factory=list)
    wall_seconds: float = 0.0
    stats: Dict[str, int] = field(default_factory=dict)
    snapshot: Dict = field(default_factory=dict)  # full service.snapshot()

    @property
    def completed(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "ok")


def run_workload(service: PlanningService,
                 requests: Sequence[PlanRequest]) -> WorkloadReport:
    """Serve a batch of requests concurrently and collect per-request
    outcomes (structured errors included — overload and timeouts are
    outcomes here, not crashes)."""
    report = WorkloadReport()
    outcomes: List[Optional[WorkloadOutcome]] = [None] * len(requests)
    lock = threading.Lock()

    def client(i: int, request: PlanRequest) -> None:
        label = request.label or f"req{i}"
        start = time.perf_counter()
        try:
            result = service.plan(request)
            outcome = WorkloadOutcome(
                label=label, status="ok",
                seconds=time.perf_counter() - start,
                detail=f"{result.time:.4f} s/iter"
                + (" (cached)" if result.from_cache else ""),
                result=result,
            )
        except ReproError as exc:
            outcome = WorkloadOutcome(
                label=label, status=type(exc).__name__,
                seconds=time.perf_counter() - start, detail=str(exc),
            )
        with lock:
            outcomes[i] = outcome

    start = time.perf_counter()
    threads = [threading.Thread(target=client, args=(i, r), daemon=True)
               for i, r in enumerate(requests)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    report.wall_seconds = time.perf_counter() - start
    report.outcomes = [o for o in outcomes if o is not None]
    report.stats = service.stats.snapshot()
    report.snapshot = service.snapshot()
    return report


def _strategy_key(result: PlanResult) -> Dict[str, str]:
    return {name: st.label() for name, st in result.strategy.items()}


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of a non-empty sample."""
    if not values:
        raise ReproError("percentile of an empty sample")
    ranked = sorted(values)
    rank = max(0, min(len(ranked) - 1,
                      int(round(q / 100.0 * (len(ranked) - 1)))))
    return ranked[rank]


def bench_coalescing(graph: ComputationGraph, cluster, *,
                     duplicates: int = 6, episodes: int = 4,
                     workers: int = 2, seed: int = 0,
                     config: Optional[HeteroGConfig] = None,
                     backend: str = "auto",
                     backend_options: Optional[Dict] = None,
                     prune: bool = True) -> Dict:
    """Coalesced concurrent serving vs naive serial replanning.

    Serial baseline: each duplicate request re-plans from scratch on a
    fresh service (what the three pre-service call paths effectively
    did).  Concurrent: all duplicates hit one service at once and
    coalesce onto a single evaluation.  Returns the numbers dict the
    benchmark asserts on and ``repro bench-service`` prints, including
    the sustained-throughput numbers (requests/sec, p50/p99 latency)
    the committed regression baseline
    (``benchmarks/results/BENCH_service_throughput.json``) gates on.

    ``backend`` selects the execution backend for the concurrent
    service (``auto``/``inline``/``thread``/``fleet``); the serial
    baseline always runs inline.
    """
    config = config or HeteroGConfig(seed=seed)

    def request() -> PlanRequest:
        return PlanRequest(graph=graph, cluster=cluster, episodes=episodes,
                           config=config, label="bench", prune=prune)

    # naive serial replanning: a cold service (cold contexts, cold
    # caches) per request
    serial_results: List[PlanResult] = []
    start = time.perf_counter()
    for _ in range(duplicates):
        with PlanningService(workers=0, name="serial") as cold:
            serial_results.append(cold.plan(request()))
    serial_s = time.perf_counter() - start

    # coalesced concurrent serving: one warm service, all at once
    registry = telemetry.MetricsRegistry()
    with telemetry.session(registry=registry):
        with PlanningService(workers=workers, name="bench",
                             backend=backend,
                             backend_options=backend_options) as service:
            report = run_workload(service,
                                  [request() for _ in range(duplicates)])
    coalesced_metric = registry.get("service_coalesced_total")

    concurrent_results = [o.result for o in report.outcomes
                          if o.result is not None]
    if len(concurrent_results) != duplicates:
        raise ReproError(
            f"bench workload lost requests: {len(concurrent_results)} of "
            f"{duplicates} completed")
    baseline = _strategy_key(serial_results[0])
    divergent = sum(
        1 for r in serial_results + concurrent_results
        if _strategy_key(r) != baseline
    )
    makespans = {round(r.outcome.time, 12)
                 for r in serial_results + concurrent_results}

    concurrent_s = report.wall_seconds
    latencies = [o.seconds for o in report.outcomes]
    return {
        "model": graph.name,
        "cluster": str(cluster),
        "duplicates": duplicates,
        "episodes": episodes,
        "workers": workers,
        "backend": backend,
        "prune": prune,
        "serial_seconds": round(serial_s, 3),
        "concurrent_seconds": round(concurrent_s, 3),
        "speedup": round(serial_s / concurrent_s, 2)
        if concurrent_s > 0 else float("inf"),
        "serial_requests_per_sec": round(duplicates / serial_s, 3)
        if serial_s > 0 else float("inf"),
        "concurrent_requests_per_sec": round(duplicates / concurrent_s, 3)
        if concurrent_s > 0 else float("inf"),
        "latency_p50_ms": round(percentile(latencies, 50) * 1e3, 3),
        "latency_p99_ms": round(percentile(latencies, 99) * 1e3, 3),
        "evaluations_executed": report.stats["executed"],
        "coalesced": report.stats["coalesced"],
        "result_cache_hits": report.stats["result_hits"],
        "coalesced_metric": coalesced_metric.value
        if coalesced_metric is not None else 0.0,
        "divergent_results": divergent,
        "distinct_makespans": len(makespans),
    }
