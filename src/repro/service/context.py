"""Warm serving contexts: one profiled (graph, cluster, config) session.

A :class:`PlanContext` is the unit of reuse inside the planning
service: it owns the fitted :class:`~repro.profiling.profiler.Profile`,
a standalone :class:`~repro.plan.PlanBuilder` for build requests, and a
lazily created :class:`~repro.agent.HeteroGAgent` (whose evaluator
wraps its own grouped builder) for search requests.  Repeated requests
on the same context hit the plan layer's fingerprint caches instead of
recompiling, which is where the service's amortization comes from.

Contexts are internally locked: the service may serve many contexts
concurrently, but requests on one context run serialized, keeping every
cache interaction (and therefore every result) deterministic.
"""

from __future__ import annotations

import dataclasses
import threading
from dataclasses import dataclass
from typing import Optional

from .. import telemetry
from ..telemetry.context import record_event
from ..agent.agent import HeteroGAgent
from ..errors import OutOfMemoryError, StrategyError
from ..parallel.strategy import Strategy
from ..plan import EvalOutcome, PlanBuilder
from ..profiling.measurements import MeasurementNoise
from ..profiling.profiler import Profile, Profiler
from ..runtime.deployment import Deployment, build_deployment
from ..runtime.execution_engine import ExecutionEngine
from .request import PlanRequest


@dataclass
class Served:
    """Raw outcome of one context dispatch (service shapes the result)."""

    strategy: Strategy
    outcome: EvalOutcome
    deployment: Optional[Deployment]
    profile: Profile
    episodes: int = 0
    plan_cache_hits: int = 0
    outcome_cache_hits: int = 0
    measured_time: Optional[float] = None
    measured_oom: bool = False


class PlanContext:
    """One warmed planning session keyed by ``PlanRequest.context_key``."""

    def __init__(self, request: PlanRequest):
        self.key = request.context_key
        self.graph = request.graph
        self.cluster = request.cluster
        self.config = request.config
        self.use_order_scheduling = request.use_order_scheduling
        self.lock = threading.RLock()
        self.served = 0
        self.episodes_trained = 0
        self._profile: Optional[Profile] = request.profile
        self._agent: Optional[HeteroGAgent] = None
        self._builder: Optional[PlanBuilder] = None

    # ------------------------------------------------------------------ #
    @property
    def profile(self) -> Profile:
        """The fitted profile (measured lazily, once per context)."""
        if self._profile is None:
            with telemetry.span("pipeline.profile", graph=self.graph.name):
                self._profile = Profiler(
                    noise=MeasurementNoise(self.config.profile_noise_sigma),
                    seed=self.config.seed,
                ).profile(self.graph, self.cluster)
        return self._profile

    @property
    def builder(self) -> PlanBuilder:
        """Standalone builder used by build (explicit-strategy) requests.

        Search requests use the agent evaluator's own grouped builder;
        keeping the two separate makes a build request's deployment
        independent of whether a search happened first.
        """
        if self._builder is None:
            self._builder = PlanBuilder(
                self.graph, self.cluster, self.profile,
                use_order_scheduling=self.use_order_scheduling,
                engine=self.config.agent.engine,
            )
        return self._builder

    @property
    def agent(self) -> HeteroGAgent:
        if self._agent is None:
            agent_config = dataclasses.replace(
                self.config.agent,
                use_order_scheduling=self.use_order_scheduling,
                seed=self.config.seed,
            )
            self._agent = HeteroGAgent(self.cluster, agent_config)
            with telemetry.span("pipeline.group", graph=self.graph.name):
                self._agent.add_graph(self.graph, self.profile)
        return self._agent

    @property
    def search_builder(self) -> Optional[PlanBuilder]:
        """The agent evaluator's builder, if a search ever ran here."""
        if self._agent is None:
            return None
        ctx = self._agent.try_context(self.graph.name)
        return ctx.evaluator.builder if ctx is not None else None

    # ------------------------------------------------------------------ #
    def handle(self, request: PlanRequest) -> Served:
        """Serve one request (caller holds ``self.lock``)."""
        self.served += 1
        if request.is_search:
            return self._search(request)
        return self._build(request)

    def _search(self, request: PlanRequest) -> Served:
        """Train the RL agent until a feasible strategy emerges."""
        agent = self.agent
        builder = self.search_builder
        budget = request.budget
        # the request's --no-prune switch overrides the config default
        # for this dispatch (serialized under the context lock)
        prune = bool(request.prune and self.config.agent.prune)
        agent.trainer.config.prune = prune
        outcome: Optional[EvalOutcome] = None
        strategy: Optional[Strategy] = None
        ran = 0
        record_event("search_started", episodes=budget,
                     max_rounds=request.max_rounds)
        with telemetry.span("pipeline.search", graph=self.graph.name,
                            episodes=budget):
            for _ in range(request.max_rounds):
                agent.train(budget)
                ran += budget
                self.episodes_trained += budget
                strategy = agent.trainer.best_strategy(self.graph.name)
                if strategy is None:
                    continue
                outcome = builder.evaluate(strategy, prune=prune)
                if outcome.feasible:
                    break
        if outcome is None or not outcome.feasible:
            raise StrategyError(
                f"no feasible strategy found for {self.graph.name!r} on "
                f"{self.cluster} after {ran} episodes; the cluster may be "
                f"too small for the model"
            )
        with telemetry.span("pipeline.schedule", graph=self.graph.name):
            # plan-cache hit: the winning strategy was built during its
            # evaluation above
            deployment = build_deployment(builder.build(strategy))
        record_event("plan_built", dist_ops=deployment.num_dist_ops,
                     makespan=outcome.time, episodes=ran)
        return Served(
            strategy=strategy, outcome=outcome, deployment=deployment,
            profile=self.profile, episodes=ran,
            plan_cache_hits=builder.plan_cache.hits,
            outcome_cache_hits=builder.outcome_cache.hits,
        )

    def _build(self, request: PlanRequest) -> Served:
        """Build (and optionally engine-measure) an explicit strategy."""
        builder = self.builder
        outcome = builder.evaluate(
            request.strategy,
            prune=bool(request.prune and self.config.agent.prune),
        )
        deployment: Optional[Deployment] = None
        if not outcome.infeasible:
            with telemetry.span("pipeline.schedule", graph=self.graph.name):
                deployment = build_deployment(
                    builder.build(request.strategy))
            record_event("plan_built", dist_ops=deployment.num_dist_ops,
                         makespan=outcome.time)
        measured_time: Optional[float] = None
        measured_oom = False
        if request.measure_iterations and deployment is not None:
            measured_time, measured_oom = self._measure(
                deployment, request.measure_iterations)
        return Served(
            strategy=request.strategy, outcome=outcome,
            deployment=deployment, profile=self.profile,
            plan_cache_hits=builder.plan_cache.hits,
            outcome_cache_hits=builder.outcome_cache.hits,
            measured_time=measured_time, measured_oom=measured_oom,
        )

    def _measure(self, deployment: Deployment,
                 iterations: int) -> "tuple[float, bool]":
        """Run the deployment on the execution engine (testbed stand-in)."""
        engine = ExecutionEngine(
            self.cluster,
            jitter_sigma=self.config.engine_jitter_sigma,
            seed=self.config.seed + 1,
        )
        try:
            stats = engine.measure(
                deployment.dist, deployment.schedule,
                deployment.resident_bytes, iterations=iterations,
            )
        except OutOfMemoryError:
            return float("inf"), True
        return stats.mean, False
