"""``repro.service`` — the async plan-serving layer.

One long-lived, in-process :class:`PlanningService` is the front door
to the whole planning pipeline (profile -> search -> compile ->
schedule).  Every consumer — the client API (:func:`repro.api.
get_runner`), the :class:`~repro.heterog.HeteroG` facade, the
multi-job allocator and the resilience replanner — routes typed
:class:`PlanRequest` objects through it, so concurrent and repeated
requests share work instead of re-driving the pipeline through
divergent call paths:

- identical in-flight requests **coalesce** onto one evaluation;
- completed results are served from a fingerprint-keyed cache;
- requests are served on warm per-(graph, cluster, profile)
  :class:`PlanContext` sessions whose plan/outcome caches persist
  across requests;
- a bounded priority queue applies **admission control**: overload
  rejects fast with :class:`~repro.errors.ServiceOverloadedError`,
  expired deadlines fail fast with
  :class:`~repro.errors.ServiceTimeoutError`;
- *where* admitted requests execute is an
  :class:`~repro.service.backends.ExecutionBackend` —
  ``inline`` (caller's thread), ``thread`` (in-process pool) or
  ``fleet`` (persistent worker processes with heartbeats and
  re-dispatch, :mod:`repro.service.backends.fleet`).

See ``docs/ARCHITECTURE.md`` ("Planning service" and "Execution
backends") for the request lifecycle and determinism guarantees.
"""

from .backends import (
    ExecutionBackend,
    InlineBackend,
    ProcessFleetBackend,
    ThreadBackend,
    make_backend,
)
from .context import PlanContext
from .request import PlanRequest, PlanResult
from .service import PlanningService, PlanTicket, ServiceStats

__all__ = [
    "ExecutionBackend",
    "InlineBackend",
    "PlanContext",
    "PlanRequest",
    "PlanResult",
    "PlanningService",
    "PlanTicket",
    "ProcessFleetBackend",
    "ServiceStats",
    "ThreadBackend",
    "make_backend",
]
