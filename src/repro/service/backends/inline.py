"""Synchronous execution on the caller's thread (``workers=0``).

No queue, no threads, no processes: ``submit()`` serves the request
before it returns.  This is the mode the :class:`~repro.heterog.
HeteroG` facade, the multi-job allocator and the resilience replanner
use, where ordering is already serial and determinism is the priority.
"""

from __future__ import annotations

from .base import ExecutionBackend


class InlineBackend(ExecutionBackend):
    name = "inline"
    inline = True

    def run_inline(self, ticket) -> None:
        self.service._run_ticket(ticket)

    def close(self) -> None:
        self._closed = True

    def snapshot(self):
        return {"name": self.name, "closed": self._closed}
