"""Execution backends for the planning service.

The :class:`~repro.service.backends.base.ExecutionBackend` seam
separates *what* the planning service does (admission, coalescing,
result caching, accounting) from *where* admitted requests execute:

- :class:`InlineBackend` — the caller's thread (``workers=0``);
- :class:`ThreadBackend` — in-process daemon threads (the default);
- :class:`ProcessFleetBackend` — persistent worker processes with warm
  plan contexts, heartbeat failure detection and re-dispatch.

The module also keeps the per-process **active fleet registry**: while
a fleet backend is running, :func:`active_fleet` returns it so the
:class:`~repro.plan.BatchEvaluator` can borrow the fleet's workers for
candidate fan-out instead of opening a second process pool.  Forked
fleet workers clear the registry on startup so a worker-side evaluator
never tries to borrow the fleet it lives inside.
"""

from __future__ import annotations

import threading
from typing import List, Optional

from .base import ExecutionBackend, make_backend
from .fleet import ProcessFleetBackend
from .inline import InlineBackend
from .thread import ThreadBackend

__all__ = [
    "ExecutionBackend",
    "InlineBackend",
    "ThreadBackend",
    "ProcessFleetBackend",
    "make_backend",
    "active_fleet",
]

_FLEETS: List[ProcessFleetBackend] = []
_FLEETS_LOCK = threading.Lock()


def _register_fleet(fleet: ProcessFleetBackend) -> None:
    with _FLEETS_LOCK:
        if fleet not in _FLEETS:
            _FLEETS.append(fleet)


def _unregister_fleet(fleet: ProcessFleetBackend) -> None:
    with _FLEETS_LOCK:
        if fleet in _FLEETS:
            _FLEETS.remove(fleet)


def _reset_fleet_registry() -> None:
    """Forked children inherit the list; they must start empty."""
    with _FLEETS_LOCK:
        _FLEETS.clear()


def active_fleet() -> Optional[ProcessFleetBackend]:
    """The most recently started live fleet in this process, if any."""
    with _FLEETS_LOCK:
        for fleet in reversed(_FLEETS):
            if not fleet._closed:
                return fleet
    return None
