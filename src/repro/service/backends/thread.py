"""In-process thread-pool execution (the default backend).

Exactly the pre-refactor ``PlanningService`` worker loop, moved behind
the :class:`~repro.service.backends.base.ExecutionBackend` seam: lazy
daemon threads block on the service's condition variable, pop tickets
in (priority, arrival) order and run them through
``service._run_ticket``.  Results are bit-identical to the historical
in-service threads because this *is* that code.

``close()`` joins each worker with a bounded timeout; a thread that
fails to exit in time is surfaced (``worker_join_timeout`` journal
event + ``RuntimeWarning``) instead of being silently abandoned, and a
second ``close()`` is a no-op.
"""

from __future__ import annotations

import heapq
import threading
import warnings
from typing import List

from ...errors import ReproError
from .base import ExecutionBackend

DEFAULT_JOIN_TIMEOUT = 60.0


class ThreadBackend(ExecutionBackend):
    name = "thread"

    def __init__(self, workers: int = 2, *,
                 join_timeout: float = DEFAULT_JOIN_TIMEOUT):
        super().__init__()
        if workers < 1:
            raise ReproError(
                f"thread backend needs workers >= 1, got {workers}")
        if join_timeout <= 0:
            raise ReproError(
                f"join_timeout must be positive, got {join_timeout}")
        self.workers = workers
        self.join_timeout = join_timeout
        self._threads: List[threading.Thread] = []
        self.stalled_joins = 0

    # ------------------------------------------------------------------ #
    def ensure_started(self) -> None:
        """Spawn worker threads lazily (caller holds the service lock)."""
        while len(self._threads) < self.workers:
            thread = threading.Thread(
                target=self._worker, daemon=True,
                name=f"{self.service.name}-worker-{len(self._threads)}")
            self._threads.append(thread)
            thread.start()

    def _worker(self) -> None:
        service = self.service
        while True:
            with service._not_empty:
                while not service._queue and not service._closed:
                    service._not_empty.wait()
                if service._closed and not service._queue:
                    return
                _, _, fp = heapq.heappop(service._queue)
                service._gauge("service_queue_depth", len(service._queue))
                ticket = service._tickets.get(fp)
            if ticket is not None:
                service._run_ticket(ticket)

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for thread in self._threads:
            thread.join(timeout=self.join_timeout)
            if thread.is_alive():
                # a worker is stuck mid-request: say so loudly instead
                # of leaving a live thread behind with no signal
                self.stalled_joins += 1
                self.service.recorder.emit(
                    f"{self.service.name}-backend", "worker_join_timeout",
                    worker=thread.name, timeout=self.join_timeout)
                warnings.warn(
                    f"planning service {self.service.name!r}: worker "
                    f"thread {thread.name} did not exit within "
                    f"{self.join_timeout:.1f}s of close(); it remains "
                    f"alive (daemon) and will be abandoned",
                    RuntimeWarning, stacklevel=3)
        self._threads.clear()

    def snapshot(self):
        return {
            "name": self.name,
            "workers": self.workers,
            "threads_alive": sum(1 for t in self._threads if t.is_alive()),
            "stalled_joins": self.stalled_joins,
            "closed": self._closed,
        }
