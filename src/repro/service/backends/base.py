"""The execution seam of the planning service.

:class:`ExecutionBackend` is the contract between
:class:`~repro.service.PlanningService` (which owns admission,
coalescing, the result cache and all request accounting) and *where
evaluations actually run*:

==================  ==================================================
backend             execution
==================  ==================================================
``InlineBackend``   the caller's thread (``workers=0``; no queue, no
                    concurrency — the deterministic facade mode)
``ThreadBackend``   a pool of daemon threads inside the service
                    process (the pre-refactor default, bit-identical)
``ProcessFleetBackend``  persistent worker *processes* with warm
                    plan contexts, heartbeats and re-dispatch
==================  ==================================================

The service calls, in order: :meth:`bind` once at construction,
:meth:`ensure_started` under the service lock whenever work is queued,
:meth:`wake` after the lock is released, and :meth:`close` (idempotent
— a second call is a no-op) from ``PlanningService.close``.  Backends
pull tickets from the service's priority queue and hand each one back
to ``service._run_ticket`` / ``service._finish``, which is what keeps
results and accounting identical across all three execution modes.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional

from ...errors import ReproError


class ExecutionBackend(abc.ABC):
    """Where the planning service's admitted requests execute."""

    #: registry name (``--backend`` flag value)
    name = "base"
    #: True when submissions run synchronously on the caller's thread
    inline = False

    def __init__(self) -> None:
        self.service = None
        self._closed = False

    # ------------------------------------------------------------------ #
    def bind(self, service) -> None:
        """Attach to the owning service (exactly once, at construction)."""
        if self.service is not None:
            raise ReproError(
                f"backend {self.name!r} is already bound to service "
                f"{self.service.name!r}")
        self.service = service

    def ensure_started(self) -> None:
        """Lazily start execution resources.  Called with the service
        lock held, after a ticket was queued."""

    def wake(self) -> None:
        """Hint that new work is available (called outside the lock)."""

    def run_inline(self, ticket) -> None:
        """Inline backends only: execute one ticket on this thread."""
        raise ReproError(f"backend {self.name!r} does not run inline")

    @abc.abstractmethod
    def close(self) -> None:
        """Stop executing; release resources.  Must be idempotent."""

    def snapshot(self) -> Dict[str, object]:
        """Always-on live status merged into ``service.snapshot()``."""
        return {"name": self.name}


def make_backend(backend, *, workers: int,
                 options: Optional[dict] = None) -> ExecutionBackend:
    """Resolve the ``PlanningService(backend=...)`` argument.

    Accepts a ready :class:`ExecutionBackend` instance or one of the
    registry names ``auto`` / ``inline`` / ``thread`` / ``fleet``;
    ``auto`` (the default) preserves the historical mapping —
    ``workers=0`` is inline, anything else is the thread pool.
    ``options`` is forwarded to the backend constructor.
    """
    from .fleet import ProcessFleetBackend
    from .inline import InlineBackend
    from .thread import ThreadBackend

    if isinstance(backend, ExecutionBackend):
        if options:
            raise ReproError(
                "backend_options cannot be combined with a ready "
                "ExecutionBackend instance")
        return backend
    options = dict(options or {})
    if backend == "auto":
        backend = "inline" if workers == 0 else "thread"
    if backend == "inline":
        return InlineBackend(**options)
    if backend == "thread":
        return ThreadBackend(workers=workers, **options)
    if backend == "fleet":
        if workers < 1:
            raise ReproError(
                f"the fleet backend needs workers >= 1, got {workers}")
        return ProcessFleetBackend(workers=workers, **options)
    raise ReproError(
        f"unknown execution backend {backend!r}; expected one of "
        f"auto, inline, thread, fleet (or an ExecutionBackend instance)")
