"""Out-of-process planning fleet: persistent workers + manager loop.

:class:`ProcessFleetBackend` runs the planning service's evaluations in
a fleet of persistent worker *processes*.  Each worker keeps warm
:class:`~repro.service.context.PlanContext` sessions (profile + agent +
plan caches) across requests, so repeated traffic for the same (graph,
cluster, config) pays the pipeline cost once per worker, not once per
request — and no request ever shares the caller's GIL.

The architecture mirrors optuna-distributed's manager/worker split:

- **wire protocol** — every frame on the ``multiprocessing`` queues is
  a versioned typed message (:mod:`repro.service.messages`);
- **per-worker channels** — each worker owns a private inbox *and* a
  private outbox queue.  A shared result queue would let a SIGKILLed
  worker die holding the queue's cross-process writer lock, silently
  blocking every surviving worker's heartbeats (the failure mode that
  makes ``concurrent.futures`` declare a whole pool broken).  With one
  writer process per queue an abrupt death can only corrupt its own
  channel; a manager-side daemon reader thread per worker forwards
  frames into one in-process mailbox the event loop drains, so even a
  half-written frame wedges only that worker's reader, never the
  manager or the survivors;
- **manager event loop** — one daemon thread pops admitted tickets from
  the service's priority queue (only when a worker is idle, so
  admission control keeps its meaning), dispatches them, polls worker
  results, and watches health;
- **failure detection** — workers heartbeat from a side thread; a dead
  process or a silent worker (``heartbeat_timeout``) is declared lost
  (``worker_lost`` journal event), its in-flight request re-dispatched
  to a surviving worker (``request_redispatched``), and a replacement
  spawned.  Results are accepted **only from the worker currently
  assigned** to a job — a slow-but-alive worker that was falsely
  declared lost has its late result discarded
  (``worker_result_discarded``), never double-resolved, so coalesced
  waiters see exactly one result;
- **re-dispatch budget** — a request that loses ``redispatch_limit``
  workers is failed with :class:`~repro.errors.WorkerLostError`
  instead of grinding the fleet down worker by worker;
- **shared fleet** — while a fleet is live, the in-process
  :class:`~repro.plan.BatchEvaluator` borrows it for candidate fan-out
  (:meth:`ProcessFleetBackend.evaluate_batch`) instead of opening a
  second private process pool.

``stall_labels`` is the deterministic fault-injection hook the failure
tests use: requests whose label starts with a key sleep that many
seconds on the worker *after* announcing they started serving, which
gives tests a guaranteed mid-request window to kill the worker in.
"""

from __future__ import annotations

import collections
import itertools
import os
import queue as queue_mod
import threading
import time
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ... import telemetry
from ...errors import (
    FleetProtocolError,
    ReproError,
    ServiceClosedError,
    WorkerLostError,
)
from ..messages import (
    CompletedMessage,
    EvalCompletedMessage,
    EvalRequestMessage,
    FailedMessage,
    HeartbeatMessage,
    Message,
    PlanRequestMessage,
    ProgressMessage,
    ShutdownMessage,
    WorkerReadyMessage,
    message_from_wire,
    rebuild_error,
)
from .base import ExecutionBackend

DEFAULT_HEARTBEAT_INTERVAL = 0.25
DEFAULT_HEARTBEAT_TIMEOUT = 3.0
DEFAULT_REDISPATCH_LIMIT = 2
DEFAULT_DRAIN_TIMEOUT = 30.0
_TICK = 0.02                      # manager poll granularity (seconds)
_READER_STOP = "__fleet-reader-stop__"   # sentinel frame for reader threads


# --------------------------------------------------------------------- #
# worker process side
def _worker_serve(contexts: "OrderedDict[str, Any]", request,
                  max_contexts: int):
    """Serve one plan request on this worker's warm context LRU.

    The same context -> handle -> PlanResult chain as
    ``PlanningService._serve``, minus the manager-side accounting
    (stats, journal, SLO) which stays with the service.
    """
    from ..context import PlanContext
    from ..request import PlanResult

    key = request.context_key
    ctx = contexts.get(key)
    if ctx is None:
        ctx = PlanContext(request)
        contexts[key] = ctx
        while len(contexts) > max_contexts:
            contexts.popitem(last=False)
    else:
        contexts.move_to_end(key)
    start = time.perf_counter()
    with ctx.lock:
        reused = ctx.served > 0
        served = ctx.handle(request)
    return PlanResult(
        fingerprint=request.fingerprint,
        strategy=served.strategy,
        outcome=served.outcome,
        deployment=served.deployment,
        profile=served.profile,
        episodes=served.episodes,
        reused_context=reused,
        plan_cache_hits=served.plan_cache_hits,
        outcome_cache_hits=served.outcome_cache_hits,
        service_seconds=time.perf_counter() - start,
        measured_time=served.measured_time,
        measured_oom=served.measured_oom,
        request_id=request.request_id,
    )


def _worker_evaluate(builders: Dict[str, Any], msg: EvalRequestMessage):
    """Evaluate one borrowed-BatchEvaluator chunk on primed builders."""
    from ...parallel.serialize import strategy_from_dict
    from ...plan import PlanBuilder

    for name, digest in msg.digests.items():
        if digest in builders:
            continue
        payload = msg.payloads.get(name)
        if payload is None:
            raise FleetProtocolError(
                f"eval chunk references unprimed context {name!r} "
                f"({digest[:12]}) and carries no payload for it")
        graph, cluster, profile, order, group_of = payload
        builders[digest] = PlanBuilder(
            graph, cluster, profile,
            use_order_scheduling=order, group_of=group_of)
    # whole lane-batches per context: one evaluate_many prices every
    # lane of the chunk through the builder's LanePlanner and kills
    # hopeless ones before compiling.  The manager piggybacked its
    # best-so-far at dispatch time; the threshold stays fixed for the
    # whole chunk (worker-local tightening would over-prune k-elite
    # searches), which is exactly evaluate_many's prune_above form.
    outcomes: "list" = [None] * len(msg.items)
    by_context: Dict[str, "list"] = {}
    for i, (name, _) in enumerate(msg.items):
        by_context.setdefault(name, []).append(i)
    for name, idxs in by_context.items():
        builder = builders[msg.digests[name]]
        strategies = [
            strategy_from_dict(msg.items[i][1], builder.graph,
                               builder.cluster)
            for i in idxs
        ]
        outs = builder.evaluate_many(
            strategies, prune=msg.prune,
            prune_above=msg.prune_above.get(name))
        for i, outcome in zip(idxs, outs):
            outcomes[i] = outcome
    return outcomes


def _fleet_worker_main(worker_id: str, inbox, outbox,
                       heartbeat_interval: float,
                       max_contexts: int) -> None:
    """Entry point of one fleet worker process."""
    # the forked child inherits the parent's ambient telemetry session
    # and fleet registry; both are manager-process concerns — drop them
    # so worker-side evaluations stay silent and a BatchEvaluator used
    # *inside* a worker never tries to borrow the fleet it lives in.
    _clear_active_fleets()
    while telemetry.active() is not None:
        telemetry.disable()

    contexts: "OrderedDict[str, Any]" = OrderedDict()
    eval_builders: Dict[str, Any] = {}
    served = [0]
    stop = threading.Event()

    def _beat() -> None:
        while not stop.wait(heartbeat_interval):
            try:
                outbox.put(HeartbeatMessage(
                    worker=worker_id, ts=time.time(),
                    served=served[0]).to_wire())
            except (OSError, ValueError):  # queue gone: manager exited
                return

    beater = threading.Thread(target=_beat, daemon=True,
                              name=f"{worker_id}-heartbeat")
    beater.start()
    outbox.put(WorkerReadyMessage(worker=worker_id,
                                  pid=os.getpid()).to_wire())
    try:
        while True:
            msg = message_from_wire(inbox.get())
            if isinstance(msg, ShutdownMessage):
                break
            if isinstance(msg, PlanRequestMessage):
                outbox.put(ProgressMessage(
                    ticket=msg.ticket, worker=worker_id).to_wire())
                if msg.stall_seconds > 0:
                    time.sleep(msg.stall_seconds)
                try:
                    result = _worker_serve(contexts, msg.request,
                                           max_contexts)
                except (ReproError, ValueError, KeyError,
                        TypeError) as exc:
                    outbox.put(FailedMessage(
                        ticket=msg.ticket, worker=worker_id, kind="plan",
                        error_type=type(exc).__name__,
                        message=str(exc)[:500]).to_wire())
                else:
                    served[0] += 1
                    outbox.put(CompletedMessage(
                        ticket=msg.ticket, worker=worker_id,
                        result=result).to_wire())
            elif isinstance(msg, EvalRequestMessage):
                outbox.put(ProgressMessage(
                    ticket=msg.job, worker=worker_id).to_wire())
                try:
                    outcomes = _worker_evaluate(eval_builders, msg)
                except (ReproError, ValueError, KeyError,
                        TypeError) as exc:
                    outbox.put(FailedMessage(
                        ticket=msg.job, worker=worker_id, kind="eval",
                        error_type=type(exc).__name__,
                        message=str(exc)[:500]).to_wire())
                else:
                    served[0] += 1
                    outbox.put(EvalCompletedMessage(
                        job=msg.job, worker=worker_id,
                        outcomes=outcomes).to_wire())
            else:
                raise FleetProtocolError(
                    f"worker {worker_id} cannot handle "
                    f"{type(msg).__name__}")
    finally:
        stop.set()


def _clear_active_fleets() -> None:
    """Forked children must not see the parent's registered fleet."""
    from . import _reset_fleet_registry
    _reset_fleet_registry()


# --------------------------------------------------------------------- #
# manager side
@dataclass
class _Job:
    """One unit of fleet work: an admitted plan ticket or an eval chunk."""

    kind: str                        # "plan" | "eval"
    key: str                         # ticket fingerprint or eval job id
    ticket: Any = None               # PlanTicket (plan jobs)
    message: Any = None              # prebuilt EvalRequestMessage (eval)
    queue_seconds: float = 0.0
    attempts: int = 0
    worker: Optional[str] = None     # currently assigned worker id
    lost_on: List[str] = field(default_factory=list)
    # eval-job completion plumbing
    event: Optional[threading.Event] = None
    outcomes: Optional[list] = None
    error: Optional[BaseException] = None
    # shared best-so-far trackers by context name (eval jobs): read at
    # dispatch time to stamp the chunk's thresholds, written by the
    # manager loop when exact outcomes come back
    best: Optional[dict] = None

    @property
    def request_id(self) -> str:
        return self.ticket.request.request_id if self.ticket is not None \
            else self.key


@dataclass
class _WorkerHandle:
    """Manager-side view of one worker process."""

    id: str
    process: Any
    inbox: Any
    spawned_at: float
    last_beat: float
    outbox: Any = None               # this worker's private result queue
    reader: Any = None               # manager-side forwarding thread
    pid: int = 0
    job: Optional[_Job] = None
    condemned: bool = False
    reported_misses: int = 0
    served: int = 0
    primed: set = field(default_factory=set)  # eval-context digests

    @property
    def idle(self) -> bool:
        return self.job is None and not self.condemned


@dataclass
class FleetStats:
    """Always-on fleet accounting (mirrored into telemetry gauges)."""

    spawned: int = 0
    exited: int = 0
    lost: int = 0
    heartbeats: int = 0
    heartbeat_misses: int = 0
    dispatched: int = 0
    redispatched: int = 0
    discarded: int = 0
    plan_completed: int = 0
    plan_failed: int = 0
    eval_jobs: int = 0

    def snapshot(self) -> Dict[str, int]:
        import dataclasses
        return dataclasses.asdict(self)


class ProcessFleetBackend(ExecutionBackend):
    """Manager/worker fleet of persistent planning processes."""

    name = "fleet"

    def __init__(self, workers: int = 2, *,
                 heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
                 heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
                 redispatch_limit: int = DEFAULT_REDISPATCH_LIMIT,
                 drain_timeout: float = DEFAULT_DRAIN_TIMEOUT,
                 stall_labels: Optional[Dict[str, float]] = None,
                 mp_context: Optional[str] = None):
        super().__init__()
        if workers < 1:
            raise ReproError(
                f"fleet backend needs workers >= 1, got {workers}")
        if heartbeat_interval <= 0 or heartbeat_timeout <= 0:
            raise ReproError("heartbeat interval/timeout must be positive")
        if heartbeat_timeout <= heartbeat_interval:
            raise ReproError(
                f"heartbeat_timeout ({heartbeat_timeout}) must exceed "
                f"heartbeat_interval ({heartbeat_interval})")
        if redispatch_limit < 0:
            raise ReproError(
                f"redispatch_limit must be >= 0, got {redispatch_limit}")
        self.workers = workers
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.redispatch_limit = redispatch_limit
        self.drain_timeout = drain_timeout
        self.stall_labels = dict(stall_labels or {})
        self.mp_context = mp_context
        self.stats = FleetStats()
        self._manager: Optional[threading.Thread] = None
        self._wake = threading.Event()
        self._closing = threading.Event()
        self._mutex = threading.Lock()
        self._cond = threading.Condition(self._mutex)
        self._fleet: Dict[str, _WorkerHandle] = {}   # manager thread only
        self._jobs: Dict[Tuple[str, str], _Job] = {}  # assigned jobs
        self._ready: "collections.deque[_Job]" = collections.deque()
        self._eval_inbox: List[_Job] = []            # under _mutex
        self._serving: Dict[str, str] = {}           # key -> worker (mutex)
        self._inproc: "queue_mod.Queue" = queue_mod.Queue()
        self._mp = None
        self._worker_seq = itertools.count()
        self._job_seq = itertools.count(1)

    # ------------------------------------------------------------------ #
    # lifecycle
    def ensure_started(self) -> None:
        """Start the manager event loop once (idempotent, cheap)."""
        if self._manager is not None or self._closed:
            return
        import multiprocessing

        self._mp = multiprocessing.get_context(self.mp_context)
        self._manager = threading.Thread(
            target=self._event_loop, daemon=True,
            name=f"{self.service.name}-fleet-manager")
        self._manager.start()
        from . import _register_fleet
        _register_fleet(self)

    def wake(self) -> None:
        self._wake.set()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        from . import _unregister_fleet
        _unregister_fleet(self)
        self._closing.set()
        self._wake.set()
        if self._manager is not None:
            self._manager.join(self.drain_timeout + 10.0)
            if self._manager.is_alive():
                self.service.recorder.emit(
                    f"{self.service.name}-fleet", "worker_join_timeout",
                    worker="manager", timeout=self.drain_timeout)
                warnings.warn(
                    f"fleet manager of service {self.service.name!r} did "
                    f"not drain within {self.drain_timeout:.1f}s of "
                    f"close(); worker processes may be leaked",
                    RuntimeWarning, stacklevel=3)

    # ------------------------------------------------------------------ #
    # test / introspection hooks
    def wait_serving(self, key: str, timeout: float = 10.0) -> Optional[str]:
        """Block until a worker reports it started serving ``key``
        (a ticket fingerprint or eval job id); returns the worker id."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while key not in self._serving:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
                self._cond.wait(remaining)
            return self._serving[key]

    def worker_pids(self) -> Dict[str, int]:
        """Live worker pids by id (test hook; racy by nature)."""
        return {w.id: w.pid for w in list(self._fleet.values())
                if w.pid and w.process.is_alive()}

    def snapshot(self) -> Dict[str, object]:
        fleet = list(self._fleet.values())
        return {
            "name": self.name,
            "workers": self.workers,
            "alive": sum(1 for w in fleet if w.process.is_alive()),
            "busy": sum(1 for w in fleet if w.job is not None),
            "condemned": sum(1 for w in fleet if w.condemned),
            "heartbeat_interval": self.heartbeat_interval,
            "heartbeat_timeout": self.heartbeat_timeout,
            "redispatch_limit": self.redispatch_limit,
            "stats": self.stats.snapshot(),
            "closed": self._closed,
        }

    # ------------------------------------------------------------------ #
    # BatchEvaluator borrow path
    def evaluate_batch(self, payloads: Dict[str, tuple],
                       digests: Dict[str, str],
                       items: List[Tuple[str, dict]], *,
                       best: Optional[Dict[str, Any]] = None,
                       prune: bool = True) -> list:
        """Evaluate (context, strategy-dict) pairs on the fleet.

        Splits ``items`` into per-worker chunks, dispatches them like
        plan requests (same re-dispatch machinery), and reassembles
        outcomes in input order.  Raises on fleet shutdown or an
        exhausted re-dispatch budget — the caller
        (:class:`~repro.plan.BatchEvaluator`) falls back to its own
        pool/serial path on any :class:`~repro.errors.ReproError`.

        ``best`` maps context names to shared
        :class:`~repro.plan.pruning.BestSoFar` trackers: each chunk's
        wire message is stamped with the trackers' thresholds at
        dispatch time, and exact outcomes are observed back as chunks
        complete, so later-dispatched chunks prune harder.
        """
        if self._closed or not items:
            if self._closed:
                raise ServiceClosedError("fleet backend is closed")
            return []
        chunk_count = min(len(items), self.workers)
        bounds = [(len(items) * i) // chunk_count
                  for i in range(chunk_count + 1)]
        jobs: List[_Job] = []
        with self._mutex:
            for i in range(chunk_count):
                chunk = items[bounds[i]:bounds[i + 1]]
                used = {name for name, _ in chunk}
                job_id = f"eval-{next(self._job_seq):06d}"
                job = _Job(
                    kind="eval", key=job_id,
                    message=EvalRequestMessage(
                        job=job_id,
                        digests={n: d for n, d in digests.items()
                                 if n in used},
                        payloads={n: p for n, p in payloads.items()
                                  if n in used},
                        items=list(chunk),
                        prune=prune),
                    best=({n: t for n, t in best.items() if n in used}
                          if prune and best else None),
                    event=threading.Event())
                self._eval_inbox.append(job)
                jobs.append(job)
        self.stats.eval_jobs += len(jobs)
        self._wake.set()
        outcomes: list = []
        for job in jobs:
            job.event.wait()
            if job.error is not None:
                raise job.error
            outcomes.extend(job.outcomes or [])
        return outcomes

    # ------------------------------------------------------------------ #
    # manager event loop
    def _event_loop(self) -> None:
        service = self.service
        try:
            for _ in range(self.workers):
                self._spawn_worker()
            drain_deadline: Optional[float] = None
            while True:
                self._pump_messages()
                self._check_health()
                self._assign_work()
                if self._closing.is_set():
                    if drain_deadline is None:
                        drain_deadline = time.monotonic() \
                            + self.drain_timeout
                        self._fail_undispatched(ServiceClosedError(
                            f"planning service {service.name!r} closed "
                            f"before serving this request"))
                    if not self._jobs:
                        break
                    if time.monotonic() > drain_deadline:
                        for job in list(self._jobs.values()):
                            self._resolve_error(job, ServiceClosedError(
                                "fleet drain timed out with the request "
                                "still in flight"))
                        break
        finally:
            self._shutdown_workers()

    def _read_worker(self, outbox) -> None:
        """Forward one worker's frames into the in-process mailbox.

        One daemon thread per worker: each blocking ``get`` touches a
        queue with exactly one writer *process*, so a worker that dies
        mid-write can wedge only this thread (which is then abandoned —
        see :meth:`_release_reader`), never the event loop.
        """
        while True:
            try:
                frame = outbox.get()
            except (EOFError, OSError, ValueError):
                return
            if frame == _READER_STOP:
                return
            self._inproc.put(frame)

    def _pump_messages(self) -> None:
        """Drain the in-process mailbox; the first get is the loop's sleep."""
        block = True
        while True:
            try:
                if block:
                    frame = self._inproc.get(timeout=_TICK)
                    block = False
                else:
                    frame = self._inproc.get_nowait()
            except queue_mod.Empty:
                return
            try:
                self._handle_message(message_from_wire(frame))
            except FleetProtocolError:
                # a malformed frame is a bug, not a request failure;
                # drop it rather than poison the loop
                continue

    def _handle_message(self, msg: Message) -> None:
        worker = self._fleet.get(getattr(msg, "worker", ""))
        if isinstance(msg, HeartbeatMessage):
            if worker is not None:
                worker.last_beat = time.monotonic()
                worker.reported_misses = 0
                self.stats.heartbeats += 1
            return
        if isinstance(msg, WorkerReadyMessage):
            if worker is not None:
                worker.pid = msg.pid
                worker.last_beat = time.monotonic()
            return
        if isinstance(msg, ProgressMessage):
            with self._cond:
                self._serving[msg.ticket] = msg.worker
                self._cond.notify_all()
            return
        if isinstance(msg, CompletedMessage):
            self._on_job_result(msg.worker, ("plan", msg.ticket),
                                result=msg.result)
            return
        if isinstance(msg, EvalCompletedMessage):
            self._on_job_result(msg.worker, ("eval", msg.job),
                                outcomes=msg.outcomes)
            return
        if isinstance(msg, FailedMessage):
            self._on_job_result(
                msg.worker, (msg.kind, msg.ticket),
                error=rebuild_error(msg.error_type, msg.message))
            return

    def _on_job_result(self, worker_id: str, key: Tuple[str, str], *,
                       result=None, outcomes=None, error=None) -> None:
        """At-most-once resolution: only the assigned worker resolves."""
        job = self._jobs.get(key)
        worker = self._fleet.get(worker_id)
        if job is None or job.worker != worker_id:
            # the job was re-dispatched (or already resolved) after this
            # worker was declared lost: discard the late result
            self.stats.discarded += 1
            telemetry.emit_count("service_fleet_results_discarded_total",
                                 help="late fleet results discarded")
            self.service.recorder.emit(
                job.request_id if job is not None else key[1],
                "worker_result_discarded", worker=worker_id)
            if worker is not None and worker.condemned \
                    and worker.job is None:
                pass  # reaped by _check_health once the process exits
            return
        del self._jobs[key]
        with self._cond:
            self._serving.pop(key[1], None)
        if worker is not None and worker.job is job:
            worker.job = None
            worker.served += 1
        if error is not None:
            self._resolve_error(job, error)
        elif job.kind == "plan":
            self.stats.plan_completed += 1
            result.queue_seconds = job.queue_seconds
            self.service._finish(job.ticket, result=result,
                                 queue_seconds=job.queue_seconds)
        else:
            if job.best and outcomes:
                # fold exact results into the shared trackers so chunks
                # still waiting for a worker dispatch with a tighter
                # threshold; pruned/infeasible outcomes are never
                # observed (their time is not exact)
                for (name, _), outcome in zip(job.message.items, outcomes):
                    tracker = job.best.get(name)
                    if tracker is not None and outcome.feasible:
                        tracker.observe(outcome.time)
            job.outcomes = outcomes
            job.event.set()
        self._update_gauges()

    def _resolve_error(self, job: _Job, error: BaseException) -> None:
        self._jobs.pop((job.kind, job.key), None)
        if job.kind == "plan":
            self.stats.plan_failed += 1
            self.service._finish(job.ticket, error=error,
                                 queue_seconds=job.queue_seconds)
        else:
            job.error = error
            job.event.set()

    # ------------------------------------------------------------------ #
    def _check_health(self) -> None:
        now = time.monotonic()
        for worker in list(self._fleet.values()):
            if worker.condemned:
                if not worker.process.is_alive():
                    self._reap(worker)
                continue
            if not worker.process.is_alive():
                self._on_worker_lost(worker, reason="process_dead")
                continue
            age = now - worker.last_beat
            misses = int(age / self.heartbeat_interval) - 1
            if misses > worker.reported_misses and misses >= 1:
                worker.reported_misses = misses
                self.stats.heartbeat_misses += 1
                self.service.recorder.emit(
                    self._worker_rid(worker), "worker_heartbeat_missed",
                    worker=worker.id, misses=misses)
            if age > self.heartbeat_timeout:
                self._on_worker_lost(worker, reason="heartbeat_timeout")

    def _on_worker_lost(self, worker: _WorkerHandle, reason: str) -> None:
        worker.condemned = True
        self.stats.lost += 1
        telemetry.emit_count("service_fleet_workers_lost_total",
                             help="fleet workers declared lost")
        rid = self._worker_rid(worker)
        self.service.recorder.emit(
            rid, "worker_lost", worker=worker.id, reason=reason,
            alive=worker.process.is_alive(), served=worker.served)
        self.service.recorder.finish(rid, "failed")
        job = worker.job
        worker.job = None
        if job is not None:
            job.lost_on.append(worker.id)
            job.worker = None
            with self._cond:
                self._serving.pop(job.key, None)
            if job.attempts > self.redispatch_limit:
                self._resolve_error(job, WorkerLostError(
                    f"request lost {job.attempts} worker(s) "
                    f"({', '.join(job.lost_on)}); giving up after "
                    f"redispatch_limit={self.redispatch_limit}",
                    attempts=job.attempts, workers=job.lost_on))
            else:
                self.stats.redispatched += 1
                telemetry.emit_count(
                    "service_fleet_redispatched_total",
                    help="in-flight requests re-dispatched")
                self.service.recorder.emit(
                    job.request_id, "request_redispatched",
                    worker=worker.id, attempt=job.attempts)
                self._ready.appendleft(job)
        if not worker.process.is_alive():
            self._reap(worker)
        if not self._closing.is_set():
            self._spawn_worker()
        self._update_gauges()

    def _release_reader(self, worker: _WorkerHandle) -> None:
        """Stop a worker's forwarding thread after a *clean* exit.

        After an abrupt death (SIGKILL) the worker's channel may hold a
        half-written frame or an orphaned writer lock, so even the stop
        sentinel could block — the daemon reader is abandoned instead
        (parked on an empty queue, zero CPU, bounded by lost workers).
        """
        if worker.outbox is None or worker.process.exitcode != 0:
            return
        try:
            worker.outbox.put(_READER_STOP)
        except (OSError, ValueError):
            return
        if worker.reader is not None:
            worker.reader.join(timeout=1.0)

    def _reap(self, worker: _WorkerHandle) -> None:
        self._fleet.pop(worker.id, None)
        worker.process.join(timeout=0.1)
        self._release_reader(worker)
        self.stats.exited += 1
        telemetry.emit_gauge("service_fleet_worker_up", 0.0,
                             labels={"worker": worker.id},
                             help="1 while a fleet worker is dispatchable")
        self._update_gauges()

    def _spawn_worker(self) -> None:
        wid = f"w{next(self._worker_seq)}"
        inbox = self._mp.Queue()
        outbox = self._mp.Queue()
        process = self._mp.Process(
            target=_fleet_worker_main,
            args=(wid, inbox, outbox, self.heartbeat_interval,
                  self.service.max_contexts),
            daemon=True, name=f"{self.service.name}-fleet-{wid}")
        process.start()
        now = time.monotonic()
        reader = threading.Thread(
            target=self._read_worker, args=(outbox,), daemon=True,
            name=f"{self.service.name}-fleet-{wid}-reader")
        reader.start()
        worker = _WorkerHandle(id=wid, process=process, inbox=inbox,
                               spawned_at=now, last_beat=now,
                               outbox=outbox, reader=reader)
        self._fleet[wid] = worker
        self.stats.spawned += 1
        rid = self._worker_rid(worker)
        self.service.recorder.begin(rid, label=f"fleet:{wid}")
        self.service.recorder.emit(rid, "worker_spawn", worker=wid,
                                   pid=process.pid or 0)
        telemetry.emit_gauge("service_fleet_worker_up", 1.0,
                             labels={"worker": wid},
                             help="1 while a fleet worker is dispatchable")
        self._update_gauges()

    def _worker_rid(self, worker: _WorkerHandle) -> str:
        return f"{self.service.name}-fleet-{worker.id}"

    # ------------------------------------------------------------------ #
    def _assign_work(self) -> None:
        self._wake.clear()
        with self._mutex:
            if self._eval_inbox:
                self._ready.extend(self._eval_inbox)
                self._eval_inbox.clear()
        while True:
            worker = next((w for w in self._fleet.values() if w.idle),
                          None)
            if worker is None:
                return
            job = self._next_job()
            if job is None:
                return
            self._dispatch(job, worker)

    def _next_job(self) -> Optional[_Job]:
        while self._ready:
            job = self._ready.popleft()
            if job.kind == "plan" and job.ticket.done:
                continue
            return job
        if self._closing.is_set():
            return None
        while True:
            ticket = self.service._next_ticket()
            if ticket is None:
                return None
            queue_seconds = time.perf_counter() - ticket.submitted_at
            self.service._observe("service_wait_seconds", queue_seconds)
            if self.service._fail_expired(ticket, queue_seconds):
                continue  # deadline lapsed while queued: never dispatch
            return _Job(kind="plan", key=ticket.fingerprint,
                        ticket=ticket, queue_seconds=queue_seconds)

    def _dispatch(self, job: _Job, worker: _WorkerHandle) -> None:
        job.attempts += 1
        job.worker = worker.id
        worker.job = job
        self._jobs[(job.kind, job.key)] = job
        self.stats.dispatched += 1
        if job.kind == "plan":
            request = job.ticket.request
            if job.attempts == 1:
                # the worker-side evaluation is this service's
                # "executed" unit, re-dispatches don't re-count
                with self.service._lock:
                    self.service.stats.executed += 1
            stall = next(
                (s for prefix, s in self.stall_labels.items()
                 if request.label.startswith(prefix)), 0.0)
            self.service.recorder.emit(
                request.request_id, "dispatched", worker=worker.id,
                attempt=job.attempts)
            msg: Message = PlanRequestMessage(
                ticket=job.key, request=request,
                queue_seconds=job.queue_seconds, stall_seconds=stall)
        else:
            eval_msg: EvalRequestMessage = job.message
            needed = {
                name: payload
                for name, payload in eval_msg.payloads.items()
                if eval_msg.digests[name] not in worker.primed
            }
            worker.primed.update(eval_msg.digests.values())
            # piggyback the current best-so-far per context: chunks
            # dispatched after earlier ones completed see a tighter
            # threshold (the trackers are monotonic, so a stale stamp is
            # merely conservative, never wrong)
            thresholds: Dict[str, float] = {}
            if job.best:
                for name, tracker in job.best.items():
                    t = tracker.threshold()
                    if t != float("inf"):
                        thresholds[name] = t
            msg = EvalRequestMessage(
                job=eval_msg.job, digests=eval_msg.digests,
                payloads=needed, items=eval_msg.items,
                prune_above=thresholds, prune=eval_msg.prune)
        try:
            worker.inbox.put(msg.to_wire())
        except (OSError, ValueError):
            self._on_worker_lost(worker, reason="inbox_closed")
            return
        self._update_gauges()

    def _fail_undispatched(self, error: BaseException) -> None:
        while self._ready:
            job = self._ready.popleft()
            if job.kind == "plan" and job.ticket.done:
                continue
            self._jobs.pop((job.kind, job.key), None)
            self._resolve_error(job, error)
        with self._mutex:
            pending, self._eval_inbox = self._eval_inbox, []
        for job in pending:
            self._resolve_error(job, error)

    # ------------------------------------------------------------------ #
    def _shutdown_workers(self) -> None:
        for worker in list(self._fleet.values()):
            try:
                worker.inbox.put(ShutdownMessage(reason="close").to_wire())
            except (OSError, ValueError):
                pass
        deadline = time.monotonic() + 5.0
        for worker in list(self._fleet.values()):
            worker.process.join(
                timeout=max(0.1, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=2.0)
            rid = self._worker_rid(worker)
            self.service.recorder.emit(rid, "worker_exit",
                                       worker=worker.id,
                                       served=worker.served)
            self.service.recorder.finish(rid, "completed")
            telemetry.emit_gauge(
                "service_fleet_worker_up", 0.0,
                labels={"worker": worker.id},
                help="1 while a fleet worker is dispatchable")
            self.stats.exited += 1
            self._release_reader(worker)
        self._fleet.clear()
        # unblock every remaining waiter: evaluate_batch callers that
        # raced with close() and any job the drain loop left in flight
        closed = ServiceClosedError("fleet backend closed")
        self._fail_undispatched(closed)
        for job in list(self._jobs.values()):
            self._resolve_error(job, closed)
        self._update_gauges()

    def _update_gauges(self) -> None:
        fleet = self._fleet.values()
        telemetry.emit_gauge(
            "service_fleet_workers",
            sum(1 for w in fleet if w.process.is_alive()),
            help="live fleet worker processes")
        telemetry.emit_gauge(
            "service_fleet_busy",
            sum(1 for w in fleet if w.job is not None),
            help="fleet workers currently serving a request")
