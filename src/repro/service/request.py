"""Typed request/result surface of the planning service.

A :class:`PlanRequest` names *everything* that determines a planning
outcome — the computation graph, the cluster (or client ``device_info``
description), the search budget or the explicit strategy to build, the
scheduler flag and the configuration seeds — and derives two content
fingerprints from it:

- ``context_key`` identifies the warm :class:`~repro.service.context.
  PlanContext` (graph + cluster + profile + config) the request is
  served on;
- ``fingerprint`` additionally covers the requested work (search budget
  or strategy, engine measurement), so two requests with equal
  fingerprints are guaranteed to produce bit-identical results — which
  is what makes the service's coalescing and result cache sound.

Everything client-facing validates in ``__post_init__`` and raises
:class:`~repro.errors.ReproError` subclasses only; stray ``ValueError``
/ ``KeyError`` from cluster parsing are wrapped at this boundary.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Optional

from ..config import HeteroGConfig
from ..errors import ReproError
from ..graph.dag import ComputationGraph
from ..parallel.strategy import Strategy
from ..plan import EvalOutcome
from ..plan.fingerprint import (
    _cluster_payload,
    _digest,
    _graph_payload,
    _op_strategy_payload,
    _profile_payload,
)
from ..profiling.profiler import Profile
from ..runtime.deployment import Deployment


def _config_payload(config: HeteroGConfig) -> Any:
    """The configuration fields that influence planning results.

    The agent's ``seed`` and ``use_order_scheduling`` are overridden by
    the request (see :class:`~repro.service.context.PlanContext`), and
    ``eval_workers`` / ``engine`` never change results (parallel
    evaluation is bit-identical to serial, the kernel and reference
    event loops are bit-identical to each other), so none of them
    splits contexts.  The winner-safe ``prune`` flag is likewise
    result-transparent and does not split contexts — but it IS part of
    the request fingerprint, so a pruned and an unpruned request never
    coalesce; ``prune_rollouts`` (which changes training trajectories)
    stays in the payload.
    """
    agent = dataclasses.asdict(config.agent)
    agent.pop("seed", None)
    agent.pop("use_order_scheduling", None)
    agent.pop("eval_workers", None)
    agent.pop("prune", None)
    agent.pop("engine", None)
    return {
        "seed": config.seed,
        "profile_noise_sigma": config.profile_noise_sigma,
        "engine_jitter_sigma": config.engine_jitter_sigma,
        "agent": agent,
    }


@dataclass(frozen=True)
class PlanRequest:
    """One typed request to the planning service.

    ``strategy=None`` asks for a strategy *search* (up to ``max_rounds``
    batches of ``episodes`` RL episodes until a feasible strategy is
    found); an explicit ``strategy`` asks the service to *build* (and
    optionally engine-measure) that strategy's deployment.
    """

    graph: ComputationGraph
    cluster: Any                     # Cluster or client device_info list
    strategy: Optional[Strategy] = None
    profile: Optional[Profile] = None
    episodes: Optional[int] = None   # search budget (default: config's)
    max_rounds: int = 3              # feasibility retries for searches
    measure_iterations: Optional[int] = None  # engine-measure the result
    priority: int = 0                # higher is served first
    timeout: Optional[float] = None  # seconds (queue wait + service)
    use_order_scheduling: bool = True
    # branch-and-bound candidate pruning (winner-safe; False forces the
    # full unpruned evaluation — the ``--no-prune`` A/B switch).  It IS
    # fingerprinted so a pruned and an unpruned request never coalesce,
    # keeping --no-prune timings honest.
    prune: bool = True
    config: Optional[HeteroGConfig] = None
    label: str = ""                  # client tag (not fingerprinted)
    request_id: str = ""             # correlation id (auto-assigned)
    parent_id: str = ""              # enclosing request/episode scope

    def __post_init__(self) -> None:
        from ..api import parse_device_info  # lazy: api imports service
        from ..telemetry.context import current_request
        from ..telemetry.journal import new_request_id
        # correlation ids are observability-only: they never enter the
        # fingerprint, so coalescing and result caching stay sound
        if not self.request_id:
            object.__setattr__(self, "request_id", new_request_id("req"))
        if not self.parent_id:
            object.__setattr__(self, "parent_id", current_request() or "")
        if not isinstance(self.graph, ComputationGraph):
            raise ReproError(
                f"PlanRequest.graph must be a ComputationGraph, "
                f"got {type(self.graph).__name__}"
            )
        try:
            cluster = parse_device_info(self.cluster)
        except ReproError:
            raise
        except (ValueError, KeyError, TypeError) as exc:
            raise ReproError(f"invalid device_info: {exc}") from exc
        object.__setattr__(self, "cluster", cluster)
        if self.strategy is not None and not isinstance(self.strategy,
                                                        Strategy):
            raise ReproError(
                f"PlanRequest.strategy must be a Strategy or None, "
                f"got {type(self.strategy).__name__}"
            )
        object.__setattr__(self, "config",
                           self.config if self.config is not None
                           else HeteroGConfig())
        if self.episodes is not None and self.episodes < 1:
            raise ReproError(
                f"PlanRequest.episodes must be >= 1, got {self.episodes}")
        if self.max_rounds < 1:
            raise ReproError(
                f"PlanRequest.max_rounds must be >= 1, got {self.max_rounds}")
        if self.measure_iterations is not None \
                and self.measure_iterations < 1:
            raise ReproError(
                f"PlanRequest.measure_iterations must be >= 1, "
                f"got {self.measure_iterations}")
        if self.timeout is not None and self.timeout <= 0:
            raise ReproError(
                f"PlanRequest.timeout must be positive, got {self.timeout}")

    # ------------------------------------------------------------------ #
    @property
    def is_search(self) -> bool:
        return self.strategy is None

    @property
    def budget(self) -> int:
        """Resolved per-round episode budget for search requests."""
        return self.episodes if self.episodes is not None \
            else self.config.episodes

    # ------------------------------------------------------------------ #
    def _context_payload(self) -> Any:
        payload = {
            "graph": _graph_payload(self.graph),
            "cluster": _cluster_payload(self.cluster),
            "use_order_scheduling": bool(self.use_order_scheduling),
            "config": _config_payload(self.config),
        }
        if self.profile is not None:
            payload["profile"] = _profile_payload(self.profile)
        return payload

    @property
    def context_key(self) -> str:
        """Digest of the warm-context identity this request is served on."""
        cached = self.__dict__.get("_context_key")
        if cached is None:
            cached = _digest(self._context_payload())
            object.__setattr__(self, "_context_key", cached)
        return cached

    @property
    def fingerprint(self) -> str:
        """Digest of the full request (context + requested work)."""
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            if self.is_search:
                mode: Any = ("search", self.budget, self.max_rounds)
            else:
                mode = ("build", {
                    name: _op_strategy_payload(st)
                    for name, st in self.strategy.items()
                })
            cached = _digest({
                "context": self.context_key,
                "mode": mode,
                "measure": self.measure_iterations or 0,
                "prune": bool(self.prune),
            })
            object.__setattr__(self, "_fingerprint", cached)
        return cached


@dataclass
class PlanResult:
    """What the service returns for one :class:`PlanRequest`.

    ``deployment`` is ``None`` when the strategy was infeasible (build
    requests only — searches raise instead).  ``coalesced`` counts how
    many duplicate in-flight requests were folded into this computation
    beyond the first; ``from_cache`` marks results served from the
    service's completed-result cache without any new work.
    """

    fingerprint: str
    strategy: Strategy
    outcome: EvalOutcome
    deployment: Optional[Deployment]
    profile: Profile
    episodes: int = 0                # RL episodes actually trained
    reused_context: bool = False     # served on a pre-warmed context
    from_cache: bool = False
    coalesced: int = 0
    plan_cache_hits: int = 0         # cumulative, on the serving builder
    outcome_cache_hits: int = 0
    queue_seconds: float = 0.0
    service_seconds: float = 0.0
    measured_time: Optional[float] = None  # engine-measured s/iteration
    measured_oom: bool = False
    request_id: str = ""             # correlation id of the serving request
    extras: dict = field(default_factory=dict)

    @property
    def feasible(self) -> bool:
        return self.outcome.feasible and not self.measured_oom

    @property
    def time(self) -> float:
        """Best available per-iteration estimate (measured over simulated)."""
        if self.measured_time is not None:
            return self.measured_time
        return self.outcome.time

    def speed(self, global_batch: int) -> float:
        """Training speed in samples/sec (0.0 for infeasible plans)."""
        t = self.time
        if not self.feasible or t <= 0 or t == float("inf"):
            return 0.0
        return global_batch / t
