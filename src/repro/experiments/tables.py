"""Table generators: Tables 1, 2, 3, 4, 5, 7 of the paper."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..baselines.dp import DP_BASELINES, dp_strategy
from ..cluster.presets import cluster_8gpu, cluster_12gpu
from ..cluster.topology import Cluster
from ..graph.dag import ComputationGraph
from ..graph.models import CNN_MODELS, build_model
from ..graph.models.registry import ALL_MODELS
from ..runtime.trainer_loop import end_to_end_minutes
from .common import (
    LARGE_MODEL_ROWS,
    SMALL_MODEL_LABELS,
    ExperimentContext,
    MeasuredStrategy,
    env_episodes,
    env_preset,
    format_table,
)


@dataclass
class PerIterationRow:
    """One row of Table 1 / Table 4."""

    model: str
    label: str
    heterog: MeasuredStrategy
    baselines: Dict[str, MeasuredStrategy] = field(default_factory=dict)

    def speedups(self) -> Dict[str, Optional[float]]:
        return {
            name: self.heterog.speedup_over(m)
            for name, m in self.baselines.items()
        }

    def all_baselines_oom(self) -> bool:
        return all(m.oom for m in self.baselines.values())


def _batch_for(model: str, num_gpus: int) -> Dict[str, object]:
    """Strong scaling: Table 4 (12 GPUs) uses 1.5x the Table 1 batches."""
    if num_gpus == 8:
        return {}
    base = {"vgg19": 192, "resnet200": 192, "inception_v3": 192,
            "mobilenet_v2": 192, "nasnet": 192, "transformer": 720,
            "bert_large": 48, "xlnet_large": 48}[model]
    return {"batch_size": int(base * num_gpus / 8)}


def per_iteration_table(cluster: Cluster, num_gpus: int, *,
                        preset: Optional[str] = None,
                        episodes: Optional[int] = None,
                        models: Optional[List[str]] = None,
                        include_large: bool = True,
                        seed: int = 0) -> List[PerIterationRow]:
    """Generate the Table 1 (8 GPUs) / Table 4 (12 GPUs) rows."""
    preset = preset or env_preset()
    episodes = episodes if episodes is not None else env_episodes()
    ctx = ExperimentContext(cluster, seed=seed)
    rows: List[PerIterationRow] = []

    for model in models or ALL_MODELS:
        graph = build_model(model, preset, **_batch_for(model, num_gpus))
        heterog = ctx.run_heterog(graph, episodes=episodes)
        baselines = {
            # DP baselines run under the framework's default FIFO order,
            # as in the paper; order scheduling is part of HeteroG.
            name: ctx.measure(graph, dp_strategy(name, graph, cluster),
                              name, use_order_scheduling=False)
            for name in DP_BASELINES
        }
        rows.append(PerIterationRow(
            model=model, label=SMALL_MODEL_LABELS.get(model, model),
            heterog=heterog, baselines=baselines,
        ))

    if include_large:
        rows.extend(large_model_rows(cluster, num_gpus, preset=preset,
                                     episodes=episodes, seed=seed))
    return rows


def large_model_rows(cluster: Cluster, num_gpus: int, *,
                     preset: Optional[str] = None,
                     episodes: Optional[int] = None,
                     seed: int = 0) -> List[PerIterationRow]:
    """The OOM rows: DP infeasible, HeteroG finds a feasible deployment.

    These rows are only meaningful at ``paper`` preset (the bench-scale
    models fit in memory everywhere); at bench preset we still exercise
    them at paper scale because the OOM boundary is the point.
    """
    preset = "paper"  # memory boundaries only exist at faithful scale
    # paper-scale graphs are 5-20x bigger; the deterministic seeds (the
    # memory-balanced MP ladders) decide feasibility, so a short search
    # suffices and keeps the benchmark in CPU minutes
    episodes = min(episodes if episodes is not None else env_episodes(), 10)
    ctx = ExperimentContext(cluster, seed=seed)
    rows: List[PerIterationRow] = []
    scale = num_gpus / 8
    for label, model, overrides in LARGE_MODEL_ROWS:
        kwargs = dict(overrides)
        kwargs["batch_size"] = int(kwargs["batch_size"] * scale)
        graph = build_model(model, preset, **kwargs)
        heterog = ctx.run_heterog(graph, episodes=episodes, iterations=2)
        baselines = {
            name: ctx.measure(graph, dp_strategy(name, graph, cluster),
                              name, use_order_scheduling=False,
                              iterations=2)
            for name in DP_BASELINES
        }
        rows.append(PerIterationRow(model=model, label=label,
                                    heterog=heterog, baselines=baselines))
    return rows


def render_per_iteration(rows: List[PerIterationRow]) -> str:
    """Plain-text Table 1/4 with per-baseline speed-ups."""
    headers = ["Model", "HeteroG"] + [
        f"{b}/Speedup" for b in DP_BASELINES
    ]
    out_rows = []
    for row in rows:
        cells = [row.label, row.heterog.display_time]
        for name in DP_BASELINES:
            m = row.baselines[name]
            if m.oom:
                cells.append("OOM/-")
            else:
                speedup = row.heterog.speedup_over(m)
                cells.append(f"{m.time:.3f} / {speedup * 100:.1f}%"
                             if speedup is not None else f"{m.time:.3f}")
        out_rows.append(cells)
    return format_table(headers, out_rows)


# ---------------------------------------------------------------------- #
# Tables 2 and 3: strategy mixes
# ---------------------------------------------------------------------- #

def strategy_mix_table(rows: List[PerIterationRow],
                       cluster: Cluster) -> str:
    """Render the Table 2 / Table 3 percentage breakdown from rows."""
    device_cols = [f"G{i}" for i in range(cluster.num_devices)]
    headers = ["Model"] + device_cols + ["EV-PS", "EV-AR", "CP-PS", "CP-AR"]
    out_rows = []
    for row in rows:
        mix = row.heterog.mix
        cells = [row.label]
        for i, dev in enumerate(cluster.device_ids):
            cells.append(f"{mix.get(f'MP:{dev}', 0.0) * 100:.1f}%")
        for dp in ("EV-PS", "EV-AR", "CP-PS", "CP-AR"):
            cells.append(f"{mix.get(dp, 0.0) * 100:.1f}%")
        out_rows.append(cells)
    return format_table(headers, out_rows)


def mp_fraction(mix: Dict[str, float]) -> float:
    """Fraction of ops deployed without replication in a strategy mix."""
    return sum(v for k, v in mix.items() if k.startswith("MP:"))


# ---------------------------------------------------------------------- #
# Table 5: end-to-end training time
# ---------------------------------------------------------------------- #

@dataclass
class EndToEndRow:
    """One (model, cluster) end-to-end minutes row (Table 5)."""
    model: str
    gpus: int
    global_batch: int
    minutes: Dict[str, float]  # scheme -> minutes (inf on OOM)


def end_to_end_table(*, preset: Optional[str] = None,
                     episodes: Optional[int] = None,
                     seed: int = 0,
                     models: Optional[List[str]] = None
                     ) -> List[EndToEndRow]:
    """Table 5: convergence minutes = iterations(batch) x per-iter time."""
    preset = preset or env_preset()
    rows: List[EndToEndRow] = []
    for gpus, cluster in ((8, cluster_8gpu()), (12, cluster_12gpu())):
        ctx = ExperimentContext(cluster, seed=seed)
        for model in models or CNN_MODELS:
            overrides = _batch_for(model, gpus)
            graph = build_model(model, preset, **overrides)
            batch = overrides.get("batch_size", 192)
            minutes: Dict[str, float] = {}
            heterog = ctx.run_heterog(graph, episodes=episodes)
            minutes["HeteroG"] = (
                float("inf") if heterog.oom
                else end_to_end_minutes(model, batch, heterog.time)
            )
            for name in ("CP-PS", "CP-AR"):
                m = ctx.measure(graph, dp_strategy(name, graph, cluster),
                                name, use_order_scheduling=False)
                minutes[name] = (
                    float("inf") if m.oom
                    else end_to_end_minutes(model, batch, m.time)
                )
            rows.append(EndToEndRow(model=model, gpus=gpus,
                                    global_batch=batch, minutes=minutes))
    return rows


def render_end_to_end(rows: List[EndToEndRow]) -> str:
    """Plain-text table for Table 5."""
    headers = ["Model", "GPUs", "HeteroG", "CP-PS/Speedup", "CP-AR/Speedup"]
    out = []
    for row in rows:
        h = row.minutes["HeteroG"]
        cells = [row.model, str(row.gpus), f"{h:.1f}"]
        for name in ("CP-PS", "CP-AR"):
            m = row.minutes[name]
            cells.append(f"{m:.1f} / {(m - h) / h * 100:.1f}%")
        out.append(cells)
    return format_table(headers, out)


# ---------------------------------------------------------------------- #
# Table 7: order scheduling vs FIFO
# ---------------------------------------------------------------------- #

@dataclass
class OrderSchedulingRow:
    """One model's order-scheduling-vs-default row (Table 7)."""
    model: str
    with_order: float
    fifo: float

    @property
    def speedup(self) -> float:
        return (self.fifo - self.with_order) / self.with_order


def order_scheduling_table(cluster: Cluster, *,
                           preset: Optional[str] = None,
                           episodes: Optional[int] = None,
                           models: Optional[List[str]] = None,
                           seed: int = 0) -> List[OrderSchedulingRow]:
    """Table 7: same HeteroG strategy executed with rank order vs FIFO."""
    preset = preset or env_preset()
    ctx = ExperimentContext(cluster, seed=seed)
    rows: List[OrderSchedulingRow] = []
    for model in models or ALL_MODELS:
        graph = build_model(model, preset)
        heterog = ctx.run_heterog(graph, episodes=episodes)
        assert heterog.strategy is not None
        fifo = ctx.measure(graph, heterog.strategy, "FIFO",
                           use_order_scheduling=False)
        rows.append(OrderSchedulingRow(model=model, with_order=heterog.time,
                                       fifo=fifo.time))
    return rows


def render_order_scheduling(rows: List[OrderSchedulingRow]) -> str:
    """Plain-text table for Table 7."""
    headers = ["Model", "HeteroG Schedule", "FIFO Schedule", "Speed-up"]
    out = [[r.model, f"{r.with_order:.3f}", f"{r.fifo:.3f}",
            f"{r.speedup * 100:.1f}%"] for r in rows]
    return format_table(headers, out)
