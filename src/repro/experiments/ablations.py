"""Ablations beyond the paper's tables (design choices Sec. 8 credits).

- hybrid communication off: force AllReduce-only or PS-only and compare;
- model parallelism off: DP-only action space;
- grouping-size sweep: effect of N on strategy quality;
- jitter sensitivity: how stable the measured per-iteration time is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..agent import HeteroGAgent
from ..agent.policy import actions_to_strategy
from ..cluster.topology import Cluster
from ..graph.dag import ComputationGraph
from ..graph.models import build_model
from .common import (
    ExperimentContext,
    bench_agent_config,
    env_episodes,
    env_preset,
    format_table,
)


@dataclass
class AblationRow:
    """One measured ablation variant."""
    variant: str
    time: float
    oom: bool = False


def _restrict_actions(agent: HeteroGAgent, name: str,
                      allowed_offsets: List[int],
                      allow_mp: bool) -> None:
    """Clamp the best-found actions to a restricted space by re-mapping
    disallowed actions onto the nearest allowed DP action."""
    ctx = agent.context(name)
    m = agent.cluster.num_devices
    actions = ctx.best_actions
    if actions is None:
        return
    fixed = actions.copy()
    fallback = m + allowed_offsets[-1]
    for i, a in enumerate(fixed):
        if a < m:
            if not allow_mp:
                fixed[i] = fallback
        elif (a - m) not in allowed_offsets:
            fixed[i] = fallback
    ctx.best_actions = fixed


def communication_ablation(cluster: Cluster, model: str = "bert_large", *,
                           preset: Optional[str] = None,
                           episodes: Optional[int] = None,
                           seed: int = 0) -> List[AblationRow]:
    """Hybrid PS+AR vs AR-only vs PS-only for the searched strategy."""
    preset = preset or env_preset()
    graph = build_model(model, preset)
    ctx = ExperimentContext(cluster, seed=seed)
    agent = HeteroGAgent(cluster, bench_agent_config(seed))
    agent.add_graph(graph, ctx.profile(graph))
    agent.train(episodes if episodes is not None else env_episodes())
    name = graph.name

    rows: List[AblationRow] = []
    baseline_actions = agent.context(name).best_actions.copy()
    grouping = agent.context(name).grouping

    variants = [
        ("hybrid (HeteroG)", [0, 1, 2, 3], True),
        ("AllReduce-only", [1, 3], True),
        ("PS-only", [0, 2], True),
        ("no model parallelism", [0, 1, 2, 3], False),
    ]
    for label, offsets, allow_mp in variants:
        agent.context(name).best_actions = baseline_actions.copy()
        _restrict_actions(agent, name, offsets, allow_mp)
        strategy = actions_to_strategy(
            graph, cluster, grouping, agent.context(name).best_actions
        )
        measured = ctx.measure(graph, strategy, label)
        rows.append(AblationRow(variant=label, time=measured.time,
                                oom=measured.oom))
    agent.context(name).best_actions = baseline_actions
    return rows


def grouping_ablation(cluster: Cluster, model: str = "inception_v3", *,
                      preset: Optional[str] = None,
                      group_sizes: Optional[List[int]] = None,
                      episodes: Optional[int] = None,
                      seed: int = 0) -> List[AblationRow]:
    """Strategy quality vs the maximal number of op groups N."""
    preset = preset or env_preset()
    graph = build_model(model, preset)
    rows: List[AblationRow] = []
    for n in group_sizes or [4, 16, 40]:
        config = bench_agent_config(seed)
        config.max_groups = n
        agent = HeteroGAgent(cluster, config)
        agent.add_graph(graph)
        agent.train(episodes if episodes is not None else env_episodes())
        ctx = ExperimentContext(cluster, seed=seed)
        measured = ctx.measure(graph, agent.best_strategy(graph.name),
                               f"N={n}")
        rows.append(AblationRow(variant=f"N={n}", time=measured.time,
                                oom=measured.oom))
    return rows


def jitter_sensitivity(cluster: Cluster, model: str = "vgg19", *,
                       preset: Optional[str] = None,
                       sigmas: Optional[List[float]] = None,
                       seed: int = 0) -> Dict[float, float]:
    """Coefficient of variation of per-iteration time vs kernel jitter."""
    from ..baselines import dp_strategy
    from ..runtime.deployment import build_deployment
    from ..runtime.execution_engine import ExecutionEngine
    preset = preset or env_preset()
    graph = build_model(model, preset)
    ctx = ExperimentContext(cluster, seed=seed)
    strategy = dp_strategy("CP-AR", graph, cluster)
    deployment = build_deployment(graph, cluster, strategy,
                                  builder=ctx.builder(graph))
    out: Dict[float, float] = {}
    for sigma in sigmas or [0.0, 0.02, 0.05, 0.1]:
        engine = ExecutionEngine(cluster, jitter_sigma=sigma, seed=seed)
        stats = engine.measure(deployment.dist, deployment.schedule,
                               deployment.resident_bytes, iterations=10)
        out[sigma] = stats.std / stats.mean if stats.mean else 0.0
    return out


def fusion_ablation(cluster: Cluster, model: str = "resnet200", *,
                    preset: Optional[str] = None,
                    bucket_sizes_mb: Optional[List[int]] = None,
                    seed: int = 0) -> List[AblationRow]:
    """Gradient-fusion sweep: per-iteration time vs AllReduce bucket size.

    Reproduces the Horovod tensor-fusion U-curve: no fusion pays the
    per-collective launch overhead hundreds of times; over-fusion delays
    the first collective until every gradient is ready."""
    from ..baselines import dp_strategy
    from ..parallel.fusion import count_collectives, fuse_allreduces
    from ..runtime.execution_engine import ExecutionEngine
    from ..scheduling.list_scheduler import ListScheduler

    preset = preset or env_preset()
    graph = build_model(model, preset)
    ctx = ExperimentContext(cluster, seed=seed)
    builder = ctx.builder(graph)
    # compile-only: the fused variants re-schedule a transformed graph,
    # which is exactly what PlanBuilder.compile exists for
    dist, resident = builder.compile(dp_strategy("EV-AR", graph, cluster))
    cost = builder.cost
    engine = ExecutionEngine(cluster, seed=seed + 1)

    rows: List[AblationRow] = []

    def measure(graph_, label):
        schedule = ListScheduler().schedule(graph_, cost)
        stats = engine.measure(graph_, schedule, resident, iterations=3)
        rows.append(AblationRow(variant=label, time=stats.mean))

    measure(dist, f"unfused ({count_collectives(dist)} collectives)")
    for mb in bucket_sizes_mb or [4, 32, 256]:
        fused = fuse_allreduces(dist, mb * 1024 * 1024)
        measure(fused, f"{mb}MB buckets ({count_collectives(fused)} "
                       f"collectives)")
    return rows


def render_ablation(rows: List[AblationRow]) -> str:
    """Plain-text table for a list of ablation rows."""
    headers = ["Variant", "Per-iteration (s)"]
    out = [[r.variant, "OOM" if r.oom else f"{r.time:.3f}"] for r in rows]
    return format_table(headers, out)
