"""Churn sweep: elastic vs replan-always vs ride on a changing fleet.

Where the fault sweep (:mod:`.resilience`) studies *degradation* —
crashes, slow NICs, stragglers — this sweep studies *capacity churn*:
spot arrivals and preemptions.  For every model family the same
deployment (searched once on the healthy base cluster) is trained under
each policy against the same seeded capacity-event schedule:

- **arrival** — a V100 server joins mid-run.  ``elastic`` prices the
  replan against the enlarged fleet's makespan lower bound and adopts
  the faster plan; ``ride`` keeps the original plan, so the makespan
  column reads off the value of chasing new capacity.
- **preempt** — a device receives a spot notice and dies two iterations
  later.  ``elastic`` drains inside the notice window (zero lost work,
  MTTR = restart overhead); ``replan`` waits for the crash and pays
  detection lag + search; ``ride`` stalls.

The default base cluster is deliberately *small and slow*
(:func:`elastic_base_cluster`: one 2x 1080Ti server), so arriving V100
capacity is genuinely worth replanning onto — mirroring the spot-market
setting where a job starts on whatever is cheap and upgrades when the
market grants more.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..agent import AgentConfig
from ..cluster.presets import cluster_2gpu
from ..cluster.topology import Cluster
from ..elastic import ChurnSchedule
from ..graph.models import build_model
from ..graph.models.registry import ALL_MODELS
from ..resilience import (
    FaultInjector,
    FaultSchedule,
    Replanner,
    ResilienceReport,
    ResilientTrainer,
)
from ..runtime.deployment import build_deployment
from ..runtime.execution_engine import ExecutionEngine
from .common import (
    ExperimentContext,
    bench_agent_config,
    env_episodes,
    env_preset,
    format_table,
)

#: which policies are worth comparing per scenario kind
SCENARIO_POLICIES: Dict[str, Tuple[str, ...]] = {
    "arrival": ("elastic", "replan", "ride"),
    "preempt": ("elastic", "replan", "ride"),
    "churn": ("elastic", "replan", "ride"),
}


@dataclass
class ChurnRow:
    """One (model, scenario, policy) cell of the churn sweep."""

    model: str
    scenario: str
    policy: str
    report: ResilienceReport
    wall_seconds: float

    @property
    def stalled(self) -> bool:
        return self.report.stalled

    @property
    def total_seconds(self) -> float:
        return self.report.total_seconds

    @property
    def replans(self) -> int:
        return sum(1 for r in self.report.recoveries
                   if r.action == "replan")

    @property
    def scale_ups(self) -> int:
        return sum(1 for r in self.report.recoveries
                   if r.action == "scale_up")

    @property
    def plan_cache_hits(self) -> int:
        return sum(r.plan_cache_hits for r in self.report.recoveries)

    @property
    def display_total(self) -> str:
        if self.stalled:
            return "stalled"
        return f"{self.total_seconds:.3f}"


def elastic_base_cluster() -> Cluster:
    """The churn sweep's starting fleet (see :func:`cluster_2gpu`)."""
    return cluster_2gpu()


def churn_scenarios(cluster: Cluster, *, at: int = 2, notice: int = 2,
                    ) -> List[Tuple[str, FaultSchedule]]:
    """The two canonical capacity-event scenarios on ``cluster``."""
    victim = cluster.device_ids[-1]
    return [
        ("arrival +2xV100",
         FaultSchedule.parse(f"server_join:v100@{at}x2")),
        (f"preempt {victim} (notice {notice})",
         FaultSchedule.parse(f"preempt:{victim}@{at + 1}x{notice}")),
    ]


def _scenario_kind(name: str) -> str:
    for kind in ("arrival", "preempt"):
        if name.startswith(kind):
            return kind
    return "churn"


def churn_sweep(cluster: Optional[Cluster] = None, *,
                models: Optional[Sequence[str]] = None,
                preset: Optional[str] = None,
                steps: int = 8, episodes: Optional[int] = None,
                replan_episodes: int = 4, seed: int = 0,
                agent_config: Optional[AgentConfig] = None,
                churn: Optional[ChurnSchedule] = None,
                policies: Optional[Sequence[str]] = None,
                scenarios: Optional[Sequence[Tuple[str, FaultSchedule]]]
                = None) -> List[ChurnRow]:
    """Run the elastic-vs-replan-vs-ride comparison under capacity churn.

    Per model the healthy deployment is searched once and shared by all
    (scenario, policy) runs; each run gets a fresh injector and an
    engine with the same seed, so pre-event iterations are pairwise
    identical.  One :class:`Replanner` per model serves every policy, so
    scale-ups and drains that reach the same fleet reuse its warmed
    session (the benchmark asserts the resulting plan-cache hits).

    Pass ``churn`` to replace the canonical two scenarios with a seeded
    Poisson :class:`~repro.elastic.ChurnSchedule` timeline.
    """
    if cluster is None:
        cluster = elastic_base_cluster()
    config = agent_config or bench_agent_config(seed)
    model_names = list(models) if models is not None else list(ALL_MODELS)
    if scenarios is None:
        if churn is not None:
            scenarios = [(
                f"churn(a={churn.arrival_rate:g},p={churn.preempt_rate:g})",
                churn.schedule(cluster))]
        else:
            scenarios = churn_scenarios(cluster)
    rows: List[ChurnRow] = []
    ctx = ExperimentContext(cluster, seed=seed)
    for model in model_names:
        # default scale is tiny: the sweep starts on a deliberately
        # small fleet that bench-scale NLP models do not fit on
        graph = build_model(model, preset or env_preset("tiny"))
        searched = ctx.run_heterog(
            graph, episodes=episodes if episodes is not None
            else env_episodes(8), agent_config=config)
        deployment = build_deployment(graph, cluster, searched.strategy,
                                      builder=ctx.builder(graph))
        replanner = Replanner(graph, cluster, agent_config=config,
                              episodes=replan_episodes, seed=seed)
        for name, schedule in scenarios:
            kind = _scenario_kind(name)
            for policy in (policies if policies is not None
                           else SCENARIO_POLICIES[kind]):
                injector = FaultInjector(cluster, schedule)
                engine = ExecutionEngine(cluster, seed=seed + 1,
                                         fault_injector=injector)
                trainer = ResilientTrainer(
                    deployment, injector, engine=engine,
                    replanner=replanner if policy != "ride" else None,
                    policy=policy,
                )
                start = time.time()
                report = trainer.run(steps)
                rows.append(ChurnRow(
                    model=model, scenario=name, policy=policy,
                    report=report,
                    wall_seconds=time.time() - start,
                ))
    return rows


def render_churn_sweep(rows: List[ChurnRow]) -> str:
    """Plain-text churn comparison table."""
    table: List[List[str]] = []
    for row in rows:
        report = row.report
        mttr = report.mttr
        table.append([
            row.model,
            row.scenario,
            row.policy,
            f"{report.completed_steps}/{report.steps}",
            f"{report.mean_iteration_time:.4f}",
            "-" if mttr != mttr else f"{mttr:.3f}",
            f"{report.lost_work:.3f}",
            str(row.replans),
            str(row.scale_ups),
            row.display_total,
        ])
    return format_table(
        ["Model", "Scenario", "Policy", "Steps", "Iter (s)", "MTTR (s)",
         "Lost (s)", "Replans", "ScaleUps", "Total (s)"],
        table,
    )

