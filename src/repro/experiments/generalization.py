"""Table 6: generalization of the GNN policy to unseen graphs.

Leave-one-out protocol, as in the paper (Sec. 6.5): train the policy on
the other graphs, then fine-tune on the held-out one and compare the
time needed to reach the best-known strategy quality against training
from scratch on the unseen graph alone.

Seed candidates are disabled here: this experiment isolates what the
*policy network* has learned, so both arms explore purely by sampling.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..agent import AgentConfig, HeteroGAgent
from ..cluster.topology import Cluster
from ..graph.models import build_model
from ..graph.models.registry import ALL_MODELS
from .common import env_preset, format_table


@dataclass
class GeneralizationRow:
    """One held-out model's scratch-vs-fine-tune comparison (Table 6)."""
    model: str
    scratch_episodes: int
    finetune_episodes: int
    scratch_seconds: float
    finetune_seconds: float
    target_time: float

    @property
    def episode_ratio(self) -> float:
        if self.scratch_episodes == 0:
            return float("nan")
        return self.finetune_episodes / self.scratch_episodes

    @property
    def time_ratio(self) -> float:
        if self.scratch_seconds == 0:
            return float("nan")
        return self.finetune_seconds / self.scratch_seconds


def _agent_config(seed: int) -> AgentConfig:
    return AgentConfig(
        max_groups=24, gat_hidden=32, gat_layers=2, gat_heads=2,
        strategy_dim=32, strategy_heads=2, strategy_layers=1,
        use_seeds=False, seed=seed,
    )


def _episodes_until(agent: HeteroGAgent, name: str, target: float,
                    max_episodes: int) -> int:
    """Train until the best simulated time reaches ``target``."""
    for episode in range(1, max_episodes + 1):
        agent.trainer.train_episode()
        if agent.trainer.best_time(name) <= target:
            return episode
    return max_episodes


def unseen_graph_table(cluster: Cluster, *,
                       preset: Optional[str] = None,
                       models: Optional[List[str]] = None,
                       pretrain_episodes: int = 40,
                       scratch_episodes: int = 60,
                       slack: float = 1.05,
                       seed: int = 0) -> List[GeneralizationRow]:
    """Generate Table 6 rows for ``cluster``.

    For each held-out model: (a) train a fresh policy from scratch on it
    and record episodes/wall-time until its best simulated time stops
    improving; (b) pretrain a policy on all other models, then fine-tune
    on the held-out one until it reaches the scratch run's best time
    (within ``slack``).
    """
    preset = preset or env_preset()
    models = models or ALL_MODELS
    rows: List[GeneralizationRow] = []
    for held_out in models:
        graph = build_model(held_out, preset)

        # (a) from scratch on the unseen graph only
        scratch = HeteroGAgent(cluster, _agent_config(seed))
        scratch.add_graph(graph, name=held_out)
        start = time.time()
        scratch.train(scratch_episodes)
        scratch_seconds = time.time() - start
        target = scratch.best_time(held_out) * slack
        reached = scratch.trainer.episodes_to_reach(held_out, target)
        scratch_eps = reached if reached is not None else scratch_episodes
        # wall-time until that episode (uniform per-episode cost estimate)
        scratch_time_to_target = scratch_seconds * scratch_eps / scratch_episodes

        # (b) pretrain on the other graphs, fine-tune on the held-out one
        pretrained = HeteroGAgent(cluster, _agent_config(seed + 1))
        for other in models:
            if other != held_out:
                pretrained.add_graph(build_model(other, preset), name=other)
        pretrained.train(pretrain_episodes)
        state = pretrained.policy_state()

        finetune = HeteroGAgent(cluster, _agent_config(seed + 2))
        finetune.add_graph(graph, name=held_out)
        finetune.load_policy_state(state)
        start = time.time()
        finetune_eps = _episodes_until(finetune, held_out, target,
                                       scratch_episodes)
        finetune_seconds = time.time() - start

        rows.append(GeneralizationRow(
            model=held_out,
            scratch_episodes=scratch_eps,
            finetune_episodes=finetune_eps,
            scratch_seconds=scratch_time_to_target,
            finetune_seconds=finetune_seconds,
            target_time=target,
        ))
    return rows


def render_generalization(rows: List[GeneralizationRow]) -> str:
    """Plain-text table for Table 6."""
    headers = ["Model", "Scratch eps", "Fine-tune eps", "Episode ratio",
               "Scratch (s)", "Fine-tune (s)"]
    out = [[r.model, str(r.scratch_episodes), str(r.finetune_episodes),
            f"{r.episode_ratio * 100:.1f}%", f"{r.scratch_seconds:.1f}",
            f"{r.finetune_seconds:.1f}"] for r in rows]
    return format_table(headers, out)
