"""The paper's reported numbers, for paper-vs-measured comparison output.

Times are seconds per iteration unless noted.  These are the values of
the published tables; EXPERIMENTS.md records how our measurements line
up against them (shape, not absolute seconds — see DESIGN.md).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

# Table 1: 8 GPUs — model -> (HeteroG, EV-PS, EV-AR, CP-PS, CP-AR)
TABLE1: Dict[str, Tuple[float, float, float, float, float]] = {
    "vgg19": (0.462, 0.907, 0.653, 0.853, 0.591),
    "resnet200": (0.693, 1.431, 0.955, 1.273, 0.897),
    "inception_v3": (0.528, 0.933, 0.701, 0.911, 0.659),
    "mobilenet_v2": (0.232, 0.413, 0.368, 0.394, 0.325),
    "nasnet": (0.862, 1.244, 1.028, 1.203, 1.116),
    "transformer": (0.298, 0.961, 0.496, 0.931, 0.361),
    "bert_large": (0.451, 0.612, 1.064, 0.795, 1.049),
    "xlnet_large": (0.851, 1.232, 1.551, 1.283, 1.566),
}

# Table 1 large-model rows: HeteroG time; every DP baseline OOMs.
TABLE1_LARGE: Dict[str, float] = {
    "ResNet200 (384)": 2.285,
    "Transformer (24 layers)(120)": 1.147,
    "Bert-large (24 layers)(96)": 2.241,
    "XlNet-large (24 layers)(96)": 4.254,
    "Bert-large (48 layers)(24)": 1.892,
    "XlNet-large (48 layers)(24)": 3.468,
}

# Table 4: 12 GPUs — model -> (HeteroG, EV-PS, EV-AR, CP-PS, CP-AR)
TABLE4: Dict[str, Tuple[float, float, float, float, float]] = {
    "vgg19": (0.503, 0.911, 0.682, 0.896, 0.633),
    "resnet200": (0.745, 1.522, 1.085, 1.298, 0.966),
    "inception_v3": (0.641, 0.987, 0.806, 0.954, 0.791),
    "mobilenet_v2": (0.255, 0.421, 0.411, 0.403, 0.337),
    "nasnet": (0.915, 1.385, 1.123, 1.275, 1.348),
    "transformer": (0.419, 1.133, 0.605, 1.112, 0.547),
    "bert_large": (0.538, 0.825, 1.234, 0.821, 1.218),
    "xlnet_large": (0.972, 1.447, 1.681, 1.485, 1.832),
}

# Table 5: end-to-end minutes — model -> {gpus: (HeteroG, CP-PS, CP-AR)}
TABLE5: Dict[str, Dict[int, Tuple[float, float, float]]] = {
    "vgg19": {8: (513.1, 930.2, 660.9), 12: (369.8, 667.1, 457.1)},
    "resnet200": {8: (633.1, 1137.1, 807.8), 12: (423.8, 726.7, 533.1)},
    "inception_v3": {8: (834.6, 1463.9, 1047.5), 12: (643.6, 980.8, 783.9)},
    "mobilenet_v2": {8: (221.4, 369.5, 319.5), 12: (169.8, 264.5, 229.7)},
    "nasnet": {8: (1191.3, 1683.3, 1537.9), 12: (863.9, 1179.2, 1134.3)},
}

# Table 6: GNN minutes to best strategy — model -> (scratch8, scratch12,
#                                                   pretrained8, pretrained12)
TABLE6: Dict[str, Tuple[float, float, float, float]] = {
    "vgg19": (82.5, 113.4, 21.2, 25.3),
    "resnet200": (174.7, 201.3, 27.3, 30.7),
    "inception_v3": (112.6, 141.5, 25.1, 29.4),
    "mobilenet_v2": (105.2, 144.6, 26.5, 29.8),
    "nasnet": (154.9, 191.4, 33.4, 40.7),
    "transformer": (143.2, 178.8, 36.9, 41.4),
    "bert_large": (196.1, 243.9, 45.1, 48.7),
    "xlnet_large": (211.7, 245.3, 41.4, 46.5),
}

# Table 7: per-iteration seconds — model -> (HeteroG order, FIFO)
TABLE7: Dict[str, Tuple[float, float]] = {
    "vgg19": (0.462, 0.512),
    "resnet200": (0.693, 0.761),
    "inception_v3": (0.528, 0.602),
    "mobilenet_v2": (0.232, 0.269),
    "nasnet": (0.862, 0.989),
    "transformer": (0.298, 0.322),
    "bert_large": (0.451, 0.514),
    "xlnet_large": (0.851, 1.005),
}

# Fig. 3(a): per-iteration seconds on 4 GPUs, even vs proportional
# whole-model replica allocation (read off the bar chart, ~±0.02).
FIG3A: Dict[str, Tuple[float, float]] = {
    "vgg19": (0.86, 0.72),
    "resnet200": (1.30, 1.10),
    "inception_v3": (0.98, 0.86),
    "mobilenet_v2": (0.48, 0.44),
    "transformer": (0.70, 0.55),
}

# Fig. 3(b): normalized op time on GTX 1080Ti (V100 = 1.0), approximate
# bar heights.
FIG3B: Dict[str, float] = {
    "Conv2D": 1.9,
    "MatMul": 1.7,
    "Conv1D": 1.3,
    "Conv2DBpFilter": 1.5,
    "Conv2DBpInput": 1.8,
}

# Fig. 8: (per-iteration, computation, communication) seconds.
FIG8: Dict[str, Dict[str, Tuple[float, float, float]]] = {
    "vgg19": {"CP-AR": (0.591, 0.40, 0.38), "HeteroG": (0.462, 0.35, 0.33)},
    "bert_large": {"CP-PS": (0.795, 0.47, 0.49),
                   "HeteroG": (0.451, 0.38, 0.32)},
}

# Fig. 9: training speed normalized to Horovod (bar heights, 12 GPUs).
FIG9: Dict[str, Dict[str, float]] = {
    "resnet200": {"HeteroG": 1.45, "HetPipe": 1.20, "FlexFlow": 1.12,
                  "Horovod": 1.0, "Post": 0.45},
    "inception_v3": {"HeteroG": 1.26, "HetPipe": 1.10, "FlexFlow": 1.08,
                     "Horovod": 1.0, "Post": 0.42},
    "transformer": {"HeteroG": 1.44, "HetPipe": 1.18, "FlexFlow": 1.15,
                    "Horovod": 1.0, "Post": 0.35},
    "bert_large": {"HeteroG": 1.74, "HetPipe": 1.31, "FlexFlow": 1.21,
                   "Horovod": 1.0, "Post": 0.40},
}


def speedup(baseline: float, heterog: float) -> Optional[float]:
    """The paper's speed-up definition: (baseline - heterog) / heterog."""
    if heterog <= 0:
        return None
    return (baseline - heterog) / heterog
