"""Parameter sweeps (optional analyses beyond the paper's figures).

- :func:`heterogeneity_sweep` — how much heterogeneity-aware deployment
  buys as the cluster's compute-power skew grows: the paper's premise is
  that uniform DP degrades as devices diverge (Sec. 1-2); this sweep
  quantifies it on synthetic clusters from homogeneous to strongly mixed.
- :func:`bandwidth_sweep` — per-iteration time of a fixed strategy as
  inter-server bandwidth varies (footnote 1's bandwidth sensitivity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..baselines.dp import dp_strategy
from ..cluster.device import GTX_1080TI, TESLA_V100, GPUSpec
from ..cluster.link import GBPS, NVLINK, PCIE3, LinkSpec
from ..cluster.topology import Cluster, ServerSpec
from ..graph.dag import ComputationGraph
from .common import ExperimentContext, env_episodes


def _skewed_cluster(skew: float, nic_gbps: float = 50.0) -> Cluster:
    """Two 2-GPU servers; the second server's GPUs are ``skew``x slower.

    skew = 1.0 is a homogeneous V100 cluster; skew = 2.0 matches the
    paper's V100:1080Ti ratio.
    """
    if skew < 1.0:
        raise ValueError(f"skew must be >= 1.0, got {skew}")
    slow = GPUSpec(
        model=f"V100/{skew:.2f}",
        memory_bytes=TESLA_V100.memory_bytes,
        peak_flops=TESLA_V100.peak_flops / skew,
        mem_bandwidth=TESLA_V100.mem_bandwidth / skew,
        kernel_overhead=TESLA_V100.kernel_overhead,
        class_efficiency=dict(TESLA_V100.class_efficiency),
    )
    nic = LinkSpec(f"{nic_gbps:.0f}GbE", nic_gbps * GBPS, 6e-6)
    return Cluster([
        ServerSpec("fast", TESLA_V100, 2, nic, intra_link=NVLINK),
        ServerSpec("slow", slow, 2, nic, intra_link=PCIE3),
    ])


@dataclass
class SweepPoint:
    """One sweep sample: x value -> per-scheme times."""
    x: float
    times: Dict[str, float]


def heterogeneity_sweep(graph_builder, *, skews: Optional[List[float]] = None,
                        episodes: Optional[int] = None,
                        seed: int = 0) -> List[SweepPoint]:
    """Measure EV-AR, CP-AR and HeteroG as device skew grows.

    ``graph_builder`` is a zero-argument callable returning a fresh
    training graph (graphs cannot be shared across clusters because the
    profiles differ).
    """
    points: List[SweepPoint] = []
    for skew in skews or [1.0, 1.5, 2.0, 3.0]:
        cluster = _skewed_cluster(skew)
        graph = graph_builder()
        ctx = ExperimentContext(cluster, seed=seed)
        times = {
            "EV-AR": ctx.measure(
                graph, dp_strategy("EV-AR", graph, cluster), "EV-AR",
                use_order_scheduling=False).time,
            "CP-AR": ctx.measure(
                graph, dp_strategy("CP-AR", graph, cluster), "CP-AR",
                use_order_scheduling=False).time,
            "HeteroG": ctx.run_heterog(
                graph, episodes=episodes or env_episodes()).time,
        }
        points.append(SweepPoint(x=skew, times=times))
    return points


def bandwidth_sweep(graph_builder, *, gbps: Optional[List[float]] = None,
                    baseline: str = "CP-AR",
                    seed: int = 0) -> List[SweepPoint]:
    """Per-iteration time of one DP strategy vs inter-server bandwidth."""
    points: List[SweepPoint] = []
    for bw in gbps or [10, 25, 50, 100]:
        cluster = _skewed_cluster(2.0, nic_gbps=bw)
        graph = graph_builder()
        ctx = ExperimentContext(cluster, seed=seed)
        measured = ctx.measure(
            graph, dp_strategy(baseline, graph, cluster), baseline,
            use_order_scheduling=False)
        points.append(SweepPoint(x=bw, times={baseline: measured.time}))
    return points
