"""Fault-sweep experiment: elastic replanning vs riding faults out.

For each fault scenario the same deployment (searched once on the
healthy cluster) is trained twice with the identical seeded engine and
fault schedule — once under the ``replan`` policy (detect, re-search on
the survivors, resume) and once under ``ride`` (keep the original plan;
a crash stalls the run).  The table reports completed steps, mean
iteration time, downtime/lost work and the resulting total makespan, so
the value of elastic replanning is read off a single column.  A
no-faults row pins the healthy baseline, and — because an empty
schedule installs no overlay at all — it is bit-identical to running
without the resilience subsystem.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..agent import AgentConfig
from ..cluster.topology import Cluster
from ..graph.dag import ComputationGraph
from ..graph.models import build_model
from ..resilience import (
    FaultInjector,
    FaultSchedule,
    Replanner,
    ResilienceReport,
    ResilientTrainer,
)
from ..runtime.deployment import build_deployment
from ..runtime.execution_engine import ExecutionEngine
from .common import (
    ExperimentContext,
    bench_agent_config,
    env_episodes,
    env_preset,
    format_table,
)


@dataclass
class FaultSweepRow:
    """One (scenario, policy) cell of the fault sweep."""

    scenario: str
    policy: str
    report: ResilienceReport
    wall_seconds: float

    @property
    def stalled(self) -> bool:
        return self.report.stalled

    @property
    def total_seconds(self) -> float:
        return self.report.total_seconds

    @property
    def replans(self) -> int:
        return sum(1 for r in self.report.recoveries
                   if r.action == "replan")

    @property
    def display_total(self) -> str:
        if self.stalled:
            return "stalled"
        return f"{self.total_seconds:.3f}"


def default_scenarios(cluster: Cluster, *, at: int = 3,
                      ) -> List[Tuple[str, FaultSchedule]]:
    """The three canonical single-fault scenarios on ``cluster``."""
    victim = cluster.device_ids[-1]       # crash the last-added GPU
    straggler = cluster.device_ids[0]
    server = cluster.server_names()[-1]   # degrade the last server's NIC
    return [
        ("(no faults)", FaultSchedule.empty()),
        (f"crash {victim}",
         FaultSchedule.parse(f"crash:{victim}@{at}")),
        (f"NIC {server} x0.4",
         FaultSchedule.parse(f"degrade:{server}@{at}x0.4")),
        (f"straggler {straggler} x2",
         FaultSchedule.parse(f"straggler:{straggler}@{at}x2.0")),
    ]


def fault_sweep(cluster: Cluster, *,
                graph: Optional[ComputationGraph] = None,
                model: str = "vgg19", preset: Optional[str] = None,
                steps: int = 8, episodes: Optional[int] = None,
                replan_episodes: int = 4, seed: int = 0,
                agent_config: Optional[AgentConfig] = None,
                scenarios: Optional[Sequence[Tuple[str, FaultSchedule]]]
                = None) -> List[FaultSweepRow]:
    """Run the replan-vs-ride comparison over the fault scenarios.

    The healthy deployment is searched once and shared by every run;
    each (scenario, policy) pair gets a fresh engine with the same seed
    so the pre-fault iterations are pairwise identical.  One
    :class:`Replanner` serves all replan runs, so scenarios that reach
    the same degraded cluster reuse its warmed search session.
    """
    if graph is None:
        graph = build_model(model, preset or env_preset())
    config = agent_config or bench_agent_config(seed)
    ctx = ExperimentContext(cluster, seed=seed)
    searched = ctx.run_heterog(
        graph, episodes=episodes if episodes is not None
        else env_episodes(8), agent_config=config)
    deployment = build_deployment(graph, cluster, searched.strategy,
                                  builder=ctx.builder(graph))
    replanner = Replanner(graph, cluster, agent_config=config,
                          episodes=replan_episodes, seed=seed)
    rows: List[FaultSweepRow] = []
    for name, schedule in (scenarios if scenarios is not None
                           else default_scenarios(cluster)):
        policies = ("replan", "ride") if not schedule.is_empty else ("-",)
        for policy in policies:
            injector = FaultInjector(cluster, schedule)
            engine = ExecutionEngine(cluster, seed=seed + 1,
                                     fault_injector=injector)
            trainer = ResilientTrainer(
                deployment, injector, engine=engine,
                replanner=replanner if policy == "replan" else None,
                policy=policy if policy != "-" else "ride",
            )
            start = time.time()
            report = trainer.run(steps)
            rows.append(FaultSweepRow(
                scenario=name, policy=policy, report=report,
                wall_seconds=time.time() - start,
            ))
    return rows


def render_fault_sweep(rows: List[FaultSweepRow]) -> str:
    """Plain-text replan-vs-ride comparison table."""
    table: List[List[str]] = []
    for row in rows:
        report = row.report
        mttr = report.mttr
        table.append([
            row.scenario,
            row.policy,
            f"{report.completed_steps}/{report.steps}",
            f"{report.mean_iteration_time:.4f}",
            "-" if mttr != mttr else f"{mttr:.3f}",
            f"{report.lost_work:.3f}",
            str(row.replans),
            row.display_total,
        ])
    return format_table(
        ["Scenario", "Policy", "Steps", "Iter (s)", "MTTR (s)",
         "Lost (s)", "Replans", "Total (s)"],
        table,
    )
