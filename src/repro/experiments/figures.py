"""Figure generators: Figs. 3(a), 3(b), 8 and 9 of the paper."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..baselines import (
    dp_strategy,
    flexflow_strategy,
    hetpipe_strategy,
    horovod_strategy,
    post_strategy,
)
from ..cluster.device import GTX_1080TI, TESLA_V100
from ..cluster.presets import cluster_4gpu, cluster_12gpu
from ..cluster.topology import Cluster
from ..graph.builder import GraphBuilder
from ..graph.models import build_model
from ..graph.op import Operation, TensorSpec
from ..profiling import cost_model
from .common import (
    ExperimentContext,
    MeasuredStrategy,
    env_episodes,
    env_iterations,
    env_preset,
    format_table,
)

# ---------------------------------------------------------------------- #
# Fig. 3(a): even vs proportional whole-model replica allocation (4 GPUs)
# ---------------------------------------------------------------------- #

FIG3A_MODELS = ["vgg19", "resnet200", "inception_v3", "mobilenet_v2",
                "transformer"]


@dataclass
class Fig3aPoint:
    """One model's even-vs-proportional measurement (Fig. 3a)."""
    model: str
    even: float
    proportional: float

    @property
    def speedup(self) -> float:
        return (self.even - self.proportional) / self.proportional


def fig3a_proportional_allocation(*, preset: Optional[str] = None,
                                  seed: int = 0,
                                  models: Optional[List[str]] = None
                                  ) -> List[Fig3aPoint]:
    """Even vs compute-power-proportional DP on 2x V100 + 2x 1080Ti.

    The paper's point: the speed-up is only ~9-27%, motivating per-op
    decisions instead of whole-model proportional replication.
    """
    preset = preset or env_preset()
    cluster = cluster_4gpu()
    ctx = ExperimentContext(cluster, seed=seed)
    points: List[Fig3aPoint] = []
    for model in models or FIG3A_MODELS:
        # 4 GPUs: halve the 8-GPU global batch (strong scaling)
        overrides = {"batch_size": 360 if model == "transformer" else 96}
        graph = build_model(model, preset, **overrides)
        even = ctx.measure(graph, dp_strategy("EV-AR", graph, cluster),
                           "even", use_order_scheduling=False)
        prop = ctx.measure(graph, dp_strategy("CP-AR", graph, cluster),
                           "proportional", use_order_scheduling=False)
        points.append(Fig3aPoint(model=model, even=even.time,
                                 proportional=prop.time))
    return points


def render_fig3a(points: List[Fig3aPoint]) -> str:
    """Plain-text table for Fig. 3(a)."""
    headers = ["Model", "Even alloc (s)", "Proportional alloc (s)",
               "Speed-up"]
    rows = [[p.model, f"{p.even:.3f}", f"{p.proportional:.3f}",
             f"{p.speedup * 100:.1f}%"] for p in points]
    return format_table(headers, rows)


# ---------------------------------------------------------------------- #
# Fig. 3(b): normalized per-op time, 1080Ti vs V100
# ---------------------------------------------------------------------- #

FIG3B_OPS = ["Conv2D", "MatMul", "Conv1D", "Conv2DBpFilter", "Conv2DBpInput"]


def _representative_ops(op_type: str, rng: np.random.Generator
                        ) -> List[Operation]:
    """Instances of one op type at several realistic input sizes."""
    ops: List[Operation] = []
    for i in range(6):
        batch = int(rng.choice([16, 32, 64]))
        if op_type.startswith("Conv2D"):
            size = int(rng.choice([14, 28, 56, 112]))
            channels = int(rng.choice([64, 128, 256, 512]))
            flops = 2.0 * batch * size * size * 9 * channels * channels
            spec = TensorSpec((batch, size, size, channels))
            param_bytes = 9 * channels * channels * 4
        elif op_type == "Conv1D":
            length = int(rng.choice([128, 256, 512]))
            channels = int(rng.choice([128, 256, 512]))
            flops = 2.0 * batch * length * 3 * channels * channels
            spec = TensorSpec((batch, length, channels))
            param_bytes = 3 * channels * channels * 4
        else:  # MatMul
            features = int(rng.choice([512, 1024, 2048, 4096]))
            units = int(rng.choice([512, 1024, 4096]))
            flops = 2.0 * batch * features * units
            spec = TensorSpec((batch, units))
            param_bytes = features * units * 4
        batch_scaled = True
        output = spec
        if op_type.endswith("BpFilter"):
            output = TensorSpec((param_bytes // 4,), batch_dim=None)
        ops.append(Operation(
            name=f"{op_type.lower()}_{i}", op_type=op_type, output=output,
            flops=flops, param_bytes=param_bytes, batch_scaled=batch_scaled,
        ))
    return ops


@dataclass
class Fig3bPoint:
    """Per-op-type normalized 1080Ti/V100 time ratios (Fig. 3b)."""
    op_type: str
    normalized_times: List[float]  # per sampled instance, 1080Ti / V100

    @property
    def mean(self) -> float:
        return float(np.mean(self.normalized_times))

    @property
    def spread(self) -> float:
        return float(np.max(self.normalized_times)
                     - np.min(self.normalized_times))


def fig3b_op_speedups(seed: int = 0) -> List[Fig3bPoint]:
    """Normalized execution times (V100 = 1.0) for representative ops."""
    rng = np.random.default_rng(seed)
    points: List[Fig3bPoint] = []
    for op_type in FIG3B_OPS:
        ratios = []
        for op in _representative_ops(op_type, rng):
            v100 = cost_model.op_time(op, TESLA_V100)
            gtx = cost_model.op_time(op, GTX_1080TI)
            ratios.append(gtx / v100)
        points.append(Fig3bPoint(op_type=op_type, normalized_times=ratios))
    return points


def render_fig3b(points: List[Fig3bPoint]) -> str:
    """Plain-text table for Fig. 3(b)."""
    headers = ["Op type", "Mean 1080Ti/V100", "Min", "Max"]
    rows = [[p.op_type, f"{p.mean:.2f}",
             f"{min(p.normalized_times):.2f}",
             f"{max(p.normalized_times):.2f}"] for p in points]
    return format_table(headers, rows)


# ---------------------------------------------------------------------- #
# Fig. 8: computation/communication time breakdown
# ---------------------------------------------------------------------- #

@dataclass
class Fig8Bar:
    """One (model, scheme) time-breakdown bar of Fig. 8."""
    model: str
    scheme: str
    per_iteration: float
    computation: float
    communication: float

    @property
    def overlap_ratio(self) -> float:
        return (self.computation + self.communication) / self.per_iteration


def fig8_time_breakdown(*, preset: Optional[str] = None,
                        episodes: Optional[int] = None,
                        seed: int = 0) -> List[Fig8Bar]:
    """VGG19 (vs CP-AR) and BERT-large (vs CP-PS) on 8 GPUs."""
    from ..cluster.presets import cluster_8gpu
    preset = preset or env_preset()
    cluster = cluster_8gpu()
    ctx = ExperimentContext(cluster, seed=seed)
    bars: List[Fig8Bar] = []
    for model, baseline in (("vgg19", "CP-AR"), ("bert_large", "CP-PS")):
        graph = build_model(model, preset)
        base = ctx.measure(graph, dp_strategy(baseline, graph, cluster),
                           baseline, use_order_scheduling=False)
        heterog = ctx.run_heterog(graph, episodes=episodes)
        for m, scheme in ((base, baseline), (heterog, "HeteroG")):
            bars.append(Fig8Bar(
                model=model, scheme=scheme, per_iteration=m.time,
                computation=m.extras.get("computation_time", 0.0),
                communication=m.extras.get("communication_time", 0.0),
            ))
    return bars


def render_fig8(bars: List[Fig8Bar]) -> str:
    """Plain-text table for Fig. 8."""
    headers = ["Model", "Scheme", "Per-iter (s)", "Computation (s)",
               "Communication (s)", "(comp+comm)/iter"]
    rows = [[b.model, b.scheme, f"{b.per_iteration:.3f}",
             f"{b.computation:.3f}", f"{b.communication:.3f}",
             f"{b.overlap_ratio:.2f}"] for b in bars]
    return format_table(headers, rows)


# ---------------------------------------------------------------------- #
# Fig. 9: comparison with existing schemes (12 GPUs)
# ---------------------------------------------------------------------- #

FIG9_MODELS = ["resnet200", "inception_v3", "transformer", "bert_large"]
FIG9_SCHEMES = ["HeteroG", "HetPipe", "FlexFlow", "Horovod", "Post"]


def _measure_hetpipe(ctx: ExperimentContext, graph, cluster
                     ) -> MeasuredStrategy:
    """HetPipe runs micro-batch pipelines inside each virtual worker and
    synchronizes with bounded staleness (WSP): gradient traffic overlaps
    subsequent iterations instead of gating this one.  Steady-state
    iteration time = max(pipelined compute makespan, background gradient
    traffic) — see repro.baselines.hetpipe."""
    from ..baselines.hetpipe import (
        hetpipe_iteration_time,
        hetpipe_strategy,
        strip_gradient_sync,
    )
    from ..errors import OutOfMemoryError
    from ..parallel.pipeline import pipeline_graph
    from ..runtime.execution_engine import ExecutionEngine
    from ..scheduling.list_scheduler import FifoScheduler

    strategy = hetpipe_strategy(graph, cluster)
    # compile-only plan-layer path: the pipeline transform reshapes the
    # dist graph before scheduling, so the cached build() is no use here
    dist, resident = ctx.builder(graph).compile(strategy)
    piped = pipeline_graph(dist, 8)
    compute_only, grad_bytes = strip_gradient_sync(piped)
    schedule = FifoScheduler(seed=ctx.seed).schedule(compute_only, None)
    engine = ExecutionEngine(cluster, seed=ctx.seed + 1)
    try:
        stats = engine.measure(compute_only, schedule,
                               resident,
                               iterations=env_iterations())
    except OutOfMemoryError:
        return MeasuredStrategy(label="HetPipe", time=float("inf"),
                                oom=True, strategy=strategy)
    time = hetpipe_iteration_time(stats.mean, grad_bytes, cluster)
    return MeasuredStrategy(label="HetPipe", time=time, strategy=strategy,
                            mix=strategy.strategy_mix())


@dataclass
class Fig9Bar:
    """One model's per-scheme training speeds (Fig. 9)."""
    model: str
    speeds: Dict[str, float]  # scheme -> samples/sec

    def normalized(self) -> Dict[str, float]:
        horovod = self.speeds.get("Horovod", 0.0)
        if horovod <= 0:
            return {k: 0.0 for k in self.speeds}
        return {k: v / horovod for k, v in self.speeds.items()}


def fig9_existing_schemes(*, preset: Optional[str] = None,
                          episodes: Optional[int] = None,
                          seed: int = 0,
                          models: Optional[List[str]] = None
                          ) -> List[Fig9Bar]:
    """Measure HeteroG vs HetPipe/FlexFlow/Horovod/Post on 12 GPUs."""
    preset = preset or env_preset()
    cluster = cluster_12gpu()
    ctx = ExperimentContext(cluster, seed=seed)
    bars: List[Fig9Bar] = []
    for model in models or FIG9_MODELS:
        batch = {"transformer": 1080, "bert_large": 72}.get(model, 288)
        graph = build_model(model, preset, batch_size=batch)
        profile = ctx.profile(graph)
        measured: Dict[str, MeasuredStrategy] = {}
        heterog = ctx.run_heterog(graph, episodes=episodes)
        measured["HeteroG"] = heterog
        measured["HetPipe"] = _measure_hetpipe(ctx, graph, cluster)
        measured["FlexFlow"] = ctx.measure(
            graph,
            flexflow_strategy(graph, cluster, profile,
                              iterations=max(80,
                                             3 * (episodes or env_episodes())),
                              seed=seed),
            "FlexFlow", use_order_scheduling=False)
        measured["Horovod"] = ctx.measure(
            graph, horovod_strategy(graph, cluster), "Horovod",
            use_order_scheduling=False)
        measured["Post"] = ctx.measure(
            graph, post_strategy(graph, cluster, profile, seed=seed),
            "Post", use_order_scheduling=False)
        speeds = {
            name: (0.0 if m.oom else batch / m.time)
            for name, m in measured.items()
        }
        bars.append(Fig9Bar(model=model, speeds=speeds))
    return bars


def render_fig9(bars: List[Fig9Bar]) -> str:
    """Plain-text table for Fig. 9 (speeds normalized to Horovod)."""
    headers = ["Model"] + [f"{s} (norm.)" for s in FIG9_SCHEMES]
    rows = []
    for bar in bars:
        norm = bar.normalized()
        rows.append([bar.model] + [f"{norm.get(s, 0.0):.2f}"
                                   for s in FIG9_SCHEMES])
    return format_table(headers, rows)
