"""Shared plumbing for the experiment harness (one module per table/figure).

Everything reported by the harness is measured on the ExecutionEngine
(the testbed stand-in); the Strategy Maker's simulator is only used for
search, mirroring the paper's methodology.  ``preset`` selects the model
scale: ``bench`` regenerates every table/figure in minutes on CPU,
``paper`` uses the faithful model depths (slower).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..agent import AgentConfig, HeteroGAgent
from ..cluster.topology import Cluster
from ..errors import OutOfMemoryError
from ..graph.dag import ComputationGraph
from ..graph.models import build_model
from ..parallel.strategy import Strategy
from ..plan import PlanBuilder
from ..profiling.profiler import Profile, Profiler
from ..runtime.deployment import build_deployment
from ..runtime.execution_engine import ExecutionEngine


def env_preset(default: str = "bench") -> str:
    """Model-scale preset from $REPRO_PRESET (default 'bench')."""
    return os.environ.get("REPRO_PRESET", default)


def env_episodes(default: int = 16) -> int:
    """RL episode budget from $REPRO_EPISODES."""
    return int(os.environ.get("REPRO_EPISODES", default))


def env_iterations(default: int = 4) -> int:
    """Measured engine iterations from $REPRO_ITERATIONS."""
    return int(os.environ.get("REPRO_ITERATIONS", default))


# Large-model rows of Tables 1/3 (model, build overrides) at 8 GPUs.
# Batch sizes follow the paper; the deep Transformer variants use the
# Transformer-big width (see DESIGN.md substitutions).
LARGE_MODEL_ROWS: List[Tuple[str, str, Dict[str, object]]] = [
    ("ResNet200 (384)", "resnet200", {"batch_size": 384}),
    # seq lengths of the two most activation-heavy rows are trimmed just
    # enough that a model-parallel deployment *can* exist (total pinned
    # activations below total cluster memory) while every DP baseline
    # still overflows its per-device budget by a wide margin
    ("Transformer (24 layers)(120)", "transformer",
     {"layers": 24, "batch_size": 120, "hidden": 1024, "ffn": 4096,
      "seq_len": 160}),
    ("Bert-large (24 layers)(96)", "bert_large", {"batch_size": 96}),
    ("XlNet-large (24 layers)(96)", "xlnet_large",
     {"batch_size": 96, "seq_len": 160}),
    ("Bert-large (48 layers)(24)", "bert_large",
     {"layers": 48, "batch_size": 24}),
    ("XlNet-large (48 layers)(24)", "xlnet_large",
     {"layers": 48, "batch_size": 24}),
]

# Standard row labels for the 8 small-model rows (batch in parentheses).
SMALL_MODEL_LABELS: Dict[str, str] = {
    "vgg19": "VGG-19",
    "resnet200": "ResNet200",
    "inception_v3": "Inception_v3",
    "mobilenet_v2": "MobileNet_v2",
    "nasnet": "NasNet",
    "transformer": "Transformer (6 layers)",
    "bert_large": "Bert-large (24 layers)",
    "xlnet_large": "XlNet-large (24 layers)",
}


def bench_agent_config(seed: int = 0) -> AgentConfig:
    """CPU-feasible GNN scale used by the benchmark harness."""
    return AgentConfig(
        max_groups=40, gat_hidden=32, gat_layers=2, gat_heads=2,
        strategy_dim=48, strategy_heads=2, strategy_layers=1,
        seed=seed,
    )


@dataclass
class MeasuredStrategy:
    """One strategy measured on the execution engine."""

    label: str
    time: float                  # mean per-iteration seconds ('inf' on OOM)
    oom: bool = False
    strategy: Optional[Strategy] = None
    mix: Dict[str, float] = field(default_factory=dict)
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def display_time(self) -> str:
        return "OOM" if self.oom else f"{self.time:.3f}"

    def speedup_over(self, other: "MeasuredStrategy") -> Optional[float]:
        """(other - self) / self, the paper's speed-up definition."""
        if self.oom or other.oom:
            return None
        return (other.time - self.time) / self.time


class ExperimentContext:
    """Caches profiles/plan-builders per (graph, cluster) across
    measurements, so sweeps that revisit a strategy reuse its plan."""

    def __init__(self, cluster: Cluster, seed: int = 0):
        self.cluster = cluster
        self.seed = seed
        self._profiles: Dict[str, Profile] = {}
        self._builders: Dict[Tuple[str, bool], PlanBuilder] = {}

    def profile(self, graph: ComputationGraph) -> Profile:
        if graph.name not in self._profiles:
            self._profiles[graph.name] = Profiler(seed=self.seed).profile(
                graph, self.cluster
            )
        return self._profiles[graph.name]

    def builder(self, graph: ComputationGraph, *,
                use_order_scheduling: bool = True) -> PlanBuilder:
        """Shared PlanBuilder for (graph, order flag) on this cluster."""
        key = (graph.name, use_order_scheduling)
        if key not in self._builders:
            self._builders[key] = PlanBuilder(
                graph, self.cluster, self.profile(graph),
                use_order_scheduling=use_order_scheduling,
            )
        return self._builders[key]

    def measure(self, graph: ComputationGraph, strategy: Strategy,
                label: str, *, use_order_scheduling: bool = True,
                iterations: Optional[int] = None) -> MeasuredStrategy:
        """Deploy + run a strategy on the engine; OOM becomes a row value."""
        deployment = build_deployment(
            graph, self.cluster, strategy,
            builder=self.builder(
                graph, use_order_scheduling=use_order_scheduling
            ),
        )
        engine = ExecutionEngine(self.cluster, seed=self.seed + 1)
        try:
            stats = engine.measure(
                deployment.dist, deployment.schedule,
                deployment.resident_bytes,
                iterations=iterations or env_iterations(),
            )
        except OutOfMemoryError:
            return MeasuredStrategy(label=label, time=float("inf"), oom=True,
                                    strategy=strategy,
                                    mix=strategy.strategy_mix())
        last = stats.last_result
        extras = {}
        if last is not None:
            extras = {
                "computation_time": last.computation_time,
                "communication_time": last.communication_time,
                "overlap_ratio": last.overlap_ratio,
            }
        return MeasuredStrategy(label=label, time=stats.mean,
                                strategy=strategy,
                                mix=strategy.strategy_mix(), extras=extras)

    def run_heterog(self, graph: ComputationGraph, *,
                    episodes: Optional[int] = None,
                    agent_config: Optional[AgentConfig] = None,
                    use_order_scheduling: bool = True,
                    iterations: Optional[int] = None) -> MeasuredStrategy:
        """Full HeteroG pipeline: search on the simulator, measure on the
        engine."""
        config = agent_config or bench_agent_config(self.seed)
        agent = HeteroGAgent(self.cluster, config)
        agent.add_graph(graph, self.profile(graph))
        start = time.time()
        agent.train(episodes if episodes is not None else env_episodes())
        search_seconds = time.time() - start
        strategy = agent.best_strategy(graph.name)
        agent.trainer.close()  # release eval workers, if any
        measured = self.measure(
            graph, strategy, "HeteroG",
            use_order_scheduling=use_order_scheduling,
            iterations=iterations,
        )
        measured.extras["search_seconds"] = search_seconds
        measured.extras["simulated_time"] = agent.best_time(graph.name)
        return measured


def build_row_model(model: str, preset: str, overrides: Dict[str, object]
                    ) -> ComputationGraph:
    """Build a registry model with per-row overrides."""
    return build_model(model, preset, **overrides)


def format_table(headers: List[str], rows: List[List[str]]) -> str:
    """Plain-text table used by every harness module's report."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in rows)
    return "\n".join(lines)
