"""The HeteroG facade: Graph Analyzer -> Strategy Maker -> Graph Compiler.

Ties the whole pipeline of Fig. 4 together for one (graph, cluster)
pair.  Since the planning-service redesign the facade is a thin client
of an inline :class:`~repro.service.PlanningService` (``workers=0`` —
everything runs synchronously on the caller's thread): ``plan`` and
``deploy`` assemble typed :class:`~repro.service.PlanRequest` objects
and let the service's warm per-(graph, cluster, config) contexts do the
profiling, search, compilation and scheduling.  Repeated calls on the
same facade therefore hit the service's plan and result caches instead
of re-driving the pipeline.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from . import telemetry
from .cluster.topology import Cluster
from .config import HeteroGConfig
from .graph.analyzer import GraphAnalysis, GraphAnalyzer
from .graph.dag import ComputationGraph
from .parallel.strategy import Strategy
from .profiling.profiler import Profile
from .resilience import (
    FaultInjector,
    FaultSchedule,
    Replanner,
    ResilientTrainer,
)
from .runtime.deployment import Deployment
from .runtime.execution_engine import ExecutionEngine
from .runtime.runner import DistributedRunner
from .service import PlanningService, PlanRequest, PlanResult


class HeteroG:
    """One strategy-search session for a single DNN graph."""

    def __init__(self, cluster: Cluster,
                 config: Optional[HeteroGConfig] = None,
                 service: Optional[PlanningService] = None):
        self.cluster = cluster
        self.config = config or HeteroGConfig()
        # inline service: deterministic, serial, same caches as `serve`
        self.service = service if service is not None \
            else PlanningService(workers=0, name="heterog")
        self._analysis: Optional[GraphAnalysis] = None

    # ------------------------------------------------------------------ #
    def analyze(self, graph: ComputationGraph) -> GraphAnalysis:
        """Run the Graph Analyzer (Sec. 3.2)."""
        with telemetry.span("pipeline.analyze", graph=graph.name):
            self._analysis = GraphAnalyzer().analyze(graph)
        return self._analysis

    def profile(self, graph: ComputationGraph) -> Profile:
        """Run the Profiler (Sec. 3.3) on the service's warm context."""
        return self.service.context_for(self._request(graph)).profile

    # ------------------------------------------------------------------ #
    def _request(self, graph: ComputationGraph,
                 strategy: Optional[Strategy] = None,
                 profile: Optional[Profile] = None,
                 episodes: Optional[int] = None) -> PlanRequest:
        return PlanRequest(
            graph=graph,
            cluster=self.cluster,
            strategy=strategy,
            profile=profile,
            episodes=episodes if episodes is not None
            else self.config.episodes,
            use_order_scheduling=self.config.use_order_scheduling,
            config=self.config,
            label="heterog",
        )

    def plan_result(self, graph: ComputationGraph,
                    strategy: Optional[Strategy] = None,
                    profile: Optional[Profile] = None,
                    episodes: Optional[int] = None) -> PlanResult:
        """Route one typed request through the planning service."""
        return self.service.plan(
            self._request(graph, strategy, profile, episodes))

    def plan(self, graph: ComputationGraph,
             profile: Optional[Profile] = None,
             episodes: Optional[int] = None) -> Strategy:
        """Search for the best deployment strategy for ``graph``."""
        self.analyze(graph)
        return self.plan_result(graph, profile=profile,
                                episodes=episodes).strategy

    def deploy(self, graph: ComputationGraph,
               strategy: Optional[Strategy] = None,
               profile: Optional[Profile] = None) -> Deployment:
        """Compile + schedule a strategy (searching one if not given)."""
        result = self.plan_result(graph, strategy=strategy, profile=profile)
        assert result.deployment is not None  # searches raise when infeasible
        return result.deployment

    def runner(self, deployment: Deployment) -> DistributedRunner:
        engine = ExecutionEngine(
            self.cluster,
            jitter_sigma=self.config.engine_jitter_sigma,
            seed=self.config.seed + 1,
        )
        return DistributedRunner(deployment, engine)

    def resilient_runner(self, deployment: Deployment,
                         schedule: FaultSchedule, *,
                         policy: str = "replan",
                         episodes: int = 6) -> ResilientTrainer:
        """A fault-injected training loop around ``deployment``.

        The engine runs on the *original* cluster (the testbed does not
        shrink — the injector's overlay makes faults visible); the
        replanner searches on the *degraded* cluster derived from the
        active faults.  ``policy="ride"`` keeps the original plan and
        stalls on crashes — the baseline the fault-sweep compares with.
        ``policy="elastic"`` additionally reacts to capacity events
        (joins, spot preempt notices, reclaims): priced scale-up
        replans and pre-deadline drains.
        """
        injector = FaultInjector(self.cluster, schedule)
        engine = ExecutionEngine(
            self.cluster,
            jitter_sigma=self.config.engine_jitter_sigma,
            seed=self.config.seed + 1,
            fault_injector=injector,
        )
        replanner = None
        if policy in ("replan", "elastic"):
            agent_config = dataclasses.replace(
                self.config.agent,
                use_order_scheduling=self.config.use_order_scheduling,
                seed=self.config.seed,
            )
            replanner = Replanner(
                deployment.graph, self.cluster,
                agent_config=agent_config, episodes=episodes,
                seed=self.config.seed,
                service=self.service,
            )
        return ResilientTrainer(deployment, injector, engine=engine,
                                replanner=replanner, policy=policy)
