"""The HeteroG facade: Graph Analyzer -> Strategy Maker -> Graph Compiler.

Ties the whole pipeline of Fig. 4 together for one (graph, cluster)
pair: profile, build the agent, run the strategy search, compile the
best strategy, schedule it, and hand back a runnable deployment.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from . import telemetry
from .agent.agent import HeteroGAgent
from .cluster.topology import Cluster
from .config import HeteroGConfig
from .graph.analyzer import GraphAnalysis, GraphAnalyzer
from .graph.dag import ComputationGraph
from .parallel.strategy import Strategy
from .profiling.measurements import MeasurementNoise
from .profiling.profiler import Profile, Profiler
from .resilience import (
    FaultInjector,
    FaultSchedule,
    Replanner,
    ResilientTrainer,
)
from .runtime.deployment import Deployment, make_deployment
from .runtime.execution_engine import ExecutionEngine
from .runtime.runner import DistributedRunner


class HeteroG:
    """One strategy-search session for a single DNN graph."""

    def __init__(self, cluster: Cluster,
                 config: Optional[HeteroGConfig] = None):
        self.cluster = cluster
        self.config = config or HeteroGConfig()
        agent_config = dataclasses.replace(
            self.config.agent,
            use_order_scheduling=self.config.use_order_scheduling,
            seed=self.config.seed,
        )
        self.agent = HeteroGAgent(cluster, agent_config)
        self._analysis: Optional[GraphAnalysis] = None

    # ------------------------------------------------------------------ #
    def analyze(self, graph: ComputationGraph) -> GraphAnalysis:
        """Run the Graph Analyzer (Sec. 3.2)."""
        with telemetry.span("pipeline.analyze", graph=graph.name):
            self._analysis = GraphAnalyzer().analyze(graph)
        return self._analysis

    def profile(self, graph: ComputationGraph) -> Profile:
        """Run the Profiler (Sec. 3.3)."""
        with telemetry.span("pipeline.profile", graph=graph.name):
            return Profiler(
                noise=MeasurementNoise(self.config.profile_noise_sigma),
                seed=self.config.seed,
            ).profile(graph, self.cluster)

    # ------------------------------------------------------------------ #
    def plan(self, graph: ComputationGraph,
             profile: Optional[Profile] = None,
             episodes: Optional[int] = None) -> Strategy:
        """Search for the best deployment strategy for ``graph``."""
        self.analyze(graph)
        if profile is None:
            profile = self.profile(graph)
        with telemetry.span("pipeline.group", graph=graph.name):
            ctx = self.agent.add_graph(graph, profile)
        with telemetry.span("pipeline.search", graph=graph.name):
            self.agent.train(episodes if episodes is not None
                             else self.config.episodes)
            return self.agent.best_strategy(ctx.name)

    def deploy(self, graph: ComputationGraph,
               strategy: Optional[Strategy] = None,
               profile: Optional[Profile] = None) -> Deployment:
        """Compile + schedule a strategy (searching one if not given)."""
        if strategy is None:
            strategy = self.plan(graph, profile)
            profile = self.agent.profile(graph.name)
        if profile is None:
            profile = self.profile(graph)
        ctx = self.agent.try_context(graph.name)
        ctx_groups = ctx.grouping.group_of if ctx is not None else None
        # when deploying under the search's own profile, reuse the
        # evaluator's PlanBuilder: the winning strategy's plan is usually
        # already in its cache, so deploy costs a dictionary lookup
        builder = None
        if ctx is not None and profile is self.agent.profile(graph.name):
            builder = ctx.evaluator.builder
        with telemetry.span("pipeline.schedule", graph=graph.name):
            return make_deployment(
                graph, self.cluster, strategy, profile=profile,
                use_order_scheduling=self.config.use_order_scheduling,
                group_of=ctx_groups,
                builder=builder,
            )

    def runner(self, deployment: Deployment) -> DistributedRunner:
        engine = ExecutionEngine(
            self.cluster,
            jitter_sigma=self.config.engine_jitter_sigma,
            seed=self.config.seed + 1,
        )
        return DistributedRunner(deployment, engine)

    def resilient_runner(self, deployment: Deployment,
                         schedule: FaultSchedule, *,
                         policy: str = "replan",
                         episodes: int = 6) -> ResilientTrainer:
        """A fault-injected training loop around ``deployment``.

        The engine runs on the *original* cluster (the testbed does not
        shrink — the injector's overlay makes faults visible); the
        replanner searches on the *degraded* cluster derived from the
        active faults.  ``policy="ride"`` keeps the original plan and
        stalls on crashes — the baseline the fault-sweep compares with.
        """
        injector = FaultInjector(self.cluster, schedule)
        engine = ExecutionEngine(
            self.cluster,
            jitter_sigma=self.config.engine_jitter_sigma,
            seed=self.config.seed + 1,
            fault_injector=injector,
        )
        replanner = None
        if policy == "replan":
            agent_config = dataclasses.replace(
                self.config.agent,
                use_order_scheduling=self.config.use_order_scheduling,
                seed=self.config.seed,
            )
            replanner = Replanner(
                deployment.graph, self.cluster,
                agent_config=agent_config, episodes=episodes,
                seed=self.config.seed,
            )
        return ResilientTrainer(deployment, injector, engine=engine,
                                replanner=replanner, policy=policy)
