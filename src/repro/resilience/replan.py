"""Elastic replanning: re-run strategy search on the surviving cluster.

The :class:`Replanner` owns one *search session* per degraded-cluster
state: a profile of the graph on that cluster, a
:class:`~repro.agent.HeteroGAgent` whose evaluator wraps a warm
:class:`~repro.plan.PlanBuilder`, and the best strategy found so far.
Sessions are keyed by the cluster's content fingerprint, so replanning
twice into the same degraded state (crash -> replan -> NIC degrade ->
replan, then the NIC recovers... or a sweep revisiting a scenario)
reuses the whole warmed session — policy weights, plan cache and
outcome cache included.  Within a single search the usual plan-layer
caching applies: repeated candidate strategies hit the outcome cache,
and the winning strategy's final build is a plan-cache hit (asserted by
the acceptance tests through the ``plan_cache_hits_total`` counters).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

from .. import telemetry
from ..agent.agent import AgentConfig, HeteroGAgent
from ..cluster.topology import Cluster
from ..errors import ReproError
from ..graph.dag import ComputationGraph
from ..plan import EvalOutcome, PlanBuilder
from ..plan.fingerprint import _cluster_payload, _digest
from ..profiling.profiler import Profiler
from ..runtime.deployment import Deployment, deployment_from_plan


@dataclass
class RecoveryPlan:
    """Outcome of one replan: a runnable deployment on the survivors."""

    deployment: Deployment
    cluster: Cluster
    outcome: EvalOutcome         # simulated (profile-predicted) outcome
    search_seconds: float        # wall-clock spent searching
    plan_cache_hits: int
    outcome_cache_hits: int
    reused_session: bool         # True when the degraded state was seen
    episodes: int

    @property
    def feasible(self) -> bool:
        return self.outcome.feasible


class _Session:
    """One warmed search session for a specific degraded cluster."""

    def __init__(self, graph: ComputationGraph, cluster: Cluster,
                 config: AgentConfig, seed: int):
        self.cluster = cluster
        self.profile = Profiler(seed=seed).profile(graph, cluster)
        self.agent = HeteroGAgent(cluster, config)
        self.context = self.agent.add_graph(graph, self.profile)
        self.uses = 0

    @property
    def builder(self) -> PlanBuilder:
        return self.context.evaluator.builder


class Replanner:
    """Searches replacement deployments when the cluster degrades."""

    def __init__(self, graph: ComputationGraph, base_cluster: Cluster, *,
                 agent_config: Optional[AgentConfig] = None,
                 episodes: int = 6, max_rounds: int = 3, seed: int = 0):
        if episodes < 1:
            raise ReproError(f"episodes must be >= 1, got {episodes}")
        self.graph = graph
        self.base_cluster = base_cluster
        self.agent_config = agent_config
        self.episodes = episodes
        self.max_rounds = max_rounds
        self.seed = seed
        self._sessions: Dict[str, _Session] = {}

    # ---------------------------------------------------------------- #
    def session_for(self, cluster: Cluster) -> _Session:
        """The (possibly warmed) search session for a degraded cluster."""
        key = _digest(_cluster_payload(cluster))
        session = self._sessions.get(key)
        if session is None:
            config = self.agent_config or AgentConfig(seed=self.seed)
            session = _Session(self.graph, cluster, config, self.seed)
            self._sessions[key] = session
        return session

    def replan(self, cluster: Cluster, *,
               episodes: Optional[int] = None) -> RecoveryPlan:
        """Search a feasible deployment on ``cluster`` (the survivors).

        Runs up to ``max_rounds`` batches of ``episodes`` RL episodes
        until the best strategy is feasible (no OOM, compiles); raises
        :class:`ReproError` if none is found — the cluster may simply be
        too small for the model.
        """
        budget = episodes if episodes is not None else self.episodes
        session = self.session_for(cluster)
        reused = session.uses > 0
        session.uses += 1
        builder = session.builder
        start = time.time()
        outcome: Optional[EvalOutcome] = None
        ran = 0
        with telemetry.span("resilience.replan", graph=self.graph.name,
                            devices=cluster.num_devices):
            for _ in range(self.max_rounds):
                session.agent.train(budget)
                ran += budget
                strategy = session.agent.trainer.best_strategy(
                    self.graph.name)
                if strategy is None:
                    continue
                outcome = builder.evaluate(strategy)
                if outcome.feasible:
                    break
            if outcome is None or not outcome.feasible:
                raise ReproError(
                    f"replan found no feasible strategy for "
                    f"{self.graph.name!r} on {cluster} after {ran} episodes")
            plan = builder.build(strategy)  # plan-cache hit: built above
        elapsed = time.time() - start
        tel = telemetry.active()
        if tel is not None:
            tel.registry.counter(
                "resilience_replans_total",
                help="replacement-plan searches completed",
            ).inc()
            tel.registry.histogram(
                "resilience_replan_seconds",
                help="wall-clock spent searching replacement plans",
            ).observe(elapsed)
        return RecoveryPlan(
            deployment=deployment_from_plan(plan),
            cluster=cluster,
            outcome=outcome,
            search_seconds=elapsed,
            plan_cache_hits=builder.plan_cache.hits,
            outcome_cache_hits=builder.outcome_cache.hits,
            reused_session=reused,
            episodes=ran,
        )
