"""Elastic replanning: re-run strategy search on the surviving cluster.

The :class:`Replanner` is a client of the planning service: every
replan is one typed :class:`~repro.service.PlanRequest` (a strategy
*search* on the degraded cluster) submitted to an inline
:class:`~repro.service.PlanningService`.  The service keys its warm
contexts by (graph, cluster, config) content fingerprint, so replanning
twice into the same degraded state (crash -> replan -> NIC degrade ->
replan, then the NIC recovers... or a sweep revisiting a scenario)
reuses the whole warmed session — policy weights, plan cache and
outcome cache included — and an *identical* replan request is answered
straight from the service's result cache.  Within a single search the
usual plan-layer caching applies: repeated candidate strategies hit the
outcome cache, and the winning strategy's final build is a plan-cache
hit (asserted by the acceptance tests through the
``plan_cache_hits_total`` counters).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from .. import telemetry
from ..agent.agent import AgentConfig
from ..cluster.topology import Cluster
from ..config import HeteroGConfig
from ..errors import ReproError
from ..graph.dag import ComputationGraph
from ..plan import EvalOutcome
from ..runtime.deployment import Deployment
from ..service import PlanningService, PlanRequest


@dataclass
class RecoveryPlan:
    """Outcome of one replan: a runnable deployment on the survivors."""

    deployment: Deployment
    cluster: Cluster
    outcome: EvalOutcome         # simulated (profile-predicted) outcome
    search_seconds: float        # wall-clock spent searching
    plan_cache_hits: int
    outcome_cache_hits: int
    reused_session: bool         # True when the degraded state was seen
    episodes: int
    request_id: str = ""         # correlation id of the serving request

    @property
    def feasible(self) -> bool:
        return self.outcome.feasible


class Replanner:
    """Searches replacement deployments when the cluster degrades."""

    def __init__(self, graph: ComputationGraph, base_cluster: Cluster, *,
                 agent_config: Optional[AgentConfig] = None,
                 episodes: int = 6, max_rounds: int = 3, seed: int = 0,
                 service: Optional[PlanningService] = None,
                 prune: bool = True):
        if episodes < 1:
            raise ReproError(f"episodes must be >= 1, got {episodes}")
        self.graph = graph
        self.base_cluster = base_cluster
        self.agent_config = agent_config or AgentConfig(seed=seed)
        self.episodes = episodes
        self.max_rounds = max_rounds
        self.seed = seed
        self.prune = prune
        self.service = service if service is not None \
            else PlanningService(workers=0, name="replanner")
        self._config = HeteroGConfig(seed=seed, agent=self.agent_config)

    # ---------------------------------------------------------------- #
    def _request(self, cluster: Cluster,
                 episodes: Optional[int]) -> PlanRequest:
        return PlanRequest(
            graph=self.graph,
            cluster=cluster,
            episodes=episodes if episodes is not None else self.episodes,
            max_rounds=self.max_rounds,
            use_order_scheduling=self.agent_config.use_order_scheduling,
            config=self._config,
            label="replan",
            prune=self.prune,
        )

    def replan(self, cluster: Cluster, *,
               episodes: Optional[int] = None) -> RecoveryPlan:
        """Search a feasible deployment on ``cluster`` (the survivors).

        Runs up to ``max_rounds`` batches of ``episodes`` RL episodes
        until the best strategy is feasible (no OOM, compiles); raises
        :class:`ReproError` if none is found — the cluster may simply be
        too small for the model.
        """
        start = time.time()
        with telemetry.span("resilience.replan", graph=self.graph.name,
                            devices=cluster.num_devices):
            result = self.service.plan(self._request(cluster, episodes))
        elapsed = time.time() - start
        tel = telemetry.active()
        if tel is not None:
            tel.registry.counter(
                "resilience_replans_total",
                help="replacement-plan searches completed",
            ).inc()
            tel.registry.histogram(
                "resilience_replan_seconds",
                help="wall-clock spent searching replacement plans",
            ).observe(elapsed)
        assert result.deployment is not None  # searches raise when infeasible
        return RecoveryPlan(
            deployment=result.deployment,
            cluster=cluster,
            outcome=result.outcome,
            search_seconds=elapsed,
            plan_cache_hits=result.plan_cache_hits,
            outcome_cache_hits=result.outcome_cache_hits,
            reused_session=result.reused_context or result.from_cache,
            episodes=result.episodes,
            request_id=result.request_id,
        )
