"""The resilient training loop: inject -> detect -> replan -> resume.

:class:`ResilientTrainer` drives an :class:`ExecutionEngine` whose cost
model a :class:`FaultInjector` is mutating, watches every iteration
with a :class:`FailureDetector`, and on detection either *replans*
(recovery onto the surviving devices through a :class:`Replanner`) or
*rides it out* (keeps the original plan at degraded speed — the
baseline the fault-sweep experiment compares against).  A crash cannot
be ridden out: the run stalls.

The third policy, ``elastic``, additionally reacts to *capacity*
events (``join`` / ``server_join`` / ``preempt`` / ``reclaim``):

- on **arrival**, an :class:`~repro.elastic.ElasticPolicy` prices the
  replan — expected savings from the enlarged fleet's makespan lower
  bound versus restart overhead + estimated search cost — and only
  replans when it pays; the search runs concurrently with training
  (the old plan keeps stepping), so a scale-up costs only the restart
  overhead and is booked as ``action="scale_up"``, keeping MTTR a pure
  failure-recovery statistic;
- on a **preempt notice**, it drains: replan *before* the deadline onto
  the fleet minus every noticed device, so the synthesized crash hits a
  device nothing runs on — zero lost work, downtime = restart overhead.

``replan`` adopts arrivals unconditionally and ignores notices (it
recovers from the eventual crash like any other failure); ``ride``
ignores capacity events entirely.

Recovery accounting follows the usual MTTR / lost-work decomposition:

- **lost work** — simulated time of iterations whose results were
  thrown away (the iteration in flight when the fault struck, replayed
  after recovery; mirrors re-running from the last checkpoint);
- **downtime (MTTR)** — detection lag (the failed iteration had to run
  before the fault was noticed: one healthy-mean iteration) plus the
  replanning wall-clock (strategy search is real CPU work the cluster
  sits idle through) plus a fixed ``restart_overhead`` for process
  respawn and weight re-shard.

Both are exported through the telemetry registry
(``resilience_mttr_seconds``, ``resilience_lost_work_seconds_total``)
and reported on the :class:`ResilienceReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .. import telemetry
from ..errors import DeviceLostError, OutOfMemoryError, ReproError
from ..runtime.deployment import Deployment
from ..runtime.execution_engine import ExecutionEngine
from ..runtime.trainer_loop import DetectionEvent, FailureDetector
from ..telemetry.context import request_scope
from ..telemetry.flight import FlightRecorder, default_recorder
from ..telemetry.journal import new_request_id
from ..elastic.policy import ElasticPolicy
from .faults import FaultEvent, FaultInjector, FaultKind
from .replan import Replanner

POLICIES = ("replan", "ride", "elastic")

_ARRIVAL_KINDS = (FaultKind.DEVICE_JOIN, FaultKind.SERVER_JOIN,
                  FaultKind.RECLAIM)


@dataclass
class RecoveryRecord:
    """One detected fault (or capacity event) and the controller's move."""

    iteration: int
    cause: str                   # e.g. "device_lost:gpu3"
    action: str                  # "replan" | "ride" | "stall" | "scale_up"
    downtime_seconds: float = 0.0
    lost_work_seconds: float = 0.0
    search_seconds: float = 0.0
    plan_cache_hits: int = 0
    devices_after: int = 0
    trigger: str = "failure"     # "failure" | "arrival" | "preempt_notice"


@dataclass
class ResilienceReport:
    """What a resilient run hands back."""

    steps: int
    policy: str
    iteration_times: List[float] = field(default_factory=list)
    faults: List[FaultEvent] = field(default_factory=list)
    detections: List[DetectionEvent] = field(default_factory=list)
    recoveries: List[RecoveryRecord] = field(default_factory=list)
    stalled: bool = False
    completed_steps: int = 0

    @property
    def total_downtime(self) -> float:
        return sum(r.downtime_seconds for r in self.recoveries)

    @property
    def lost_work(self) -> float:
        return sum(r.lost_work_seconds for r in self.recoveries)

    @property
    def mttr(self) -> float:
        """Mean time to recovery over the run's replans (NaN if none)."""
        repaired = [r.downtime_seconds for r in self.recoveries
                    if r.action == "replan"]
        if not repaired:
            return float("nan")
        return float(np.mean(repaired))

    @property
    def mean_iteration_time(self) -> float:
        if not self.iteration_times:
            return float("nan")
        return float(np.mean(self.iteration_times))

    @property
    def total_seconds(self) -> float:
        """Training makespan: iteration time + downtime + lost work."""
        if self.stalled:
            return float("inf")
        return (float(np.sum(self.iteration_times)) + self.total_downtime
                + self.lost_work)

    def summary(self) -> str:
        lines = [
            f"resilient run ({self.policy}): "
            f"{self.completed_steps}/{self.steps} steps"
            + (" [STALLED]" if self.stalled else ""),
            f"  faults injected : "
            f"{', '.join(e.label for e in self.faults) or '(none)'}",
            "  detections      : " + (", ".join(
                f"{d.kind}:{d.resource}" for d in self.detections)
                or "(none)"),
        ]
        for r in self.recoveries:
            lines.append(
                f"  recovery @{r.iteration}: {r.cause} -> {r.action} "
                f"(downtime {r.downtime_seconds:.3f}s, "
                f"lost work {r.lost_work_seconds:.3f}s, "
                f"{r.devices_after} devices)")
        if self.iteration_times:
            lines.append(
                f"  mean iteration  : {self.mean_iteration_time:.4f} s")
        if not self.stalled:
            lines.append(
                f"  total time      : {self.total_seconds:.3f} s "
                f"(downtime {self.total_downtime:.3f} s, "
                f"lost work {self.lost_work:.3f} s)")
        return "\n".join(lines)


class ResilientTrainer:
    """Runs training iterations that survive a changing cluster."""

    def __init__(self, deployment: Deployment, injector: FaultInjector, *,
                 engine: Optional[ExecutionEngine] = None,
                 replanner: Optional[Replanner] = None,
                 detector: Optional[FailureDetector] = None,
                 policy: str = "replan",
                 restart_overhead: float = 0.0,
                 max_recoveries: int = 8,
                 recorder: Optional[FlightRecorder] = None,
                 elastic_policy: Optional[ElasticPolicy] = None):
        if policy not in POLICIES:
            raise ReproError(
                f"unknown policy {policy!r}; expected one of {POLICIES}")
        self.deployment = deployment
        self.injector = injector
        self.engine = engine if engine is not None else ExecutionEngine(
            deployment.cluster, fault_injector=injector)
        if self.engine.fault_injector is None:
            self.engine.fault_injector = injector
            injector.bind(self.engine)
        self.replanner = replanner
        self.detector = detector if detector is not None \
            else FailureDetector()
        self.policy = policy
        self.restart_overhead = restart_overhead
        self.max_recoveries = max_recoveries
        self.recorder = recorder if recorder is not None \
            else default_recorder()
        self.elastic_policy = elastic_policy if elastic_policy is not None \
            else ElasticPolicy(restart_overhead=restart_overhead)
        self.episode_id = ""         # assigned per run()
        self._healthy_mean: Optional[float] = None

    # ---------------------------------------------------------------- #
    def run(self, steps: int) -> ResilienceReport:
        if steps <= 0:
            raise ReproError(f"steps must be positive, got {steps}")
        report = ResilienceReport(steps=steps, policy=self.policy)
        # each run is one correlated resilience episode: the detector's
        # fault_detected events, every replan's service request (linked
        # through parent_id) and the resume all land in one flight record
        self.episode_id = new_request_id("ep")
        self.recorder.begin(self.episode_id, label="resilience",
                            graph=self.deployment.graph.name)
        self.recorder.emit(self.episode_id, "episode_started",
                           policy=self.policy, steps=steps,
                           graph=self.deployment.graph.name)
        with request_scope(self.episode_id, self.recorder):
            with telemetry.span("resilience.run", steps=steps,
                                policy=self.policy):
                for i in range(steps):
                    fired = self.injector.advance(i)
                    report.faults.extend(fired)
                    capacity = [e for e in fired if e.is_capacity]
                    if capacity:
                        self._handle_capacity(i, capacity, steps, report)
                    if not self._step(i, report):
                        report.stalled = True
                        break
                    report.completed_steps += 1
        if report.stalled:
            self.recorder.emit(self.episode_id, "failed",
                               error="stalled",
                               completed_steps=report.completed_steps)
            self.recorder.finish(self.episode_id, "failed")
        else:
            self.recorder.emit(self.episode_id, "completed",
                               seconds=report.total_seconds,
                               completed_steps=report.completed_steps)
            self.recorder.finish(self.episode_id, "completed")
        self._export(report)
        return report

    # ---------------------------------------------------------------- #
    def _step(self, i: int, report: ResilienceReport) -> bool:
        """One training iteration with recovery; False means stalled."""
        attempts = 0
        while True:
            try:
                result = self.engine.run_iteration(
                    self.deployment.dist, self.deployment.schedule,
                    self.deployment.resident_bytes)
            except (DeviceLostError, OutOfMemoryError) as exc:
                attempts += 1
                event = self.detector.observe_error(i, exc)
                report.detections.append(event)
                if attempts > self.max_recoveries:
                    raise ReproError(
                        f"gave up after {self.max_recoveries} recovery "
                        f"attempts at iteration {i}: {exc}") from exc
                if not self._recover(i, event, report):
                    return False
                continue
            soft = self.detector.observe(i, result)
            report.detections.extend(soft)
            report.iteration_times.append(result.makespan)
            self._track_healthy(result.makespan, soft)
            if soft and self.policy == "replan":
                # degraded-but-running: replan once for the batch of
                # detections, keep this iteration's (slow) result
                self._recover(i, soft[0], report)
            return True

    def _track_healthy(self, makespan: float,
                       soft: List[DetectionEvent]) -> None:
        if soft or self.injector.any_active:
            # do not learn a "healthy" baseline from a faulted iteration,
            # but seed one if we never saw a healthy sample at all
            if self._healthy_mean is None:
                self._healthy_mean = makespan
            return
        prev = self._healthy_mean
        self._healthy_mean = makespan if prev is None \
            else 0.7 * prev + 0.3 * makespan

    # ---------------------------------------------------------------- #
    def _handle_capacity(self, i: int, events: List[FaultEvent],
                         steps: int, report: ResilienceReport) -> None:
        """React to fleet changes fired this iteration (policy-dependent)."""
        fleet = self.injector.physical_cluster()
        for ev in events:
            if ev.kind is FaultKind.PREEMPT:
                deadline = self.injector.preempt_pending.get(
                    ev.target, i + ev.count)
                self.recorder.emit(self.episode_id, "preempt_notice",
                                   target=ev.target, deadline=deadline)
            elif ev.kind is FaultKind.RECLAIM:
                self.recorder.emit(self.episode_id, "device_reclaimed",
                                   target=ev.target,
                                   devices=fleet.num_devices)
            else:
                self.recorder.emit(self.episode_id, "device_joined",
                                   target=ev.target,
                                   devices=fleet.num_devices)
        tel = telemetry.active()
        if tel is not None:
            tel.registry.gauge(
                "elastic_fleet_devices",
                help="physical fleet size after the latest capacity event",
            ).set(fleet.num_devices)
        if self.policy == "ride" or self.replanner is None:
            return
        notices = [e for e in events if e.kind is FaultKind.PREEMPT]
        arrivals = [e for e in events if e.kind in _ARRIVAL_KINDS]
        if notices and self.policy == "elastic":
            self._drain(i, notices, report)
        if arrivals:
            self._scale_up(i, arrivals, steps, report)

    def _usable_cluster(self):
        """Joins applied, failures removed — the replan target.

        Only the elastic policy acts on advance notice, so only it
        subtracts preempt-pending devices; ``replan`` keeps placing on
        them until they actually die.
        """
        cluster = self.injector.current_cluster()
        if self.policy == "elastic":
            doomed = set(self.injector.preempt_pending) \
                & set(cluster.device_ids)
            if doomed:
                cluster = cluster.without_devices(doomed)
        return cluster

    def _drain(self, i: int, notices: List[FaultEvent],
               report: ResilienceReport) -> None:
        """Replan off dying devices *before* their deadline (elastic)."""
        targets = sorted(e.target for e in notices)
        if not (set(targets) & set(self.deployment.cluster.device_ids)):
            return                # nothing running on the dying devices
        cluster = self._usable_cluster()
        cause = "preempt_notice:" + "+".join(targets)
        self.recorder.emit(self.episode_id, "replan_started",
                           devices=cluster.num_devices, cause=cause,
                           iteration=i)
        with telemetry.span("resilience.drain", iteration=i, cause=cause):
            recovery = self.replanner.replan(cluster)
        self.recorder.emit(self.episode_id, "replan_completed",
                           seconds=recovery.search_seconds,
                           feasible=recovery.feasible,
                           request_id_of_replan=recovery.request_id)
        self.elastic_policy.observe_search(recovery.search_seconds)
        # the search ran inside the notice window, concurrent with
        # training: only the restart is paid, and nothing is lost
        self.deployment = recovery.deployment
        self.detector.reset()
        self._maybe_rebuild_engine()
        report.recoveries.append(RecoveryRecord(
            iteration=i, cause=cause, action="replan",
            trigger="preempt_notice",
            downtime_seconds=self.restart_overhead,
            search_seconds=recovery.search_seconds,
            plan_cache_hits=recovery.plan_cache_hits,
            devices_after=recovery.cluster.num_devices,
        ))
        self.recorder.emit(self.episode_id, "resumed", iteration=i,
                           devices=recovery.cluster.num_devices)

    def _scale_up(self, i: int, arrivals: List[FaultEvent], steps: int,
                  report: ResilienceReport) -> None:
        """Price new capacity; replan onto it only when it pays."""
        cluster = self._usable_cluster()
        if set(cluster.device_ids) \
                <= set(self.deployment.cluster.device_ids):
            return                # arrivals already folded in (or doomed)
        cause = "arrival:" + "+".join(sorted(e.target for e in arrivals))
        tel = telemetry.active()
        if self.policy == "elastic":
            decision = self.elastic_policy.decide(
                self.deployment, cluster,
                healthy_mean=self._healthy_mean,
                remaining_steps=steps - i)
            if not decision.replan:
                self.recorder.emit(
                    self.episode_id, "scale_up_skipped",
                    expected_savings=decision.expected_savings,
                    replan_cost=decision.replan_cost,
                    reason=decision.reason)
                if tel is not None:
                    tel.registry.counter(
                        "elastic_scale_ups_skipped_total",
                        help="arrivals where replanning did not pay",
                    ).inc()
                return
        else:
            decision = None       # replan policy adopts unconditionally
        with telemetry.span("resilience.scale_up", iteration=i,
                            cause=cause):
            recovery = self.replanner.replan(cluster)
        self.elastic_policy.observe_search(recovery.search_seconds)
        adopted = recovery.deployment
        adopted_time = recovery.outcome.time
        if self.policy == "elastic":
            fast_path = self._fast_path_candidate(cluster)
            if fast_path is not None and fast_path[1] < adopted_time:
                adopted, adopted_time = fast_path
        predicted = self._predicted_makespan()
        if self.policy == "elastic" and not self.elastic_policy.\
                should_adopt(predicted, adopted_time):
            self.recorder.emit(
                self.episode_id, "scale_up_skipped",
                expected_savings=0.0,
                replan_cost=recovery.search_seconds,
                reason="searched plan not faster than incumbent")
            if tel is not None:
                tel.registry.counter(
                    "elastic_scale_ups_skipped_total",
                    help="arrivals where replanning did not pay",
                ).inc()
            return
        # the search ran concurrently with training on the old plan:
        # adoption costs one restart, no work is thrown away
        self.deployment = adopted
        self.detector.reset()
        self._maybe_rebuild_engine()
        report.recoveries.append(RecoveryRecord(
            iteration=i, cause=cause, action="scale_up",
            trigger="arrival",
            downtime_seconds=self.restart_overhead,
            search_seconds=recovery.search_seconds,
            plan_cache_hits=recovery.plan_cache_hits,
            devices_after=recovery.cluster.num_devices,
        ))
        self.recorder.emit(
            self.episode_id, "scale_up_replan",
            devices=recovery.cluster.num_devices,
            expected_savings=decision.expected_savings
            if decision is not None else 0.0,
            replan_cost=decision.replan_cost
            if decision is not None else recovery.search_seconds)
        if tel is not None:
            tel.registry.counter(
                "elastic_scale_up_replans_total",
                help="arrivals adopted via a priced replan",
            ).inc()

    def _predicted_makespan(self) -> float:
        plan = self.deployment.plan
        if plan is not None and plan.sim_result is not None:
            return plan.sim_result.makespan
        return float("nan")

    def _fast_path_candidate(self, cluster):
        """The no-search arrival plan: all ops on the fastest new device.

        A latency-bound graph often beats any multi-device plan by
        simply moving whole onto the fastest arriving GPU — a candidate
        the episodic search rarely samples.  Costs one plan build (one
        simulation), deterministic; returns ``(deployment, predicted)``
        or None when the candidate is infeasible or no device is new.
        """
        from ..parallel.strategy import single_device_strategy
        from ..plan import PlanBuilder
        from ..runtime.deployment import build_deployment

        new_ids = set(cluster.device_ids) \
            - set(self.deployment.cluster.device_ids)
        if not new_ids:
            return None
        fastest = max((cluster.device(d) for d in sorted(new_ids)),
                      key=lambda d: d.compute_power)
        try:
            builder = PlanBuilder(self.deployment.graph, cluster)
            plan = builder.build(single_device_strategy(
                self.deployment.graph, cluster,
                device=fastest.device_id))
        except ReproError:
            return None
        result = plan.sim_result
        if result is None or result.oom_devices:
            return None
        return build_deployment(plan), result.makespan

    def _maybe_rebuild_engine(self) -> None:
        """Grow the engine when the adopted plan uses devices it lacks.

        The rebuilt engine models the *physical* fleet (failures stay
        visible through the injector's overlay) and continues the old
        engine's RNG stream, so jitter draws are unaffected by when the
        rebuild happens.
        """
        if set(self.deployment.cluster.device_ids) \
                <= set(self.engine.cluster.device_ids):
            return
        old = self.engine
        self.engine = ExecutionEngine(
            self.injector.physical_cluster(),
            jitter_sigma=old.cost.jitter_sigma,
            interserver_discount=old.cost.interserver_discount,
            rng=old.rng,
            fault_injector=self.injector,
        )

    # ---------------------------------------------------------------- #
    def _recover(self, i: int, event: DetectionEvent,
                 report: ResilienceReport) -> bool:
        """Handle one detection; False means the run cannot continue."""
        cause = f"{event.kind}:{event.resource}"
        if self.policy == "ride" or self.replanner is None:
            if event.is_hard:
                # a dead device cannot be ridden out
                report.recoveries.append(RecoveryRecord(
                    iteration=i, cause=cause, action="stall",
                    devices_after=self.deployment.cluster.num_devices,
                ))
                return False
            report.recoveries.append(RecoveryRecord(
                iteration=i, cause=cause, action="ride",
                devices_after=self.deployment.cluster.num_devices,
            ))
            return True

    # replan / elastic policy: re-search on what is usable right now
        detection_lag = self._healthy_mean or 0.0
        degraded = self._usable_cluster()
        self.recorder.emit(self.episode_id, "replan_started",
                           devices=degraded.num_devices, cause=cause,
                           iteration=i)
        with telemetry.span("resilience.recover", iteration=i, cause=cause):
            recovery = self.replanner.replan(degraded)
        self.recorder.emit(self.episode_id, "replan_completed",
                           seconds=recovery.search_seconds,
                           feasible=recovery.feasible,
                           request_id_of_replan=recovery.request_id)
        self.elastic_policy.observe_search(recovery.search_seconds)
        self.deployment = recovery.deployment
        self.detector.reset()
        self._maybe_rebuild_engine()
        lost = detection_lag if event.is_hard else 0.0
        downtime = detection_lag + recovery.search_seconds \
            + self.restart_overhead
        report.recoveries.append(RecoveryRecord(
            iteration=i, cause=cause, action="replan",
            downtime_seconds=downtime, lost_work_seconds=lost,
            search_seconds=recovery.search_seconds,
            plan_cache_hits=recovery.plan_cache_hits,
            devices_after=recovery.cluster.num_devices,
        ))
        self.recorder.emit(self.episode_id, "resumed", iteration=i,
                           devices=recovery.cluster.num_devices)
        return True

    # ---------------------------------------------------------------- #
    @staticmethod
    def _export(report: ResilienceReport) -> None:
        tel = telemetry.active()
        if tel is None:
            return
        reg = tel.registry
        mttr = report.mttr
        if mttr == mttr:  # not NaN
            reg.gauge(
                "resilience_mttr_seconds",
                help="mean time to recovery over the run's replans",
            ).set(mttr)
        reg.counter(
            "resilience_lost_work_seconds_total",
            help="simulated work discarded due to faults",
        ).inc(report.lost_work)
        reg.counter(
            "resilience_downtime_seconds_total",
            help="simulated downtime spent detecting and replanning",
        ).inc(report.total_downtime)
        reg.gauge(
            "resilience_completed_steps",
            help="training steps completed by the last resilient run",
        ).set(report.completed_steps)
        if report.stalled:
            reg.counter(
                "resilience_stalls_total",
                help="runs that could not continue (ride policy + crash)",
            ).inc()
