"""Deterministic fault injection for the ground-truth execution engine.

A :class:`FaultSchedule` is a seeded, fully deterministic list of
:class:`FaultEvent`\\ s keyed by iteration number; the
:class:`FaultInjector` binds one to an :class:`ExecutionEngine` and
applies the active faults to its :class:`TruthCostModel` through the
overlay hooks:

- ``crash`` — ops touching the device raise :class:`DeviceLostError`;
- ``degrade`` — links through the device/server lose bandwidth;
- ``straggler`` — the device's compute durations are multiplied.

The vocabulary also covers *capacity* events, which change the fleet
itself rather than the cost overlay (the elastic subsystem reacts to
these; a policy that ignores them simply keeps its current plan):

- ``join`` — fresh GPUs appear on an existing server;
- ``server_join`` — a whole new server joins the fleet;
- ``preempt`` — a spot-style crash with an advance-notice window (the
  device dies ``factor`` iterations after the notice fires);
- ``reclaim`` — a previously crashed/preempted device comes back.

With an empty schedule the injector installs no overlay at all, so the
engine's timeline is bit-identical to a run without any injector —
paired (faults on/off) experiments are sound by construction.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

import numpy as np

from .. import telemetry
from ..cluster.device import GPU_ALIASES, resolve_gpu
from ..cluster.link import NIC_50G, PCIE3
from ..cluster.topology import Cluster, ServerSpec
from ..errors import ReproError


class FaultKind(enum.Enum):
    """What goes wrong — or what capacity shows up."""

    DEVICE_CRASH = "crash"          # GPU disappears (XID error, host dies)
    LINK_DEGRADE = "degrade"        # NIC/link drops to a fraction of BW
    STRAGGLER = "straggler"         # device persistently slows down
    DEVICE_JOIN = "join"            # GPUs appear on an existing server
    SERVER_JOIN = "server_join"     # a whole new server joins the fleet
    PREEMPT = "preempt"             # spot notice: crash after a window
    RECLAIM = "reclaim"             # a downed device comes back


#: the original degradation kinds — the default pool for
#: :meth:`FaultSchedule.random` (kept at three so seeded schedules from
#: before the capacity vocabulary are byte-identical)
FAULT_KINDS = (FaultKind.DEVICE_CRASH, FaultKind.LINK_DEGRADE,
               FaultKind.STRAGGLER)

#: events that change the fleet rather than degrade it
CAPACITY_KINDS = frozenset({FaultKind.DEVICE_JOIN, FaultKind.SERVER_JOIN,
                            FaultKind.PREEMPT, FaultKind.RECLAIM})


@dataclass(frozen=True)
class FaultEvent:
    """One fault striking at the start of ``iteration``.

    ``target`` is a device id (crash/straggler/preempt/reclaim), a
    server name (degrade: the server's NIC; join: the hosting server) or
    a GPU model alias (server_join, e.g. ``v100``).  ``factor`` is the
    bandwidth multiplier in (0, 1) for ``degrade``, the slowdown
    multiplier > 1 for ``straggler``, the GPU count for ``join`` /
    ``server_join`` and the advance-notice window in iterations for
    ``preempt``; crashes and reclaims ignore it.
    """

    iteration: int
    kind: FaultKind
    target: str
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.iteration < 0:
            raise ReproError(f"fault iteration must be >= 0: {self}")
        if self.kind is FaultKind.LINK_DEGRADE and not 0 < self.factor < 1:
            raise ReproError(
                f"degrade factor must be in (0, 1), got {self.factor}")
        if self.kind is FaultKind.STRAGGLER and self.factor <= 1:
            raise ReproError(
                f"straggler factor must be > 1, got {self.factor}")
        if self.kind in (FaultKind.DEVICE_JOIN, FaultKind.SERVER_JOIN,
                         FaultKind.PREEMPT):
            what = ("GPU count" if self.kind is not FaultKind.PREEMPT
                    else "notice window")
            if self.factor < 1 or self.factor != int(self.factor):
                raise ReproError(
                    f"{self.kind.value} factor is a {what}: needs a "
                    f"whole number >= 1, got {self.factor}")

    @property
    def is_capacity(self) -> bool:
        """True for events that change the fleet (join/preempt/reclaim)."""
        return self.kind in CAPACITY_KINDS

    @property
    def count(self) -> int:
        """The factor as a whole number (join counts, notice windows)."""
        return int(self.factor)

    @property
    def label(self) -> str:
        if self.kind in (FaultKind.DEVICE_CRASH, FaultKind.RECLAIM):
            return f"{self.kind.value}:{self.target}@{self.iteration}"
        return (f"{self.kind.value}:{self.target}@{self.iteration}"
                f"x{self.factor:g}")


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, iteration-ordered fault timeline."""

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "events",
            tuple(sorted(self.events, key=lambda e: e.iteration)),
        )

    @property
    def is_empty(self) -> bool:
        return not self.events

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __str__(self) -> str:
        """The comma-separated spec form; ``parse(str(s))`` round-trips."""
        return ",".join(e.label for e in self.events)

    # ---------------------------------------------------------------- #
    @staticmethod
    def empty() -> "FaultSchedule":
        return FaultSchedule(())

    @staticmethod
    def parse(spec: str) -> "FaultSchedule":
        """Parse ``kind:target@iteration[xfactor]`` items, comma-separated.

        Examples: ``crash:gpu3@5``, ``degrade:server1@8x0.5``,
        ``straggler:gpu2@3x1.7``, ``join:server1@4x2``,
        ``server_join:v100@6x2``, ``preempt:gpu3@5x2``,
        ``reclaim:gpu3@9``.

        Two events for the same ``target@iteration`` are rejected: the
        injector would apply them in spec order, silently making the
        schedule order-sensitive, so the collision is an error instead.
        """
        events: List[FaultEvent] = []
        specs_at: Dict[Tuple[str, int], List[str]] = {}
        for raw in spec.split(","):
            item = raw.strip()
            if not item:
                continue
            try:
                kind_s, rest = item.split(":", 1)
                target, when = rest.rsplit("@", 1)
                if "x" in when:
                    when_s, factor_s = when.split("x", 1)
                    factor = float(factor_s)
                else:
                    when_s, factor = when, 1.0
                kind = FaultKind(kind_s.strip().lower())
                events.append(FaultEvent(int(when_s), kind, target.strip(),
                                         factor))
            except (ValueError, KeyError) as exc:
                raise ReproError(
                    f"bad fault spec {item!r} (want kind:target@iter[xF], "
                    f"e.g. crash:gpu3@5 or degrade:server1@8x0.5): {exc}"
                ) from None
            specs_at.setdefault(
                (events[-1].target, events[-1].iteration), []).append(item)
        colliding = [items for items in specs_at.values() if len(items) > 1]
        if colliding:
            listed = "; ".join(" vs ".join(items) for items in colliding)
            raise ReproError(
                f"duplicate fault events for the same target@iteration: "
                f"{listed}")
        return FaultSchedule(tuple(events))

    @staticmethod
    def random(cluster: Cluster, *, seed: int, events: int = 2,
               horizon: int = 16,
               kinds: Optional[List[FaultKind]] = None) -> "FaultSchedule":
        """A deterministic seeded schedule over ``cluster``'s resources.

        Never crashes/preempts more than ``num_devices - 1`` GPUs, so a
        replan on the survivors is always possible.  ``kinds`` defaults
        to the three degradation kinds (:data:`FAULT_KINDS`) — pass
        capacity kinds explicitly (or use
        :class:`~repro.elastic.ChurnSchedule` for rate-driven churn) to
        generate arrivals and preemptions.
        """
        rng = np.random.default_rng(seed)
        kinds = list(kinds) if kinds else list(FAULT_KINDS)
        device_ids = cluster.device_ids
        servers = cluster.server_names()
        crashes_left = len(device_ids) - 1
        crashed: List[str] = []
        down_at: Dict[str, int] = {}  # device -> iteration it goes dark
        taken: set = set()            # (target, iteration) pairs used
        out: List[FaultEvent] = []

        def emit(iteration: int, kind: FaultKind, target: str,
                 factor: float = 1.0) -> bool:
            if (target, iteration) in taken:
                return False          # skip colliding draws, stay valid
            taken.add((target, iteration))
            out.append(FaultEvent(iteration, kind, target, factor))
            return True

        for _ in range(events):
            kind = kinds[int(rng.integers(len(kinds)))]
            iteration = int(rng.integers(1, max(2, horizon)))
            if kind is FaultKind.RECLAIM and not crashed:
                kind = FaultKind.DEVICE_JOIN \
                    if FaultKind.DEVICE_JOIN in kinds else FaultKind.STRAGGLER
            if kind in (FaultKind.DEVICE_CRASH, FaultKind.PREEMPT):
                alive = [d for d in device_ids if d not in crashed]
                if crashes_left <= 0 or len(alive) <= 1:
                    kind = FaultKind.STRAGGLER
                else:
                    target = alive[int(rng.integers(len(alive)))]
                    notice = (float(rng.integers(1, 4))
                              if kind is FaultKind.PREEMPT else 1.0)
                    if emit(iteration, kind, target, notice):
                        crashed.append(target)
                        crashes_left -= 1
                        down_at[target] = iteration + (
                            int(notice) if kind is FaultKind.PREEMPT else 0)
                    continue
            if kind is FaultKind.LINK_DEGRADE:
                target = servers[int(rng.integers(len(servers)))]
                factor = float(rng.uniform(0.3, 0.7))
                emit(iteration, kind, target, factor)
            elif kind is FaultKind.DEVICE_JOIN:
                target = servers[int(rng.integers(len(servers)))]
                emit(iteration, kind, target, float(rng.integers(1, 3)))
            elif kind is FaultKind.SERVER_JOIN:
                aliases = sorted(GPU_ALIASES)
                target = aliases[int(rng.integers(len(aliases)))]
                emit(iteration, kind, target, float(rng.integers(1, 3)))
            elif kind is FaultKind.RECLAIM:
                target = crashed[int(rng.integers(len(crashed)))]
                # a device can only come back after it actually went dark
                if emit(max(iteration, down_at[target] + 1), kind, target):
                    crashed.remove(target)
                    crashes_left += 1
            else:  # straggler
                target = device_ids[int(rng.integers(len(device_ids)))]
                factor = float(rng.uniform(1.5, 3.0))
                emit(iteration, kind, target, factor)
        return FaultSchedule(tuple(out))


@dataclass(frozen=True)
class FaultOverlay:
    """The active-fault view a :class:`TruthCostModel` prices under."""

    failed_devices: FrozenSet[str] = frozenset()
    compute_scale: Mapping[str, float] = field(default_factory=dict)
    link_scale: Mapping[Tuple[str, str], float] = field(default_factory=dict)

    @property
    def empty(self) -> bool:
        return (not self.failed_devices and not self.compute_scale
                and not self.link_scale)


class FaultInjector:
    """Applies a :class:`FaultSchedule` to execution-engine cost models.

    The controller calls :meth:`advance` at the top of every training
    iteration; events whose iteration has arrived become *active* and
    are pushed to every attached cost model as one merged overlay.
    Faults are persistent (a crashed GPU stays dead, a straggler stays
    slow) — recovery happens by *replanning around* them, not by the
    fault clearing.
    """

    def __init__(self, cluster: Cluster, schedule: FaultSchedule,
                 rng: Optional[np.random.Generator] = None):
        self.cluster = cluster
        self.schedule = schedule
        self.rng = rng  # shared engine stream once bound
        self._next = 0  # index of the first not-yet-fired event
        self._cost_models: List[object] = []
        self.failed_devices: set = set()
        self.compute_scale: Dict[str, float] = {}
        self._degrades: List[FaultEvent] = []
        self._link_scale: Dict[Tuple[str, str], float] = {}
        # the physical fleet: base cluster plus every activated join
        # (it only ever grows — failures live in the overlay, so a
        # reclaimed device is un-failed, never re-created)
        self._fleet: Cluster = cluster
        self._preempt_deadlines: Dict[str, int] = {}
        self._validate(schedule)

    def _validate(self, schedule: FaultSchedule) -> None:
        """Fail at construction on a typo'd target, not mid-run."""
        device_ids = set(self.cluster.device_ids)
        servers = set(self.cluster.server_names())
        future_dev = re.compile(r"gpu\d+$")
        for event in schedule:
            kind, target = event.kind, event.target
            if kind is FaultKind.LINK_DEGRADE:
                if target not in device_ids and target not in servers:
                    raise ReproError(
                        f"fault targets unknown resource {target!r} "
                        f"(known: {sorted(device_ids | servers)})")
            elif kind is FaultKind.DEVICE_JOIN:
                if target not in servers:
                    raise ReproError(
                        f"join needs an existing server, got {target!r} "
                        f"(known: {sorted(servers)})")
            elif kind is FaultKind.SERVER_JOIN:
                try:
                    resolve_gpu(target)
                except KeyError as exc:
                    raise ReproError(f"server_join: {exc.args[0]}") from None
            elif kind in (FaultKind.PREEMPT, FaultKind.RECLAIM):
                # fleet-relative: ids beyond the base cluster are allowed
                # when they match the fleet's naming (a device that joins
                # mid-run); membership is re-checked at activation
                if target not in device_ids and not future_dev.match(target):
                    raise ReproError(
                        f"{kind.value} fault needs a device id, got "
                        f"{target!r} (known: {sorted(device_ids)})")
            else:
                if target not in device_ids:
                    raise ReproError(
                        f"{kind.value} fault needs a device id, got "
                        f"{target!r} (known: {sorted(device_ids)})")

    # ---------------------------------------------------------------- #
    def bind(self, engine) -> None:
        """Share the engine's RNG stream and hook its cost model."""
        if self.rng is None:
            self.rng = engine.rng
        self.attach(engine.cost)

    def attach(self, cost) -> None:
        """Hook a :class:`TruthCostModel`; pushes the current overlay."""
        self._cost_models.append(cost)
        self._push_overlay_to(cost)

    # ---------------------------------------------------------------- #
    @property
    def active_events(self) -> List[FaultEvent]:
        return list(self.schedule.events[:self._next])

    @property
    def pending_events(self) -> List[FaultEvent]:
        return list(self.schedule.events[self._next:])

    @property
    def any_active(self) -> bool:
        return self._next > 0

    @property
    def preempt_pending(self) -> Dict[str, int]:
        """Devices under a spot notice -> iteration they go dark."""
        return dict(self._preempt_deadlines)

    def advance(self, iteration: int) -> List[FaultEvent]:
        """Activate every event due at or before ``iteration``.

        Returns the newly fired events (empty most iterations).  A
        ``preempt`` notice whose window has elapsed fires a synthesized
        ``crash`` for its device here — the spot instance is gone.
        """
        fired: List[FaultEvent] = []
        events = self.schedule.events
        while self._next < len(events) \
                and events[self._next].iteration <= iteration:
            event = events[self._next]
            self._next += 1
            self._activate(event)
            fired.append(event)
        for target in sorted(self._preempt_deadlines):
            deadline = self._preempt_deadlines[target]
            if deadline <= iteration:
                del self._preempt_deadlines[target]
                self.failed_devices.add(target)
                fired.append(FaultEvent(deadline, FaultKind.DEVICE_CRASH,
                                        target))
        if fired:
            self._push_overlay()
            tel = telemetry.active()
            if tel is not None:
                for event in fired:
                    tel.registry.counter(
                        "resilience_faults_injected_total",
                        labels={"kind": event.kind.value},
                        help="fault events activated by the injector",
                    ).inc()
        return fired

    def _activate(self, event: FaultEvent) -> None:
        kind = event.kind
        if kind is FaultKind.DEVICE_CRASH:
            self.failed_devices.add(event.target)
        elif kind is FaultKind.STRAGGLER:
            # repeated stragglers on one device compound
            prev = self.compute_scale.get(event.target, 1.0)
            self.compute_scale[event.target] = prev * event.factor
        elif kind is FaultKind.DEVICE_JOIN:
            self._fleet = self._fleet.with_joined_devices(
                event.target, event.count)
        elif kind is FaultKind.SERVER_JOIN:
            template = ServerSpec(self._next_server_name(),
                                  resolve_gpu(event.target), event.count,
                                  NIC_50G, intra_link=PCIE3)
            self._fleet = self._fleet.with_joined_server(template)
        elif kind is FaultKind.PREEMPT:
            if event.target not in set(self._fleet.device_ids):
                raise ReproError(
                    f"preempt notice for a device not in the fleet: "
                    f"{event.label}")
            if event.target in self.failed_devices:
                raise ReproError(
                    f"preempt notice for an already-dead device: "
                    f"{event.label}")
            self._preempt_deadlines[event.target] = \
                event.iteration + event.count
        elif kind is FaultKind.RECLAIM:
            if event.target not in self.failed_devices:
                raise ReproError(
                    f"reclaim of a device that is not down: {event.label}")
            self.failed_devices.discard(event.target)
        else:
            self._degrades.append(event)
            for src, dst in self._links_of(event.target):
                prev = self._link_scale.get((src, dst), 1.0)
                self._link_scale[(src, dst)] = prev * event.factor

    def _next_server_name(self) -> str:
        """The next free ``server<N>`` name in the current fleet."""
        taken = [int(name[6:]) for name in self._fleet.server_names()
                 if name.startswith("server") and name[6:].isdigit()]
        return f"server{(max(taken) + 1) if taken else 0}"

    def _links_of(self, target: str) -> List[Tuple[str, str]]:
        """Directed device pairs whose link degrades with ``target``."""
        pairs: List[Tuple[str, str]] = []
        fleet = self._fleet
        is_device = target in set(fleet.device_ids)
        for link in fleet.links():
            if is_device:
                if target in (link.src, link.dst):
                    pairs.append((link.src, link.dst))
            elif not link.intra_server and (
                    fleet.device(link.src).server == target
                    or fleet.device(link.dst).server == target):
                pairs.append((link.src, link.dst))
        return pairs

    # ---------------------------------------------------------------- #
    def overlay(self) -> Optional[FaultOverlay]:
        """The merged active-fault overlay, or None when healthy."""
        if (not self.failed_devices and not self.compute_scale
                and not self._link_scale):
            return None
        return FaultOverlay(
            failed_devices=frozenset(self.failed_devices),
            compute_scale=dict(self.compute_scale),
            link_scale=dict(self._link_scale),
        )

    def _push_overlay(self) -> None:
        for cost in self._cost_models:
            self._push_overlay_to(cost)

    def _push_overlay_to(self, cost) -> None:
        overlay = self.overlay()
        if overlay is None:
            cost.clear_fault_overlay()
        else:
            cost.set_fault_overlay(overlay)

    # ---------------------------------------------------------------- #
    def degraded_cluster(self, base: Optional[Cluster] = None) -> Cluster:
        """The surviving cluster under every active fault.

        Crashed devices are removed, degraded links keep their scaled
        bandwidth, and stragglers keep their scaled compute throughput —
        this is what the :class:`~repro.resilience.replan.Replanner`
        re-plans against.
        """
        cluster = base if base is not None else self.cluster
        alive_failed = self.failed_devices & set(cluster.device_ids)
        if alive_failed:
            cluster = cluster.without_devices(alive_failed)
        for event in self._degrades:
            if (event.target in cluster.device_ids
                    or event.target in cluster.server_names()):
                cluster = cluster.with_scaled_links(
                    event.factor, involving=event.target)
        stragglers = {
            d: 1.0 / s for d, s in self.compute_scale.items()
            if d in set(cluster.device_ids) and s != 1.0
        }
        if stragglers:
            cluster = cluster.with_scaled_compute(stragglers)
        return cluster

    def physical_cluster(self) -> Cluster:
        """The fleet as hardware: base cluster plus every activated join.

        Failed devices are *included* (they exist, they are just dark) —
        this is what a rebuilt execution engine models, with the overlay
        making the failures visible.
        """
        return self._fleet

    def current_cluster(self) -> Cluster:
        """The usable fleet right now: joins applied, failures removed.

        The time-varying generalization of :meth:`degraded_cluster` —
        identical to it while no capacity event has fired.  Devices
        under a pending preempt notice are still present (they have not
        died yet); a drain policy subtracts them itself via
        :meth:`~repro.cluster.topology.Cluster.without_devices`.
        """
        return self.degraded_cluster(self._fleet)
