"""Deterministic fault injection for the ground-truth execution engine.

A :class:`FaultSchedule` is a seeded, fully deterministic list of
:class:`FaultEvent`\\ s keyed by iteration number; the
:class:`FaultInjector` binds one to an :class:`ExecutionEngine` and
applies the active faults to its :class:`TruthCostModel` through the
overlay hooks:

- ``crash`` — ops touching the device raise :class:`DeviceLostError`;
- ``degrade`` — links through the device/server lose bandwidth;
- ``straggler`` — the device's compute durations are multiplied.

With an empty schedule the injector installs no overlay at all, so the
engine's timeline is bit-identical to a run without any injector —
paired (faults on/off) experiments are sound by construction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

import numpy as np

from .. import telemetry
from ..cluster.topology import Cluster
from ..errors import ReproError


class FaultKind(enum.Enum):
    """What goes wrong."""

    DEVICE_CRASH = "crash"          # GPU disappears (XID error, host dies)
    LINK_DEGRADE = "degrade"        # NIC/link drops to a fraction of BW
    STRAGGLER = "straggler"         # device persistently slows down


@dataclass(frozen=True)
class FaultEvent:
    """One fault striking at the start of ``iteration``.

    ``target`` is a device id (crash/straggler/degrade) or a server name
    (degrade: the server's NIC).  ``factor`` is the bandwidth multiplier
    in (0, 1) for ``degrade`` and the slowdown multiplier > 1 for
    ``straggler``; crashes ignore it.
    """

    iteration: int
    kind: FaultKind
    target: str
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.iteration < 0:
            raise ReproError(f"fault iteration must be >= 0: {self}")
        if self.kind is FaultKind.LINK_DEGRADE and not 0 < self.factor < 1:
            raise ReproError(
                f"degrade factor must be in (0, 1), got {self.factor}")
        if self.kind is FaultKind.STRAGGLER and self.factor <= 1:
            raise ReproError(
                f"straggler factor must be > 1, got {self.factor}")

    @property
    def label(self) -> str:
        if self.kind is FaultKind.DEVICE_CRASH:
            return f"crash:{self.target}@{self.iteration}"
        return (f"{self.kind.value}:{self.target}@{self.iteration}"
                f"x{self.factor:g}")


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, iteration-ordered fault timeline."""

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "events",
            tuple(sorted(self.events, key=lambda e: e.iteration)),
        )

    @property
    def is_empty(self) -> bool:
        return not self.events

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    # ---------------------------------------------------------------- #
    @staticmethod
    def empty() -> "FaultSchedule":
        return FaultSchedule(())

    @staticmethod
    def parse(spec: str) -> "FaultSchedule":
        """Parse ``kind:target@iteration[xfactor]`` items, comma-separated.

        Examples: ``crash:gpu3@5``, ``degrade:server1@8x0.5``,
        ``straggler:gpu2@3x1.7``.
        """
        events: List[FaultEvent] = []
        for raw in spec.split(","):
            item = raw.strip()
            if not item:
                continue
            try:
                kind_s, rest = item.split(":", 1)
                target, when = rest.rsplit("@", 1)
                if "x" in when:
                    when_s, factor_s = when.split("x", 1)
                    factor = float(factor_s)
                else:
                    when_s, factor = when, 1.0
                kind = FaultKind(kind_s.strip().lower())
                events.append(FaultEvent(int(when_s), kind, target.strip(),
                                         factor))
            except (ValueError, KeyError) as exc:
                raise ReproError(
                    f"bad fault spec {item!r} (want kind:target@iter[xF], "
                    f"e.g. crash:gpu3@5 or degrade:server1@8x0.5): {exc}"
                ) from None
        return FaultSchedule(tuple(events))

    @staticmethod
    def random(cluster: Cluster, *, seed: int, events: int = 2,
               horizon: int = 16,
               kinds: Optional[List[FaultKind]] = None) -> "FaultSchedule":
        """A deterministic seeded schedule over ``cluster``'s resources.

        Never crashes more than ``num_devices - 1`` GPUs, so a replan on
        the survivors is always possible.
        """
        rng = np.random.default_rng(seed)
        kinds = kinds or list(FaultKind)
        device_ids = cluster.device_ids
        servers = cluster.server_names()
        crashes_left = len(device_ids) - 1
        crashed: List[str] = []
        out: List[FaultEvent] = []
        for _ in range(events):
            kind = kinds[int(rng.integers(len(kinds)))]
            iteration = int(rng.integers(1, max(2, horizon)))
            if kind is FaultKind.DEVICE_CRASH:
                alive = [d for d in device_ids if d not in crashed]
                if crashes_left <= 0 or len(alive) <= 1:
                    kind = FaultKind.STRAGGLER
                else:
                    target = alive[int(rng.integers(len(alive)))]
                    crashed.append(target)
                    crashes_left -= 1
                    out.append(FaultEvent(iteration, kind, target))
                    continue
            if kind is FaultKind.LINK_DEGRADE:
                target = servers[int(rng.integers(len(servers)))]
                factor = float(rng.uniform(0.3, 0.7))
                out.append(FaultEvent(iteration, kind, target, factor))
            else:  # straggler
                target = device_ids[int(rng.integers(len(device_ids)))]
                factor = float(rng.uniform(1.5, 3.0))
                out.append(FaultEvent(iteration, kind, target, factor))
        return FaultSchedule(tuple(out))


@dataclass(frozen=True)
class FaultOverlay:
    """The active-fault view a :class:`TruthCostModel` prices under."""

    failed_devices: FrozenSet[str] = frozenset()
    compute_scale: Mapping[str, float] = field(default_factory=dict)
    link_scale: Mapping[Tuple[str, str], float] = field(default_factory=dict)

    @property
    def empty(self) -> bool:
        return (not self.failed_devices and not self.compute_scale
                and not self.link_scale)


class FaultInjector:
    """Applies a :class:`FaultSchedule` to execution-engine cost models.

    The controller calls :meth:`advance` at the top of every training
    iteration; events whose iteration has arrived become *active* and
    are pushed to every attached cost model as one merged overlay.
    Faults are persistent (a crashed GPU stays dead, a straggler stays
    slow) — recovery happens by *replanning around* them, not by the
    fault clearing.
    """

    def __init__(self, cluster: Cluster, schedule: FaultSchedule,
                 rng: Optional[np.random.Generator] = None):
        self.cluster = cluster
        self.schedule = schedule
        self.rng = rng  # shared engine stream once bound
        self._next = 0  # index of the first not-yet-fired event
        self._cost_models: List[object] = []
        self.failed_devices: set = set()
        self.compute_scale: Dict[str, float] = {}
        self._degrades: List[FaultEvent] = []
        self._link_scale: Dict[Tuple[str, str], float] = {}
        # validate targets up front so a typo fails at construction
        known = set(cluster.device_ids) | set(cluster.server_names())
        for event in schedule:
            if event.target not in known:
                raise ReproError(
                    f"fault targets unknown resource {event.target!r} "
                    f"(known: {sorted(known)})")
            if (event.kind is not FaultKind.LINK_DEGRADE
                    and event.target not in cluster.device_ids):
                raise ReproError(
                    f"{event.kind.value} fault needs a device id, got "
                    f"server {event.target!r}")

    # ---------------------------------------------------------------- #
    def bind(self, engine) -> None:
        """Share the engine's RNG stream and hook its cost model."""
        if self.rng is None:
            self.rng = engine.rng
        self.attach(engine.cost)

    def attach(self, cost) -> None:
        """Hook a :class:`TruthCostModel`; pushes the current overlay."""
        self._cost_models.append(cost)
        self._push_overlay_to(cost)

    # ---------------------------------------------------------------- #
    @property
    def active_events(self) -> List[FaultEvent]:
        return list(self.schedule.events[:self._next])

    @property
    def pending_events(self) -> List[FaultEvent]:
        return list(self.schedule.events[self._next:])

    @property
    def any_active(self) -> bool:
        return self._next > 0

    def advance(self, iteration: int) -> List[FaultEvent]:
        """Activate every event due at or before ``iteration``.

        Returns the newly fired events (empty most iterations).
        """
        fired: List[FaultEvent] = []
        events = self.schedule.events
        while self._next < len(events) \
                and events[self._next].iteration <= iteration:
            event = events[self._next]
            self._next += 1
            self._activate(event)
            fired.append(event)
        if fired:
            self._push_overlay()
            tel = telemetry.active()
            if tel is not None:
                for event in fired:
                    tel.registry.counter(
                        "resilience_faults_injected_total",
                        labels={"kind": event.kind.value},
                        help="fault events activated by the injector",
                    ).inc()
        return fired

    def _activate(self, event: FaultEvent) -> None:
        if event.kind is FaultKind.DEVICE_CRASH:
            self.failed_devices.add(event.target)
        elif event.kind is FaultKind.STRAGGLER:
            # repeated stragglers on one device compound
            prev = self.compute_scale.get(event.target, 1.0)
            self.compute_scale[event.target] = prev * event.factor
        else:
            self._degrades.append(event)
            for src, dst in self._links_of(event.target):
                prev = self._link_scale.get((src, dst), 1.0)
                self._link_scale[(src, dst)] = prev * event.factor

    def _links_of(self, target: str) -> List[Tuple[str, str]]:
        """Directed device pairs whose link degrades with ``target``."""
        pairs: List[Tuple[str, str]] = []
        is_device = target in set(self.cluster.device_ids)
        for link in self.cluster.links():
            if is_device:
                if target in (link.src, link.dst):
                    pairs.append((link.src, link.dst))
            elif not link.intra_server and (
                    self.cluster.device(link.src).server == target
                    or self.cluster.device(link.dst).server == target):
                pairs.append((link.src, link.dst))
        return pairs

    # ---------------------------------------------------------------- #
    def overlay(self) -> Optional[FaultOverlay]:
        """The merged active-fault overlay, or None when healthy."""
        if (not self.failed_devices and not self.compute_scale
                and not self._link_scale):
            return None
        return FaultOverlay(
            failed_devices=frozenset(self.failed_devices),
            compute_scale=dict(self.compute_scale),
            link_scale=dict(self._link_scale),
        )

    def _push_overlay(self) -> None:
        for cost in self._cost_models:
            self._push_overlay_to(cost)

    def _push_overlay_to(self, cost) -> None:
        overlay = self.overlay()
        if overlay is None:
            cost.clear_fault_overlay()
        else:
            cost.set_fault_overlay(overlay)

    # ---------------------------------------------------------------- #
    def degraded_cluster(self, base: Optional[Cluster] = None) -> Cluster:
        """The surviving cluster under every active fault.

        Crashed devices are removed, degraded links keep their scaled
        bandwidth, and stragglers keep their scaled compute throughput —
        this is what the :class:`~repro.resilience.replan.Replanner`
        re-plans against.
        """
        cluster = base if base is not None else self.cluster
        alive_failed = self.failed_devices & set(cluster.device_ids)
        if alive_failed:
            cluster = cluster.without_devices(alive_failed)
        for event in self._degrades:
            if (event.target in cluster.device_ids
                    or event.target in cluster.server_names()):
                cluster = cluster.with_scaled_links(
                    event.factor, involving=event.target)
        stragglers = {
            d: 1.0 / s for d, s in self.compute_scale.items()
            if d in set(cluster.device_ids) and s != 1.0
        }
        if stragglers:
            cluster = cluster.with_scaled_compute(stragglers)
        return cluster
