"""Resilience: fault injection, failure detection, elastic replanning.

The subsystem closes the loop the paper leaves open — what happens when
the heterogeneous cluster *changes under* a deployed strategy:

1. :class:`FaultInjector` applies a deterministic, seeded
   :class:`FaultSchedule` (device crashes, link/NIC degradation,
   persistent stragglers) to the ground-truth engine's cost model;
2. :class:`~repro.runtime.trainer_loop.FailureDetector` notices failures
   from iteration results (exceptions for hard faults, busy-time
   blow-ups vs a warmed baseline for soft ones);
3. :class:`Replanner` derives the degraded cluster
   (:meth:`Cluster.without_devices` / :meth:`Cluster.with_scaled_links`)
   and re-runs strategy search through the warm plan layer;
4. :class:`ResilientTrainer` drives the whole loop, accounting MTTR and
   lost work, under a ``replan``, ``ride`` (do-nothing) or ``elastic``
   policy — the last also reacting to *capacity* events
   (:data:`CAPACITY_KINDS`: joins, spot preempt notices, reclaims)
   through :mod:`repro.elastic`.
"""

from ..runtime.trainer_loop import DetectionEvent, FailureDetector
from .controller import (
    POLICIES,
    RecoveryRecord,
    ResilienceReport,
    ResilientTrainer,
)
from .faults import (
    CAPACITY_KINDS,
    FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultOverlay,
    FaultSchedule,
)
from .replan import RecoveryPlan, Replanner

__all__ = [
    "CAPACITY_KINDS",
    "FAULT_KINDS",
    "FaultKind",
    "FaultEvent",
    "FaultSchedule",
    "FaultOverlay",
    "FaultInjector",
    "DetectionEvent",
    "FailureDetector",
    "Replanner",
    "RecoveryPlan",
    "ResilientTrainer",
    "ResilienceReport",
    "RecoveryRecord",
    "POLICIES",
]
