"""Client API (paper Sec. 3.5, Fig. 5) and the typed service entrypoint.

.. code-block:: python

    import repro as heterog

    def model_func():
        # create single GPU model
        return build_vgg19(batch_size=192)

    def input_func():
        return heterog.Dataset(batch_size=192)

    dist_runner = heterog.get_runner(
        model_func, input_func, device_info, heterog_config)
    dist_runner.run(steps)

``device_info`` is either a :class:`~repro.cluster.Cluster` or a list of
per-machine dicts with hostnames, GPU model and count, e.g.::

    [{"host": "10.0.0.1", "gpu_model": "Tesla V100", "gpus": 4,
      "nic_gbps": 100},
     {"host": "10.0.0.2", "gpu_model": "GTX 1080Ti", "gpus": 2,
      "nic_gbps": 50}]

Programmatic consumers that want more control than ``get_runner`` use
the typed planning surface re-exported here: build a
:class:`PlanRequest`, pass it to :func:`plan` (the process-wide default
:class:`PlanningService`) or to a service of your own, and get a
:class:`PlanResult` back.  Every error crossing this boundary is a
:class:`~repro.errors.ReproError` subclass.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, List, Mapping, Optional, Sequence, Union

from .cluster.device import GPU_MODELS
from .cluster.link import GBPS, NVLINK, PCIE3, LinkSpec
from .cluster.topology import Cluster, ServerSpec
from .config import HeteroGConfig
from .errors import ReproError
from .graph.dag import ComputationGraph
from .heterog import HeteroG
from .runtime.runner import DistributedRunner
from .service import PlanningService, PlanRequest, PlanResult, PlanTicket


@dataclass(frozen=True)
class Dataset:
    """Input pipeline description (the ``input_func`` return value)."""

    batch_size: int
    num_samples: int = 1_000_000
    sample_shape: tuple = ()

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ReproError(f"batch_size must be positive: {self.batch_size}")


DeviceInfo = Union[Cluster, Sequence[Mapping[str, object]]]


def parse_device_info(device_info: DeviceInfo) -> Cluster:
    """Build a :class:`Cluster` from the client's device description.

    Only :class:`~repro.errors.ReproError` subclasses escape: malformed
    entries (missing keys, non-numeric counts, unknown GPU models) are
    reported with the offending entry index, and unknown models list
    every valid model name.
    """
    if isinstance(device_info, Cluster):
        return device_info
    try:
        entries = list(device_info)
    except TypeError:
        raise ReproError(
            f"device_info must be a Cluster or a list of per-machine "
            f"dicts, got {type(device_info).__name__}"
        ) from None
    if not entries:
        raise ReproError("device_info is empty: describe at least one "
                         "machine or pass a Cluster")
    servers: List[ServerSpec] = []
    for i, entry in enumerate(entries):
        if not isinstance(entry, Mapping):
            raise ReproError(
                f"device_info entry {i} must be a mapping, "
                f"got {type(entry).__name__}"
            )
        try:
            model = str(entry["gpu_model"])
            gpus = int(entry["gpus"])  # type: ignore[arg-type]
            nic_gbps = float(entry.get("nic_gbps", 50))  # type: ignore
        except KeyError as missing:
            raise ReproError(
                f"device_info entry {i} missing key {missing}"
            ) from None
        except (TypeError, ValueError) as bad:
            raise ReproError(
                f"device_info entry {i} has a non-numeric field: {bad}"
            ) from None
        if model not in GPU_MODELS:
            raise ReproError(
                f"unknown GPU model {model!r}; known: {sorted(GPU_MODELS)}"
            )
        if gpus < 1:
            raise ReproError(
                f"device_info entry {i}: gpus must be >= 1, got {gpus}")
        nic = LinkSpec(f"{nic_gbps:.0f}GbE", nic_gbps * GBPS, 15e-6)
        intra = NVLINK if bool(entry.get("nvlink", model == "Tesla V100")) \
            else PCIE3
        host = str(entry.get("host", f"server{i}"))
        servers.append(ServerSpec(host, GPU_MODELS[model], gpus, nic,
                                  intra_link=intra))
    return Cluster(servers)


# --------------------------------------------------------------------- #
# the process-wide default planning service
_default_service: Optional[PlanningService] = None
_default_lock = threading.Lock()


def default_service() -> PlanningService:
    """The lazily created process-wide :class:`PlanningService`.

    Shared by :func:`plan` / :func:`submit` and the ``repro serve``
    demo; long-lived so repeated requests across callers coalesce and
    hit warm contexts.
    """
    global _default_service
    with _default_lock:
        if _default_service is None:
            _default_service = PlanningService(name="default")
        return _default_service


def plan(request: PlanRequest) -> PlanResult:
    """Plan one typed request on the default service (blocking)."""
    return default_service().plan(request)


def submit(request: PlanRequest) -> PlanTicket:
    """Admit one typed request on the default service (non-blocking)."""
    return default_service().submit(request)


def service_status() -> dict:
    """One-shot live snapshot of the default service (queue depth,
    inflight requests with ages, cache hit rates, warm contexts, SLO
    burn) — what ``repro status`` renders."""
    return default_service().snapshot()


def postmortem(request_id: str) -> str:
    """Post-hoc timeline for one request (or resilience episode) from
    the process-wide flight recorder; accepts a unique id prefix.

    Works with telemetry disabled — the recorder is always on and
    bounded.  Raises :class:`~repro.errors.ReproError` when no (unique)
    record matches.
    """
    from .telemetry.flight import default_recorder, postmortem_report
    record = default_recorder().get(request_id)
    if record is None:
        raise ReproError(
            f"no (unique) flight record for {request_id!r}; the ring "
            f"buffer holds {len(default_recorder())} records")
    return postmortem_report(record)


# --------------------------------------------------------------------- #
def get_runner(
    model_func: Callable[[], ComputationGraph],
    input_func: Callable[[], Dataset],
    device_info: DeviceInfo,
    heterog_config: Optional[HeteroGConfig] = None,
) -> DistributedRunner:
    """Convert a single-GPU model into a distributed runner (Sec. 3.5).

    Computes deployment strategies (GNN search + order scheduling),
    produces the distributed training model, and returns the runner whose
    ``run(steps)`` executes it on the heterogeneous cluster.
    """
    try:
        graph = model_func()
    except ReproError:
        raise
    except (ValueError, KeyError, TypeError) as exc:
        raise ReproError(f"model_func failed: {exc}") from exc
    if not isinstance(graph, ComputationGraph):
        raise ReproError(
            "model_func must return a ComputationGraph (the single-GPU "
            "training graph)"
        )
    try:
        dataset = input_func()
    except ReproError:
        raise
    except (ValueError, KeyError, TypeError) as exc:
        raise ReproError(f"input_func failed: {exc}") from exc
    batch = _graph_batch(graph)
    if batch and dataset.batch_size != batch:
        raise ReproError(
            f"input_func batch_size {dataset.batch_size} != model batch "
            f"size {batch}"
        )
    cluster = parse_device_info(device_info)
    module = HeteroG(cluster, heterog_config)
    deployment = module.deploy(graph)
    return module.runner(deployment)


def _graph_batch(graph: ComputationGraph) -> int:
    from .graph.op import OpPhase
    for op in graph:
        if op.phase is OpPhase.INPUT and op.output.batch_size:
            return int(op.output.batch_size)
    return 0
