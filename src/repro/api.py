"""Client API (paper Sec. 3.5, Fig. 5).

.. code-block:: python

    import repro as heterog

    def model_func():
        # create single GPU model
        return build_vgg19(batch_size=192)

    def input_func():
        return heterog.Dataset(batch_size=192)

    dist_runner = heterog.get_runner(
        model_func, input_func, device_info, heterog_config)
    dist_runner.run(steps)

``device_info`` is either a :class:`~repro.cluster.Cluster` or a list of
per-machine dicts with hostnames, GPU model and count, e.g.::

    [{"host": "10.0.0.1", "gpu_model": "Tesla V100", "gpus": 4,
      "nic_gbps": 100},
     {"host": "10.0.0.2", "gpu_model": "GTX 1080Ti", "gpus": 2,
      "nic_gbps": 50}]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Mapping, Optional, Sequence, Union

from .cluster.device import GPU_MODELS
from .cluster.link import GBPS, NVLINK, PCIE3, LinkSpec
from .cluster.topology import Cluster, ServerSpec
from .config import HeteroGConfig
from .errors import ReproError
from .graph.dag import ComputationGraph
from .heterog import HeteroG
from .runtime.runner import DistributedRunner


@dataclass(frozen=True)
class Dataset:
    """Input pipeline description (the ``input_func`` return value)."""

    batch_size: int
    num_samples: int = 1_000_000
    sample_shape: tuple = ()

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ReproError(f"batch_size must be positive: {self.batch_size}")


DeviceInfo = Union[Cluster, Sequence[Mapping[str, object]]]


def parse_device_info(device_info: DeviceInfo) -> Cluster:
    """Build a :class:`Cluster` from the client's device description."""
    if isinstance(device_info, Cluster):
        return device_info
    servers: List[ServerSpec] = []
    for i, entry in enumerate(device_info):
        try:
            model = str(entry["gpu_model"])
            gpus = int(entry["gpus"])  # type: ignore[arg-type]
        except KeyError as missing:
            raise ReproError(
                f"device_info entry {i} missing key {missing}"
            ) from None
        if model not in GPU_MODELS:
            raise ReproError(
                f"unknown GPU model {model!r}; known: {sorted(GPU_MODELS)}"
            )
        nic_gbps = float(entry.get("nic_gbps", 50))  # type: ignore[arg-type]
        nic = LinkSpec(f"{nic_gbps:.0f}GbE", nic_gbps * GBPS, 15e-6)
        intra = NVLINK if bool(entry.get("nvlink", model == "Tesla V100")) \
            else PCIE3
        host = str(entry.get("host", f"server{i}"))
        servers.append(ServerSpec(host, GPU_MODELS[model], gpus, nic,
                                  intra_link=intra))
    return Cluster(servers)


def get_runner(
    model_func: Callable[[], ComputationGraph],
    input_func: Callable[[], Dataset],
    device_info: DeviceInfo,
    heterog_config: Optional[HeteroGConfig] = None,
) -> DistributedRunner:
    """Convert a single-GPU model into a distributed runner (Sec. 3.5).

    Computes deployment strategies (GNN search + order scheduling),
    produces the distributed training model, and returns the runner whose
    ``run(steps)`` executes it on the heterogeneous cluster.
    """
    graph = model_func()
    if not isinstance(graph, ComputationGraph):
        raise ReproError(
            "model_func must return a ComputationGraph (the single-GPU "
            "training graph)"
        )
    dataset = input_func()
    batch = _graph_batch(graph)
    if batch and dataset.batch_size != batch:
        raise ReproError(
            f"input_func batch_size {dataset.batch_size} != model batch "
            f"size {batch}"
        )
    cluster = parse_device_info(device_info)
    module = HeteroG(cluster, heterog_config)
    deployment = module.deploy(graph)
    return module.runner(deployment)


def _graph_batch(graph: ComputationGraph) -> int:
    from .graph.op import OpPhase
    for op in graph:
        if op.phase is OpPhase.INPUT and op.output.batch_size:
            return int(op.output.batch_size)
    return 0
