"""HeteroG configuration object (the optional ``heterog_config`` of the
client API, Sec. 3.5)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .agent.agent import AgentConfig


@dataclass
class HeteroGConfig:
    """Knobs for strategy search and deployment.

    - ``episodes``: RL episodes for the strategy search.
    - ``use_order_scheduling``: HeteroG's rank-based execution order vs the
      framework's default FIFO ("whether to use default execution order or
      our order scheduling algorithm").
    - ``checkpoint_path``: where to save trained variables (accepted for
      API fidelity; the simulated engine has no variables to persist).
    - ``agent``: GNN policy hyper-parameters.
    - ``seed``: master seed for profiling/search determinism.
    """

    episodes: int = 40
    use_order_scheduling: bool = True
    checkpoint_path: Optional[str] = None
    agent: AgentConfig = field(default_factory=AgentConfig)
    seed: int = 0
    profile_noise_sigma: float = 0.03
    engine_jitter_sigma: float = 0.04
