"""Metrics registry: counters, gauges, histograms with label support.

Prometheus-flavoured data model (one registry per telemetry session):

- :class:`Counter` — monotonically increasing float;
- :class:`Gauge` — set/inc/dec to any value;
- :class:`Histogram` — bucketed observations with cumulative ``le``
  bucket semantics, plus ``_count`` and ``_sum``.

Metrics are addressed by ``(name, sorted label items)``; repeated calls
to :meth:`MetricsRegistry.counter` & co. with the same address return
the same instance, so instrumented code never has to cache handles.
Export surfaces: :meth:`MetricsRegistry.to_prometheus` (text exposition
format) and :meth:`MetricsRegistry.to_json`.
"""

from __future__ import annotations

import json
import math
import threading
from bisect import bisect_left
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

LabelItems = Tuple[Tuple[str, str], ...]

# default histogram buckets: exponential, micro-seconds to minutes —
# wide enough for both simulated durations and wall-clock phase timings
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    1e-6 * (4.0 ** i) for i in range(14)
)


def _label_items(labels: Optional[Mapping[str, str]]) -> LabelItems:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_labels(items: LabelItems) -> str:
    if not items:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in items)
    return "{" + inner + "}"


class Metric:
    """Common bookkeeping for one (name, labels) time series."""

    kind = "untyped"

    def __init__(self, name: str, labels: LabelItems, help: str = ""):
        self.name = name
        self.labels = labels
        self.help = help

    @property
    def label_dict(self) -> Dict[str, str]:
        return dict(self.labels)


class Counter(Metric):
    """A monotonically increasing value."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelItems, help: str = ""):
        super().__init__(name, labels, help)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


class Gauge(Metric):
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelItems, help: str = ""):
        super().__init__(name, labels, help)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram(Metric):
    """Bucketed observations (cumulative ``le`` semantics on export)."""

    kind = "histogram"

    def __init__(self, name: str, labels: LabelItems, help: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        super().__init__(name, labels, help)
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        self.bounds: List[float] = bounds
        # per-bucket (non-cumulative) counts; +Inf bucket is the last slot
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.total = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else float("nan")

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(le, cumulative count)`` pairs including the +Inf bucket."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            out.append((bound, running))
        out.append((math.inf, running + self.counts[-1]))
        return out

    def quantile(self, q: float) -> float:
        """Bucket-upper-bound estimate of the ``q`` quantile (0..1)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.total == 0:
            return float("nan")
        target = q * self.total
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            if running >= target:
                return bound
        return self.max


class MetricsRegistry:
    """Holds every metric of one telemetry session."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, LabelItems], Metric] = {}

    # ------------------------------------------------------------------ #
    def _get(self, cls, name: str, labels: Optional[Mapping[str, str]],
             help: str, **kwargs) -> Metric:
        key = (name, _label_items(labels))
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    metric = cls(name, key[1], help=help, **kwargs)
                    self._metrics[key] = metric
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str,
                labels: Optional[Mapping[str, str]] = None,
                help: str = "") -> Counter:
        return self._get(Counter, name, labels, help)

    def gauge(self, name: str,
              labels: Optional[Mapping[str, str]] = None,
              help: str = "") -> Gauge:
        return self._get(Gauge, name, labels, help)

    def histogram(self, name: str,
                  labels: Optional[Mapping[str, str]] = None,
                  help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get(Histogram, name, labels, help, buckets=buckets)

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._metrics)

    def metrics(self) -> List[Metric]:
        """All metrics, sorted by (name, labels) for stable export."""
        return [self._metrics[k] for k in sorted(self._metrics)]

    def get(self, name: str,
            labels: Optional[Mapping[str, str]] = None) -> Optional[Metric]:
        return self._metrics.get((name, _label_items(labels)))

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()

    # ------------------------------------------------------------------ #
    def to_prometheus(self) -> str:
        """Text exposition format (one ``# TYPE`` line per family)."""
        lines: List[str] = []
        seen_families = set()
        for metric in self.metrics():
            if metric.name not in seen_families:
                seen_families.add(metric.name)
                if metric.help:
                    lines.append(f"# HELP {metric.name} {metric.help}")
                lines.append(f"# TYPE {metric.name} {metric.kind}")
            label_str = _format_labels(metric.labels)
            if isinstance(metric, Histogram):
                for bound, cum in metric.cumulative():
                    le = "+Inf" if math.isinf(bound) else repr(bound)
                    items = metric.labels + (("le", le),)
                    lines.append(
                        f"{metric.name}_bucket{_format_labels(items)} {cum}"
                    )
                lines.append(f"{metric.name}_sum{label_str} {metric.sum!r}")
                lines.append(f"{metric.name}_count{label_str} {metric.total}")
            else:
                lines.append(f"{metric.name}{label_str} {metric.value!r}")
        return "\n".join(lines) + "\n"

    def to_json(self) -> Dict[str, List[dict]]:
        """JSON-serialisable dump of every time series."""
        out: List[dict] = []
        for metric in self.metrics():
            entry: dict = {
                "name": metric.name,
                "type": metric.kind,
                "labels": metric.label_dict,
            }
            if isinstance(metric, Histogram):
                entry.update(
                    count=metric.total,
                    sum=metric.sum,
                    mean=None if metric.total == 0 else metric.mean,
                    min=None if metric.total == 0 else metric.min,
                    max=None if metric.total == 0 else metric.max,
                    buckets=[
                        {"le": ("+Inf" if math.isinf(b) else b), "count": c}
                        for b, c in metric.cumulative()
                    ],
                )
            else:
                entry["value"] = metric.value
            out.append(entry)
        return {"metrics": out}

    def save_json(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_json(), fh, indent=2)

    def save_prometheus(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_prometheus())
