"""``repro.telemetry`` — metrics, span tracing, critical-path attribution.

The package has two faces:

1. **Explicit objects** — :class:`MetricsRegistry`, :class:`Tracer` and
   :func:`critical_path` can be constructed and used directly.
2. **Ambient session** — instrumented modules (simulation engine,
   execution engine, REINFORCE trainer, scheduler, the HeteroG facade)
   call :func:`active` each run; it returns ``None`` unless a session
   was opened with :func:`enable` or the :func:`session` context
   manager, so the disabled-path cost is a single attribute read and
   simulation results are bit-identical with telemetry off.

Typical use::

    from repro import telemetry

    with telemetry.session() as tel:
        result = engine.run_iteration(dist, schedule, resident, trace=True)
        print(tel.registry.to_prometheus())
        tel.tracer.save_jsonl("spans.jsonl")
        report = telemetry.critical_path(dist, result)
        print(report.summary())
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Iterator, Optional

from .critical_path import (
    IDLE_KEY,
    CriticalPathReport,
    PathSegment,
    blame_resource,
    critical_path,
)
from .registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .tracer import _NULL_SPAN, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "Span",
    "Tracer",
    "CriticalPathReport",
    "PathSegment",
    "critical_path",
    "blame_resource",
    "IDLE_KEY",
    "Telemetry",
    "active",
    "enable",
    "disable",
    "session",
    "span",
]


@dataclass
class Telemetry:
    """One telemetry session: a registry plus a tracer."""

    registry: MetricsRegistry
    tracer: Tracer

    def span(self, name: str, **attrs):
        return self.tracer.span(name, **attrs)


_ACTIVE: Optional[Telemetry] = None


def active() -> Optional[Telemetry]:
    """The ambient session, or ``None`` when telemetry is disabled."""
    return _ACTIVE


def enable(registry: Optional[MetricsRegistry] = None,
           tracer: Optional[Tracer] = None) -> Telemetry:
    """Open (or replace) the ambient telemetry session."""
    global _ACTIVE
    _ACTIVE = Telemetry(
        registry=registry if registry is not None else MetricsRegistry(),
        tracer=tracer if tracer is not None else Tracer(),
    )
    return _ACTIVE


def disable() -> None:
    """Close the ambient session (instrumentation becomes a no-op)."""
    global _ACTIVE
    _ACTIVE = None


def span(name: str, **attrs):
    """Span on the ambient tracer; a shared no-op when disabled."""
    tel = _ACTIVE
    if tel is None:
        return _NULL_SPAN
    return tel.tracer.span(name, **attrs)


@contextlib.contextmanager
def session(registry: Optional[MetricsRegistry] = None,
            tracer: Optional[Tracer] = None) -> Iterator[Telemetry]:
    """Scoped telemetry: enable on entry, restore the prior state on exit."""
    global _ACTIVE
    previous = _ACTIVE
    tel = enable(registry, tracer)
    try:
        yield tel
    finally:
        _ACTIVE = previous
