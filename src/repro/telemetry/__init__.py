"""``repro.telemetry`` — metrics, span tracing, critical-path attribution.

The package has two faces:

1. **Explicit objects** — :class:`MetricsRegistry`, :class:`Tracer` and
   :func:`critical_path` can be constructed and used directly.
2. **Ambient session** — instrumented modules (simulation engine,
   execution engine, REINFORCE trainer, scheduler, the HeteroG facade)
   call :func:`active` each run; it returns ``None`` unless a session
   was opened with :func:`enable` or the :func:`session` context
   manager, so the disabled-path cost is a single attribute read and
   simulation results are bit-identical with telemetry off.

Typical use::

    from repro import telemetry

    with telemetry.session() as tel:
        result = engine.run_iteration(dist, schedule, resident, trace=True)
        print(tel.registry.to_prometheus())
        tel.tracer.save_jsonl("spans.jsonl")
        report = telemetry.critical_path(dist, result)
        print(report.summary())
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Iterator, List, Optional

from .context import (
    current_recorder,
    current_request,
    record_event,
    request_scope,
)
from .critical_path import (
    IDLE_KEY,
    CriticalPathReport,
    PathSegment,
    blame_resource,
    critical_path,
)
from .flight import (
    FlightRecord,
    FlightRecorder,
    default_recorder,
    postmortem_report,
)
from .journal import (
    EVENT_SCHEMAS,
    PHASE_OF,
    SCHEMA_VERSION,
    Journal,
    JournalEvent,
    filter_events,
    new_request_id,
    validate_event,
)
from .registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .slo import (
    DEFAULT_TARGETS,
    SLOTarget,
    SLOTracker,
    priority_class,
    replay_tracker,
)
from .tracer import _NULL_SPAN, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "Span",
    "Tracer",
    "CriticalPathReport",
    "PathSegment",
    "critical_path",
    "blame_resource",
    "IDLE_KEY",
    "Telemetry",
    "active",
    "enable",
    "disable",
    "session",
    "span",
    "emit_count",
    "emit_gauge",
    "emit_observe",
    # request-scoped observability
    "current_request",
    "current_recorder",
    "record_event",
    "request_scope",
    "Journal",
    "JournalEvent",
    "SCHEMA_VERSION",
    "EVENT_SCHEMAS",
    "PHASE_OF",
    "filter_events",
    "new_request_id",
    "validate_event",
    "FlightRecord",
    "FlightRecorder",
    "default_recorder",
    "postmortem_report",
    "SLOTarget",
    "SLOTracker",
    "DEFAULT_TARGETS",
    "priority_class",
    "replay_tracker",
]


@dataclass
class Telemetry:
    """One telemetry session: a registry plus a tracer."""

    registry: MetricsRegistry
    tracer: Tracer

    def span(self, name: str, **attrs):
        return self.tracer.span(name, **attrs)


_ACTIVE: Optional[Telemetry] = None
_SESSIONS: List[Telemetry] = []  # nesting stack; _ACTIVE mirrors its top


def active() -> Optional[Telemetry]:
    """The ambient session, or ``None`` when telemetry is disabled."""
    return _ACTIVE


def enable(registry: Optional[MetricsRegistry] = None,
           tracer: Optional[Tracer] = None) -> Telemetry:
    """Open a new ambient telemetry session (stacking over any current
    one).  Sessions compose: a matching :func:`disable` restores the
    enclosing session instead of turning telemetry off outright, so
    per-request recording can coexist with a user-enabled global
    session."""
    global _ACTIVE
    tel = Telemetry(
        registry=registry if registry is not None else MetricsRegistry(),
        tracer=tracer if tracer is not None else Tracer(),
    )
    _SESSIONS.append(tel)
    _ACTIVE = tel
    return tel


def disable() -> None:
    """Close the innermost session, restoring the enclosing one (a
    no-op when no session is open)."""
    global _ACTIVE
    if _SESSIONS:
        _SESSIONS.pop()
    _ACTIVE = _SESSIONS[-1] if _SESSIONS else None


def span(name: str, **attrs):
    """Span on the ambient tracer; a shared no-op when disabled."""
    tel = _ACTIVE
    if tel is None:
        return _NULL_SPAN
    return tel.tracer.span(name, **attrs)


def emit_count(metric: str, labels=None, value: float = 1.0,
               help: str = "") -> None:
    """Increment a counter on the ambient registry (no-op when disabled).

    The one shared implementation of the ``_count`` shim the planning
    service, the plan cache and the execution backends all need: a
    single ``active()`` check, so the disabled path stays one attribute
    read and instrumented modules never copy the boilerplate again.
    """
    tel = _ACTIVE
    if tel is not None:
        tel.registry.counter(metric, labels=labels, help=help).inc(value)


def emit_gauge(metric: str, value: float, labels=None,
               help: str = "") -> None:
    """Set a gauge on the ambient registry (no-op when disabled)."""
    tel = _ACTIVE
    if tel is not None:
        tel.registry.gauge(metric, labels=labels, help=help).set(value)


def emit_observe(metric: str, value: float, labels=None,
                 help: str = "") -> None:
    """Observe into a histogram on the ambient registry (no-op when
    disabled)."""
    tel = _ACTIVE
    if tel is not None:
        tel.registry.histogram(metric, labels=labels,
                               help=help).observe(value)


@contextlib.contextmanager
def session(registry: Optional[MetricsRegistry] = None,
            tracer: Optional[Tracer] = None) -> Iterator[Telemetry]:
    """Scoped telemetry: enable on entry, restore the prior state on exit.

    Exit unwinds to the state *before* this session was opened — any
    sessions pushed inside the block (via :func:`enable` without a
    matching :func:`disable`) are unwound with it.
    """
    global _ACTIVE
    depth = len(_SESSIONS)
    tel = enable(registry, tracer)
    try:
        yield tel
    finally:
        del _SESSIONS[depth:]
        _ACTIVE = _SESSIONS[-1] if _SESSIONS else None
