"""Structured event journal: versioned-schema JSONL request telemetry.

Every event the planning service (and the resilience controller) emits
is one flat JSON object with four base fields — ``schema_version``,
``event``, ``request_id``, ``ts`` — plus the event type's required
attributes (:data:`EVENT_SCHEMAS`).  Events are validated *on emit* and
again on read, so a journal file either parses cleanly against the
schema or fails loudly; the CI smoke step
(``benchmarks/test_journal_smoke.py``) runs the demo serve workload and
re-validates every line.

The journal is the durable, grep-able stream (``repro journal`` tails
and filters it); the :mod:`~repro.telemetry.flight` ring buffer indexes
the same events per request for post-hoc timelines.  Unlike span
tracing, journal emission is *not* gated on the ambient telemetry
session — it is request-scoped, bounded, and cheap (a handful of events
per request, never per simulated op), which is what keeps the
disabled-telemetry hot path bit-identical and within budget while still
making every failed request reconstructable.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional

from ..errors import JournalSchemaError

SCHEMA_VERSION = 1

#: required attribute fields per event type (beyond the base fields);
#: extra attributes are always allowed, unknown event types never are.
EVENT_SCHEMAS: Dict[str, frozenset] = {
    # admission
    "request_accepted": frozenset({"graph", "label", "priority",
                                   "queue_depth"}),
    "coalesced": frozenset({"primary"}),
    "cache_hit": frozenset(),
    "rejected": frozenset({"queue_depth", "limit"}),
    # serving
    "context_warm": frozenset({"context"}),
    "context_cold": frozenset({"context"}),
    "search_started": frozenset({"episodes", "max_rounds"}),
    "candidate_evaluated": frozenset({"feasible", "time"}),
    "candidate_pruned": frozenset({"stage", "bound", "threshold"}),
    "plan_built": frozenset({"dist_ops"}),
    # outcomes
    "completed": frozenset({"seconds"}),
    "failed": frozenset({"error"}),
    "timeout": frozenset({"stage"}),
    # fleet backend: worker lifecycle + dispatch attribution
    "worker_spawn": frozenset({"worker"}),
    "worker_exit": frozenset({"worker"}),
    "worker_heartbeat_missed": frozenset({"worker", "misses"}),
    "worker_lost": frozenset({"worker"}),
    "worker_result_discarded": frozenset({"worker"}),
    "worker_join_timeout": frozenset({"worker"}),
    "dispatched": frozenset({"worker"}),
    "request_redispatched": frozenset({"worker", "attempt"}),
    # resilience episodes
    "episode_started": frozenset({"policy", "steps"}),
    "fault_detected": frozenset({"kind", "resource"}),
    "replan_started": frozenset({"devices"}),
    "replan_completed": frozenset({"seconds", "feasible"}),
    "resumed": frozenset({"iteration"}),
    # elastic fleet: capacity events + scale-up economics
    "device_joined": frozenset({"target", "devices"}),
    "device_reclaimed": frozenset({"target", "devices"}),
    "preempt_notice": frozenset({"target", "deadline"}),
    "scale_up_replan": frozenset({"devices", "expected_savings",
                                  "replan_cost"}),
    "scale_up_skipped": frozenset({"expected_savings", "replan_cost"}),
}

#: coarse lifecycle phase per event type (the ``--phase`` filter).
PHASE_OF: Dict[str, str] = {
    "request_accepted": "admission",
    "coalesced": "admission",
    "cache_hit": "admission",
    "rejected": "admission",
    "context_warm": "context",
    "context_cold": "context",
    "search_started": "search",
    "candidate_evaluated": "search",
    "candidate_pruned": "search",
    "plan_built": "build",
    "completed": "outcome",
    "failed": "outcome",
    "timeout": "outcome",
    "worker_spawn": "fleet",
    "worker_exit": "fleet",
    "worker_heartbeat_missed": "fleet",
    "worker_lost": "fleet",
    "worker_result_discarded": "fleet",
    "worker_join_timeout": "fleet",
    "dispatched": "fleet",
    "request_redispatched": "fleet",
    "episode_started": "resilience",
    "fault_detected": "resilience",
    "replan_started": "resilience",
    "replan_completed": "resilience",
    "resumed": "resilience",
    "device_joined": "resilience",
    "device_reclaimed": "resilience",
    "preempt_notice": "resilience",
    "scale_up_replan": "resilience",
    "scale_up_skipped": "resilience",
}

_BASE_FIELDS = ("schema_version", "event", "request_id", "ts")

_IDS = itertools.count(1)


def new_request_id(prefix: str = "req") -> str:
    """A short, unique, human-readable correlation id (process-wide)."""
    return f"{prefix}-{next(_IDS):06d}"


def validate_event(data: Mapping[str, Any]) -> None:
    """Check one flat event dict against the versioned schema.

    Raises :class:`~repro.errors.JournalSchemaError` on an unknown event
    type, a wrong/missing ``schema_version``, a missing ``request_id``
    or ``ts``, or a missing required attribute.  Extra attributes pass.
    """
    if not isinstance(data, Mapping):
        raise JournalSchemaError(
            f"journal event must be an object, got {type(data).__name__}")
    for key in _BASE_FIELDS:
        if key not in data:
            raise JournalSchemaError(
                f"journal event missing base field {key!r}: {dict(data)}")
    if data["schema_version"] != SCHEMA_VERSION:
        raise JournalSchemaError(
            f"unsupported journal schema_version "
            f"{data['schema_version']!r} (this build reads "
            f"{SCHEMA_VERSION})")
    event = data["event"]
    required = EVENT_SCHEMAS.get(event)
    if required is None:
        raise JournalSchemaError(
            f"unknown journal event type {event!r}; known: "
            f"{', '.join(sorted(EVENT_SCHEMAS))}")
    if not data["request_id"] or not isinstance(data["request_id"], str):
        raise JournalSchemaError(
            f"journal event {event!r} needs a non-empty request_id")
    if not isinstance(data["ts"], (int, float)):
        raise JournalSchemaError(
            f"journal event {event!r} ts must be a number, "
            f"got {data['ts']!r}")
    missing = required - set(data)
    if missing:
        raise JournalSchemaError(
            f"journal event {event!r} missing required field(s) "
            f"{', '.join(sorted(missing))}")


@dataclass(frozen=True)
class JournalEvent:
    """One validated journal entry.

    ``attrs`` holds everything beyond the base fields; :meth:`to_dict`
    flattens them (attributes sorted by key) so serialization is stable
    and a save -> load round trip is bit-identical.
    """

    event: str
    request_id: str
    ts: float
    attrs: Dict[str, Any] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    @property
    def phase(self) -> str:
        return PHASE_OF.get(self.event, "other")

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "schema_version": self.schema_version,
            "event": self.event,
            "request_id": self.request_id,
            "ts": self.ts,
        }
        for key in sorted(self.attrs):
            out[key] = self.attrs[key]
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JournalEvent":
        validate_event(data)
        attrs = {k: v for k, v in data.items() if k not in _BASE_FIELDS}
        return cls(event=data["event"], request_id=data["request_id"],
                   ts=data["ts"], attrs=attrs,
                   schema_version=data["schema_version"])


class Journal:
    """Bounded, thread-safe event stream with an optional JSONL sink.

    In memory the journal keeps the most recent ``capacity`` events;
    when constructed with (or bound to) a ``path``, every event is also
    appended to the file as it is emitted, so the stream survives the
    process and can be tailed while a run progresses.
    """

    def __init__(self, capacity: int = 4096,
                 path: Optional[str] = None):
        if capacity < 1:
            raise JournalSchemaError(
                f"journal capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._events: "deque[JournalEvent]" = deque(maxlen=capacity)
        self.emitted = 0
        self._fh = None
        self.path = None
        if path is not None:
            self.bind_path(path)

    # ------------------------------------------------------------------ #
    def bind_path(self, path: str) -> None:
        """Start (or switch to) streaming events into ``path``."""
        with self._lock:
            if self._fh is not None:
                self._fh.close()
            self.path = path
            self._fh = open(path, "a")

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    # ------------------------------------------------------------------ #
    def emit(self, event: str, request_id: str,
             **attrs: Any) -> JournalEvent:
        """Validate and record one event (timestamped now)."""
        entry = JournalEvent(event=event, request_id=request_id,
                             ts=time.time(), attrs=attrs)
        self.append(entry)
        return entry

    def append(self, entry: JournalEvent) -> None:
        validate_event(entry.to_dict())
        with self._lock:
            self._events.append(entry)
            self.emitted += 1
            if self._fh is not None:
                line = json.dumps(entry.to_dict())
                self._fh.write(line + "\n")
                self._fh.flush()

    # ------------------------------------------------------------------ #
    def events(self, *, request_id: Optional[str] = None,
               event: Optional[str] = None,
               phase: Optional[str] = None,
               tail: Optional[int] = None) -> List[JournalEvent]:
        """Snapshot of the in-memory stream, oldest first, filtered."""
        with self._lock:
            out = list(self._events)
        out = filter_events(out, request_id=request_id, event=event,
                            phase=phase)
        if tail is not None:
            out = out[-tail:]
        return out

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self.emitted = 0

    def __len__(self) -> int:
        return len(self._events)

    # ------------------------------------------------------------------ #
    def save_jsonl(self, path: str) -> None:
        """Write the in-memory stream as one JSON object per line."""
        events = self.events()
        with open(path, "w") as fh:
            for entry in events:
                fh.write(json.dumps(entry.to_dict()) + "\n")

    @staticmethod
    def load(path: str) -> List[JournalEvent]:
        """Read and validate a JSONL journal file."""
        events: List[JournalEvent] = []
        with open(path) as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise JournalSchemaError(
                        f"{path}:{lineno}: not valid JSON: {exc}") from exc
                try:
                    events.append(JournalEvent.from_dict(data))
                except JournalSchemaError as exc:
                    raise JournalSchemaError(
                        f"{path}:{lineno}: {exc}") from None
        return events


def filter_events(events: Iterable[JournalEvent], *,
                  request_id: Optional[str] = None,
                  event: Optional[str] = None,
                  phase: Optional[str] = None) -> List[JournalEvent]:
    """Filter a stream; ``request_id`` matches exact ids or prefixes."""
    out = list(events)
    if request_id:
        out = [e for e in out if e.request_id == request_id
               or e.request_id.startswith(request_id)]
    if event:
        out = [e for e in out if e.event == event]
    if phase:
        out = [e for e in out if e.phase == phase]
    return out
