"""Flight recorder: bounded ring of complete per-request timelines.

The recorder keeps one :class:`FlightRecord` per request — every
journal event the request produced, its disposition (cold/warm context,
coalesced, cache hit), its queue-wait vs execute breakdown and, when a
traced simulation existed, a compact critical-path blame summary.
Records live in a bounded ring buffer, so any *recent* failed, timed
out, or rejected request can be dumped post-hoc with ``repro
postmortem <request_id>`` (or :func:`postmortem_report` in process)
without tracing having been enabled beforehand.

One process-wide default recorder (:func:`default_recorder`) is shared
by every :class:`~repro.service.PlanningService` and
:class:`~repro.resilience.ResilientTrainer` unless they are given their
own, so a serve workload, its replans, and its resilience episodes land
in a single journal with linked ``request_id`` / ``parent_id`` chains.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from ..errors import ReproError
from .journal import Journal, JournalEvent

TERMINAL_STATUSES = ("completed", "failed", "rejected", "timeout",
                     "coalesced")
DEFAULT_FLIGHT_CAPACITY = 256
DEFAULT_MAX_EVENTS = 512


@dataclass
class FlightRecord:
    """One request's complete timeline, as the recorder saw it."""

    request_id: str
    label: str = ""
    graph: str = ""
    fingerprint: str = ""
    parent_id: str = ""
    priority: int = 0
    status: str = "inflight"
    submitted_ts: float = 0.0
    finished_ts: Optional[float] = None
    queue_seconds: Optional[float] = None
    service_seconds: Optional[float] = None
    events: List[JournalEvent] = field(default_factory=list)
    dropped_events: int = 0
    blame: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @property
    def done(self) -> bool:
        return self.status in TERMINAL_STATUSES

    @property
    def age_seconds(self) -> float:
        end = self.finished_ts if self.finished_ts is not None \
            else time.time()
        return end - self.submitted_ts

    def disposition(self) -> str:
        """One-line cache/coalesce/context summary from the events."""
        kinds = {e.event for e in self.events}
        parts: List[str] = []
        if "context_cold" in kinds:
            parts.append("cold context")
        elif "context_warm" in kinds:
            parts.append("warm context")
        if "cache_hit" in kinds:
            parts.append("served from result cache")
        for e in self.events:
            if e.event == "coalesced":
                parts.append(
                    f"coalesced onto {e.attrs.get('primary', '?')}")
        if not parts:
            parts.append("evaluated fresh")
        return "; ".join(parts)

    def timeline(self) -> List[Dict[str, Any]]:
        """Events as ``{dt, event, attrs}`` rows relative to submission."""
        base = self.submitted_ts or (
            self.events[0].ts if self.events else 0.0)
        return [{"dt": e.ts - base, "event": e.event, "attrs": dict(e.attrs)}
                for e in self.events]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "request_id": self.request_id,
            "label": self.label,
            "graph": self.graph,
            "fingerprint": self.fingerprint,
            "parent_id": self.parent_id,
            "priority": self.priority,
            "status": self.status,
            "submitted_ts": self.submitted_ts,
            "finished_ts": self.finished_ts,
            "queue_seconds": self.queue_seconds,
            "service_seconds": self.service_seconds,
            "dropped_events": self.dropped_events,
            "blame": dict(self.blame),
            "events": [e.to_dict() for e in self.events],
        }


class FlightRecorder:
    """Always-on, bounded per-request recording (journal + ring buffer).

    ``capacity`` bounds how many request records are retained (oldest
    finished records are evicted first); ``max_events`` bounds the
    per-record timeline (overflow is counted in ``dropped_events``, not
    silently lost).  All events are mirrored into ``journal``, the
    durable stream ``--journal-out`` saves.
    """

    def __init__(self, capacity: int = DEFAULT_FLIGHT_CAPACITY,
                 journal: Optional[Journal] = None,
                 max_events: int = DEFAULT_MAX_EVENTS):
        if capacity < 1:
            raise ReproError(
                f"flight-recorder capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.max_events = max_events
        self.journal = journal if journal is not None else Journal()
        self._lock = threading.Lock()
        self._records: "OrderedDict[str, FlightRecord]" = OrderedDict()

    # ------------------------------------------------------------------ #
    def begin(self, request_id: str, *, label: str = "", graph: str = "",
              fingerprint: str = "", parent_id: str = "",
              priority: int = 0) -> FlightRecord:
        """Open a record for one request (idempotent per id)."""
        with self._lock:
            record = self._records.get(request_id)
            if record is None:
                record = FlightRecord(
                    request_id=request_id, label=label, graph=graph,
                    fingerprint=fingerprint, parent_id=parent_id,
                    priority=priority, submitted_ts=time.time(),
                )
                self._records[request_id] = record
                self._evict()
            return record

    def emit(self, request_id: str, event: str, **attrs: Any) -> None:
        """Record one event: append to the request's timeline + journal."""
        entry = self.journal.emit(event, request_id, **attrs)
        with self._lock:
            record = self._records.get(request_id)
            if record is None:
                # deep-layer event for a request we never saw begin()
                # (or whose record was evicted): open a minimal record
                record = FlightRecord(request_id=request_id,
                                      submitted_ts=entry.ts)
                self._records[request_id] = record
                self._evict()
            if len(record.events) < self.max_events:
                record.events.append(entry)
            else:
                record.dropped_events += 1

    def finish(self, request_id: str, status: str, *,
               queue_seconds: Optional[float] = None,
               service_seconds: Optional[float] = None,
               blame: Optional[Dict[str, float]] = None) -> None:
        """Seal a record.  The first terminal status wins; later events
        still append (a wait-stage timeout followed by the computation's
        eventual completion keeps ``timeout`` as the outcome)."""
        with self._lock:
            record = self._records.get(request_id)
            if record is None:
                return
            if not record.done:
                record.status = status
                record.finished_ts = time.time()
            if queue_seconds is not None:
                record.queue_seconds = queue_seconds
            if service_seconds is not None:
                record.service_seconds = service_seconds
            if blame:
                record.blame = dict(blame)

    def _evict(self) -> None:
        """Caller holds the lock: drop oldest (finished-first) records."""
        while len(self._records) > self.capacity:
            victim = None
            for rid, record in self._records.items():
                if record.done:
                    victim = rid
                    break
            if victim is None:
                victim = next(iter(self._records))
            del self._records[victim]

    # ------------------------------------------------------------------ #
    def get(self, request_id: str) -> Optional[FlightRecord]:
        """Look up a record by exact id or unique prefix."""
        with self._lock:
            record = self._records.get(request_id)
            if record is not None:
                return record
            matches = [r for rid, r in self._records.items()
                       if rid.startswith(request_id)]
        return matches[0] if len(matches) == 1 else None

    def records(self, *, status: Optional[str] = None) -> List[FlightRecord]:
        with self._lock:
            out = list(self._records.values())
        if status is not None:
            out = [r for r in out if r.status == status]
        return out

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
        self.journal.clear()

    def __len__(self) -> int:
        return len(self._records)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_events(cls, events: Iterable[JournalEvent],
                    capacity: int = 100_000) -> "FlightRecorder":
        """Rebuild records from a journal stream (e.g. a JSONL file) —
        the path ``repro postmortem`` takes in a fresh process."""
        recorder = cls(capacity=capacity, journal=Journal(capacity=1))
        for entry in events:
            with recorder._lock:
                record = recorder._records.get(entry.request_id)
                if record is None:
                    record = FlightRecord(request_id=entry.request_id,
                                          submitted_ts=entry.ts)
                    recorder._records[entry.request_id] = record
                record.events.append(entry)
                attrs = entry.attrs
                if entry.event in ("request_accepted", "episode_started"):
                    record.label = str(attrs.get("label", record.label))
                    record.graph = str(attrs.get("graph", record.graph))
                    record.priority = int(attrs.get("priority", 0))
                    record.parent_id = str(attrs.get("parent_id",
                                                     record.parent_id))
                    record.fingerprint = str(attrs.get(
                        "fingerprint", record.fingerprint))
                elif entry.event in ("completed", "failed", "timeout",
                                     "rejected", "coalesced"):
                    if not record.done:
                        record.status = entry.event
                        record.finished_ts = entry.ts
                    if "queue_seconds" in attrs:
                        record.queue_seconds = attrs["queue_seconds"]
                    if "service_seconds" in attrs:
                        record.service_seconds = attrs["service_seconds"]
        return recorder


def postmortem_report(record: FlightRecord) -> str:
    """Human-readable post-hoc timeline for one request."""
    head = f"postmortem {record.request_id}"
    if record.label:
        head += f"  (label {record.label!r})"
    lines = [head]
    if record.graph:
        lines.append(f"  graph       : {record.graph}")
    if record.parent_id:
        lines.append(f"  parent      : {record.parent_id}")
    lines.append(f"  status      : {record.status}")
    lines.append(f"  duration    : {record.age_seconds:.6f} s")
    if record.queue_seconds is not None or record.service_seconds is not None:
        queue = record.queue_seconds or 0.0
        execute = record.service_seconds or 0.0
        lines.append(f"  breakdown   : queue wait {queue:.6f} s, "
                     f"execute {execute:.6f} s")
    lines.append(f"  disposition : {record.disposition()}")
    lines.append("  timeline:")
    for row in record.timeline():
        attrs = " ".join(f"{k}={row['attrs'][k]}"
                         for k in sorted(row["attrs"]))
        lines.append(f"    +{row['dt']:.6f}s  {row['event']:20s} {attrs}"
                     .rstrip())
    if record.dropped_events:
        lines.append(f"    ... ({record.dropped_events} more events "
                     f"dropped by the ring buffer)")
    if record.blame:
        ranked = sorted(record.blame.items(), key=lambda kv: -kv[1])
        blame = ", ".join(f"{name} {frac * 100:.0f}%"
                          for name, frac in ranked[:4])
        lines.append(f"  blame       : {blame}")
    return "\n".join(lines)


_DEFAULT: Optional[FlightRecorder] = None
_DEFAULT_LOCK = threading.Lock()


def default_recorder() -> FlightRecorder:
    """The process-wide shared recorder (created on first use)."""
    global _DEFAULT
    if _DEFAULT is None:
        with _DEFAULT_LOCK:
            if _DEFAULT is None:
                _DEFAULT = FlightRecorder()
    return _DEFAULT
