"""Ambient request scope: the correlation-id channel of the stack.

A *request scope* binds the current thread to one ``request_id`` (and,
optionally, the :class:`~repro.telemetry.flight.FlightRecorder` that is
collecting that request's timeline).  The planning service opens a
scope around every request it serves, and the resilience controller
opens one around a whole fault->detect->replan->resume episode, so
instrumentation deep in the stack — the plan builder, the scheduler,
the simulator, the failure detector — can attach the id to spans and
journal events without any of those layers taking a ``request_id``
parameter.

Scopes nest (a replan request served inside a resilience episode pushes
its own scope and pops back to the episode's), are per-thread, and cost
one thread-local read when consulted.  Nothing here depends on the
ambient telemetry session: request-scoped recording works with tracing
completely disabled, which is what makes post-hoc ``repro postmortem``
possible.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Any, Iterator, Optional, Tuple

_LOCAL = threading.local()


def _stack() -> "list[Tuple[str, Any]]":
    stack = getattr(_LOCAL, "scopes", None)
    if stack is None:
        stack = _LOCAL.scopes = []
    return stack


def current_request() -> Optional[str]:
    """The request id the current thread is working for, if any."""
    stack = getattr(_LOCAL, "scopes", None)
    return stack[-1][0] if stack else None


def current_recorder() -> Optional[Any]:
    """The flight recorder attached to the innermost scope, if any."""
    stack = getattr(_LOCAL, "scopes", None)
    return stack[-1][1] if stack else None


@contextlib.contextmanager
def request_scope(request_id: str,
                  recorder: Optional[Any] = None) -> Iterator[str]:
    """Bind this thread to ``request_id`` (and ``recorder``) for a block."""
    stack = _stack()
    stack.append((request_id, recorder))
    try:
        yield request_id
    finally:
        stack.pop()


def record_event(event: str, **attrs: Any) -> None:
    """Emit a journal event for the current request scope, if one exists.

    This is the hook instrumented layers call: one thread-local read
    plus a ``None`` check when no scope is active, so code outside a
    served request (direct library use, baselines, benchmarks) pays
    nothing and emits nothing.
    """
    stack = getattr(_LOCAL, "scopes", None)
    if not stack:
        return
    request_id, recorder = stack[-1]
    if recorder is None:
        return
    recorder.emit(request_id, event, **attrs)
