"""Critical-path attribution over a traced simulation.

Walks a traced :class:`SimulationResult` backwards from the op that
finishes last, following whatever actually delayed each op's start:
either a DAG predecessor (dependency wait) or another op that held one
of its exclusive resources (contention wait).  The result blames every
instant of the makespan on a device, a link, NCCL, or idle gaps —
"where did the iteration time go", the question behind Fig. 8.

The blame fractions partition the makespan: the chain of segments plus
the idle gaps between them covers ``[0, makespan]`` exactly, so the
fractions sum to ~1.0.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..parallel.distgraph import DistGraph, DistOp, DistOpKind
from ..simulation.metrics import SimulationResult, union_length

IDLE_KEY = "(idle)"
_EPS = 1e-9


def blame_resource(op: DistOp) -> str:
    """The single resource an op's runtime is blamed on."""
    if op.is_compute:
        return op.device  # type: ignore[return-value]
    if op.kind is DistOpKind.TRANSFER:
        return f"link:{op.src_device}->{op.dst_device}"
    return "nccl"


@dataclass(frozen=True)
class PathSegment:
    """One op on the critical path, plus the idle gap before it started."""

    op: str
    kind: str
    resource: str
    start: float
    end: float
    idle_before: float
    blocked_by: Optional[str]  # op whose finish released this one

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class CriticalPathReport:
    """Per-resource blame for one simulated iteration."""

    makespan: float
    segments: List[PathSegment] = field(default_factory=list)
    # resource (or IDLE_KEY) -> seconds of the critical path
    blame: Dict[str, float] = field(default_factory=dict)
    # every resource -> total idle seconds over the whole iteration
    per_resource_idle: Dict[str, float] = field(default_factory=dict)
    # every resource -> (gap_start, gap_end) idle windows
    idle_gaps: Dict[str, List[Tuple[float, float]]] = field(
        default_factory=dict)

    @property
    def idle_total(self) -> float:
        return self.blame.get(IDLE_KEY, 0.0)

    def blame_fractions(self) -> Dict[str, float]:
        """Fraction of the makespan blamed on each resource; sums to ~1."""
        if self.makespan <= 0:
            return {k: 0.0 for k in self.blame}
        return {k: v / self.makespan for k, v in self.blame.items()}

    def device_blame(self) -> Dict[str, float]:
        return {k: v for k, v in self.blame.items()
                if not k.startswith("link:") and k not in (IDLE_KEY, "nccl")}

    def link_blame(self) -> Dict[str, float]:
        return {k: v for k, v in self.blame.items() if k.startswith("link:")}

    def straggler(self) -> Optional[str]:
        """The device with the largest critical-path blame."""
        devices = self.device_blame()
        if not devices:
            return None
        return max(sorted(devices), key=lambda d: devices[d])

    def summary(self, top: int = 12) -> str:
        """Human-readable blame table (largest share first)."""
        fractions = self.blame_fractions()
        lines = [f"critical path over {self.makespan * 1e3:.2f} ms "
                 f"({len(self.segments)} ops):"]
        ranked = sorted(fractions.items(), key=lambda kv: (-kv[1], kv[0]))
        for resource, fraction in ranked[:top]:
            seconds = self.blame[resource]
            lines.append(f"  {resource:>26s}  {fraction * 100:5.1f}%  "
                         f"{seconds * 1e3:8.2f} ms")
        if len(ranked) > top:
            lines.append(f"  (+{len(ranked) - top} more resources)")
        straggler = self.straggler()
        if straggler is not None:
            lines.append(f"straggler: {straggler}")
        return "\n".join(lines)


def critical_path(dist: DistGraph,
                  result: SimulationResult) -> CriticalPathReport:
    """Attribute the makespan of a traced run (``trace=True``)."""
    schedule = result.schedule
    if not schedule:
        raise ValueError("result has no trace; simulate with trace=True")

    ops = {name: dist.op(name) for name in schedule}
    # resource -> ops that occupy it, sorted by finish time (for the
    # "who held my resource last" lookup)
    holders: Dict[str, List[Tuple[float, str]]] = {}
    for name, (start, end) in schedule.items():
        for r in ops[name].resources():
            holders.setdefault(r, []).append((end, name))
    for entries in holders.values():
        entries.sort()
    holder_ends: Dict[str, List[float]] = {
        r: [end for end, _ in entries] for r, entries in holders.items()
    }

    def latest_holder(resource: str, before: float,
                      exclude: str) -> Optional[Tuple[float, str]]:
        """Last op on ``resource`` finishing at or before ``before``."""
        entries = holders.get(resource)
        if not entries:
            return None
        idx = bisect_right(holder_ends[resource], before + _EPS) - 1
        while idx >= 0:
            end, name = entries[idx]
            if name != exclude:
                return end, name
            idx -= 1
        return None

    def find_blocker(name: str) -> Optional[Tuple[float, str]]:
        """Whoever delayed ``name``: the latest-finishing predecessor or
        prior holder of one of its resources."""
        start = schedule[name][0]
        best: Optional[Tuple[float, str]] = None
        for pred in dist.predecessors(name):
            if pred in schedule:
                cand = (schedule[pred][1], pred)
                if best is None or cand > best:
                    best = cand
        for r in ops[name].resources():
            cand = latest_holder(r, start, name)
            if cand is not None and (best is None or cand > best):
                best = cand
        return best

    # start from the op that finishes last (ties broken deterministically)
    current = max(schedule, key=lambda n: (schedule[n][1], schedule[n][0], n))
    segments: List[PathSegment] = []
    visited = set()
    while current is not None and current not in visited:
        visited.add(current)
        start, end = schedule[current]
        blocker = find_blocker(current)
        if blocker is not None and blocker[0] > start + _EPS:
            blocker = None  # only zero-duration artefacts reach here
        idle_before = start - blocker[0] if blocker is not None else start
        segments.append(PathSegment(
            op=current,
            kind=ops[current].kind.value,
            resource=blame_resource(ops[current]),
            start=start,
            end=end,
            idle_before=max(0.0, idle_before),
            blocked_by=blocker[1] if blocker is not None else None,
        ))
        current = blocker[1] if blocker is not None else None
    segments.reverse()

    makespan = result.makespan
    blame: Dict[str, float] = {}
    idle = 0.0
    for seg in segments:
        blame[seg.resource] = blame.get(seg.resource, 0.0) + seg.duration
        idle += seg.idle_before
    # a truncated trace (e.g. a device lost mid-iteration) ends before
    # the makespan: blame the uncovered tail on idle so the fractions
    # still partition [0, makespan] and sum to ~1.  For a complete trace
    # the last segment ends exactly at the makespan and this is a no-op.
    tail_gap = makespan - segments[-1].end
    if tail_gap > _EPS:
        idle += tail_gap
    if idle > _EPS:
        blame[IDLE_KEY] = idle

    # whole-iteration idle-gap breakdown, per resource
    intervals: Dict[str, List[Tuple[float, float]]] = {}
    for name, (start, end) in schedule.items():
        intervals.setdefault(blame_resource(ops[name]), []).append(
            (start, end))
    per_resource_idle: Dict[str, float] = {}
    idle_gaps: Dict[str, List[Tuple[float, float]]] = {}
    for resource, ivs in intervals.items():
        busy = union_length(ivs)
        per_resource_idle[resource] = max(0.0, makespan - busy)
        gaps: List[Tuple[float, float]] = []
        cursor = 0.0
        for start, end in sorted(ivs):
            if start > cursor + _EPS:
                gaps.append((cursor, start))
            cursor = max(cursor, end)
        if makespan > cursor + _EPS:
            gaps.append((cursor, makespan))
        idle_gaps[resource] = gaps

    return CriticalPathReport(
        makespan=makespan,
        segments=segments,
        blame=blame,
        per_resource_idle=per_resource_idle,
        idle_gaps=idle_gaps,
    )
