"""Nested-span tracing with a context-manager API.

A :class:`Tracer` records wall-clock spans organised into a tree (one
stack per thread, so concurrent threads trace independently).  Spans are
near-zero cost when the tracer is disabled: ``span()`` returns a shared
no-op context manager without allocating anything.

Export surfaces:

- :meth:`Tracer.to_events` — flat list of span dicts;
- :meth:`Tracer.save_jsonl` — one JSON object per line (stream-friendly);
- :meth:`Tracer.span_tree` — nested parent/children structure;
- :meth:`Tracer.chrome_events` — ``ph: "X"`` slices for chrome://tracing.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from typing import Any, Dict, List, Optional

from .context import current_request


class Span:
    """One timed region.  Use as a context manager via ``Tracer.span``."""

    __slots__ = ("tracer", "name", "attrs", "span_id", "parent_id",
                 "thread_id", "start", "end")

    def __init__(self, tracer: "Tracer", name: str, span_id: int,
                 parent_id: Optional[int], thread_id: int,
                 attrs: Dict[str, Any]):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = span_id
        self.parent_id = parent_id
        self.thread_id = thread_id
        self.start = 0.0
        self.end: Optional[float] = None

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else
                self.tracer._now()) - self.start

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to a live span."""
        self.attrs.update(attrs)
        return self

    # ------------------------------------------------------------------ #
    def __enter__(self) -> "Span":
        self.start = self.tracer._now()
        self.tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end = self.tracer._now()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self.tracer._pop(self)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread_id": self.thread_id,
            "start": self.start,
            "end": self.end,
            "duration": None if self.end is None else self.end - self.start,
            "attrs": self.attrs,
        }


class _NullSpan:
    """Shared no-op stand-in returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def set(self, **attrs: Any) -> "_NullSpan":  # noqa: ARG002
        return self


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects a tree of spans; thread-safe; cheap when disabled."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._epoch = time.perf_counter()
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._spans: List[Span] = []

    # ------------------------------------------------------------------ #
    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        with self._lock:
            self._spans.append(span)

    # ------------------------------------------------------------------ #
    def span(self, name: str, **attrs: Any):
        """Open a nested span: ``with tracer.span("search", model=m): ...``"""
        if not self.enabled:
            return _NULL_SPAN
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else None
        # correlation: every span opened while a request scope is active
        # carries that request's id (service requests, replans, resilience
        # episodes) so one request's spans filter out of a mixed trace
        request_id = current_request()
        if request_id is not None and "request_id" not in attrs:
            attrs = dict(attrs, request_id=request_id)
        else:
            attrs = dict(attrs)
        return Span(self, name, next(self._ids), parent_id,
                    threading.get_ident(), attrs)

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        return len(self._spans)

    # ------------------------------------------------------------------ #
    def to_events(self) -> List[Dict[str, Any]]:
        """Completed spans as dicts, ordered by start time."""
        with self._lock:
            spans = list(self._spans)
        return [s.to_dict() for s in sorted(spans, key=lambda s: s.start)]

    def save_jsonl(self, path: str) -> None:
        """One JSON object per line — tail-able while a run progresses."""
        with open(path, "w") as fh:
            for event in self.to_events():
                fh.write(json.dumps(event) + "\n")

    def span_tree(self) -> List[Dict[str, Any]]:
        """Spans nested under their parents (list of root spans)."""
        events = self.to_events()
        by_id = {e["span_id"]: dict(e, children=[]) for e in events}
        roots: List[Dict[str, Any]] = []
        for event in events:
            node = by_id[event["span_id"]]
            parent = by_id.get(event["parent_id"])
            if parent is not None:
                parent["children"].append(node)
            else:
                roots.append(node)
        return roots

    def chrome_events(self, pid: int = 1,
                      process_name: str = "pipeline") -> List[Dict[str, Any]]:
        """Complete-event slices (+ metadata) for chrome://tracing."""
        events: List[Dict[str, Any]] = [{
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": process_name},
        }]
        tids = sorted({e["thread_id"] for e in self.to_events()})
        tid_of = {t: i for i, t in enumerate(tids)}
        for i, thread in enumerate(tids):
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": i,
                "args": {"name": f"thread-{thread}"},
            })
        for e in self.to_events():
            if e["end"] is None:
                continue
            args = {k: v for k, v in e["attrs"].items()
                    if isinstance(v, (str, int, float, bool))}
            events.append({
                "name": e["name"], "cat": "span", "ph": "X",
                "ts": e["start"] * 1e6,
                "dur": (e["end"] - e["start"]) * 1e6,
                "pid": pid, "tid": tid_of[e["thread_id"]],
                "args": args,
            })
        return events
