"""Per-priority-class latency SLOs with error-budget accounting.

Requests are bucketed into three priority classes (:func:`priority_class`
maps the service's integer priorities), each with a latency objective
and a compliance target.  The tracker counts, per class, how many
requests finished within the objective; the *error budget* is the
fraction of requests the target allows to miss, and the *burn* is how
much of that budget has been consumed — burn > 1.0 means the SLO is
blown.  ``repro status`` renders the snapshot.

The same accounting can be recovered from the service's existing
latency histograms (:meth:`SLOTracker.compliance_from_histogram` walks
the cumulative buckets), which is how a status snapshot derived from a
metrics dump agrees with the live tracker.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..errors import ReproError

#: priority >= CRITICAL_PRIORITY is "critical"; >= 1 "interactive".
CRITICAL_PRIORITY = 10

#: default latency objectives (seconds) and compliance targets per class.
DEFAULT_TARGETS: Dict[str, "SLOTarget"] = {}


def priority_class(priority: int) -> str:
    """Map a request priority to its SLO class."""
    if priority >= CRITICAL_PRIORITY:
        return "critical"
    if priority >= 1:
        return "interactive"
    return "batch"


@dataclass(frozen=True)
class SLOTarget:
    """One class's objective: latency bound + required compliance."""

    objective_seconds: float
    target: float = 0.95          # required fraction within objective

    def __post_init__(self) -> None:
        if self.objective_seconds <= 0:
            raise ReproError(
                f"SLO objective must be positive, "
                f"got {self.objective_seconds}")
        if not 0.0 < self.target <= 1.0:
            raise ReproError(
                f"SLO target must be in (0, 1], got {self.target}")


DEFAULT_TARGETS.update({
    "critical": SLOTarget(objective_seconds=10.0, target=0.99),
    "interactive": SLOTarget(objective_seconds=30.0, target=0.95),
    "batch": SLOTarget(objective_seconds=120.0, target=0.90),
})


@dataclass
class _ClassState:
    requests: int = 0
    good: int = 0                 # finished ok within the objective
    breaches: int = 0             # failed, timed out, or too slow
    latency_sum: float = 0.0
    worst: float = 0.0


class SLOTracker:
    """Error-budget accounting over per-request latency observations."""

    def __init__(self,
                 targets: Optional[Mapping[str, SLOTarget]] = None):
        self.targets: Dict[str, SLOTarget] = dict(
            targets if targets is not None else DEFAULT_TARGETS)
        self._lock = threading.Lock()
        self._classes: Dict[str, _ClassState] = {}

    # ------------------------------------------------------------------ #
    def observe(self, slo_class: str, latency_seconds: float,
                ok: bool = True) -> None:
        """Account one finished request (``ok=False`` always breaches)."""
        target = self.targets.get(slo_class)
        within = (ok and target is not None
                  and latency_seconds <= target.objective_seconds)
        with self._lock:
            state = self._classes.setdefault(slo_class, _ClassState())
            state.requests += 1
            state.latency_sum += latency_seconds
            if latency_seconds > state.worst:
                state.worst = latency_seconds
            if within:
                state.good += 1
            else:
                state.breaches += 1

    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-class SLO state: compliance, budget, and burn."""
        out: Dict[str, Dict[str, float]] = {}
        with self._lock:
            classes = {cls: _ClassState(**vars(state))
                       for cls, state in self._classes.items()}
        for cls, state in sorted(classes.items()):
            target = self.targets.get(cls)
            allowed = ((1.0 - target.target) * state.requests
                       if target is not None else 0.0)
            burn = (state.breaches / allowed if allowed > 0
                    else (math.inf if state.breaches else 0.0))
            out[cls] = {
                "requests": state.requests,
                "good": state.good,
                "breaches": state.breaches,
                "compliance": (state.good / state.requests
                               if state.requests else 1.0),
                "objective_seconds": (target.objective_seconds
                                      if target is not None else None),
                "target": target.target if target is not None else None,
                "error_budget": allowed,
                "budget_burn": burn,
                "mean_latency": (state.latency_sum / state.requests
                                 if state.requests else 0.0),
                "worst_latency": state.worst,
            }
        return out

    # ------------------------------------------------------------------ #
    @staticmethod
    def compliance_from_histogram(histogram,
                                  objective_seconds: float) -> float:
        """Fraction of a latency histogram's observations within the
        objective, estimated from its cumulative buckets (the existing
        ``service_latency_seconds`` / ``service_wait_seconds`` series).
        """
        total = histogram.total
        if total == 0:
            return 1.0
        within = 0
        for bound, cumulative in histogram.cumulative():
            if bound <= objective_seconds:
                within = cumulative
            else:
                break
        return within / total


def replay_tracker(events,
                   targets: Optional[Mapping[str, SLOTarget]] = None,
                   ) -> SLOTracker:
    """Rebuild an :class:`SLOTracker` from journal outcome events —
    what ``repro status --journal`` uses in a fresh process."""
    tracker = SLOTracker(targets)
    for entry in events:
        if entry.event not in ("completed", "failed", "timeout"):
            continue
        attrs = entry.attrs
        cls = attrs.get("slo_class")
        if cls is None:
            continue
        latency = float(attrs.get("seconds", 0.0))
        tracker.observe(cls, latency, ok=entry.event == "completed")
    return tracker
