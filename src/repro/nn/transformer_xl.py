"""Transformer-XL-style strategy network (paper Sec. 4.1.2).

The paper feeds the concatenated per-group embeddings through an 8-layer
Transformer-XL and emits an (M + 4)-way categorical distribution per
group.  We keep Transformer-XL's distinguishing *relative position bias*
(learned per head, clipped at a maximum distance) but drop segment-level
recurrence, which only matters for streams longer than one segment — our
"sequence" is the fixed set of op groups of one DNN.  Layer count and
widths are configurable; tests/benches run a scaled-down instance.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from . import functional as F
from .layers import Dense, LayerNorm, Module, MultiHeadSelfAttention
from .tensor import Tensor, parameter


class RelativePositionBias(Module):
    """Learned bias b[head, clip(i-j)] added to attention scores."""

    def __init__(self, heads: int, max_distance: int,
                 rng: np.random.Generator):
        self.heads = heads
        self.max_distance = max_distance
        self.table = parameter((heads, 2 * max_distance + 1), rng, scale=0.02)

    def __call__(self, n: int) -> Tensor:
        idx = np.arange(n)
        rel = np.clip(idx[None, :] - idx[:, None], -self.max_distance,
                      self.max_distance) + self.max_distance   # (n, n)
        # gather via one-hot matmul to stay differentiable
        one_hot = np.eye(2 * self.max_distance + 1)[rel]        # (n, n, B)
        flat = Tensor(one_hot.reshape(n * n, -1))
        bias = F.matmul(flat, F.transpose(self.table))          # (n*n, heads)
        bias = F.reshape(bias, (n, n, self.heads))
        return F.transpose(bias, (2, 0, 1))                     # (heads, n, n)


class EncoderLayer(Module):
    """Post-norm transformer encoder layer with optional position bias."""
    def __init__(self, dim: int, heads: int, ffn_dim: int,
                 rng: np.random.Generator):
        self.attn = MultiHeadSelfAttention(dim, heads, rng)
        self.norm1 = LayerNorm(dim)
        self.ff1 = Dense(dim, ffn_dim, rng)
        self.ff2 = Dense(ffn_dim, dim, rng)
        self.norm2 = LayerNorm(dim)

    def __call__(self, x: Tensor, bias: Optional[Tensor]) -> Tensor:
        x = self.norm1(F.add(x, self.attn(x, bias)))
        ff = self.ff2(F.gelu(self.ff1(x)))
        return self.norm2(F.add(x, ff))


class StrategyNetwork(Module):
    """Group embeddings (N, in_dim) -> per-group action logits (N, actions)."""

    def __init__(
        self,
        in_dim: int,
        num_actions: int,
        *,
        dim: int = 64,
        heads: int = 4,
        layers: int = 2,
        ffn_dim: Optional[int] = None,
        max_rel_distance: int = 32,
        seed: int = 0,
    ):
        rng = np.random.default_rng(seed)
        ffn_dim = ffn_dim or 2 * dim
        self.input_proj = Dense(in_dim, dim, rng)
        self.position_bias = RelativePositionBias(heads, max_rel_distance, rng)
        self.layers: List[EncoderLayer] = [
            EncoderLayer(dim, heads, ffn_dim, rng) for _ in range(layers)
        ]
        self.head = Dense(dim, num_actions, rng)
        self.num_actions = num_actions

    def __call__(self, group_embeddings: Tensor) -> Tensor:
        n = group_embeddings.shape[0]
        x = self.input_proj(group_embeddings)
        bias = self.position_bias(n)
        for layer in self.layers:
            x = layer(x, bias)
        return self.head(x)  # (N, num_actions) logits
