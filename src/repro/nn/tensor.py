"""A small reverse-mode autodiff engine over numpy arrays.

Powers the GAT graph encoder and the Transformer-XL-style strategy
network (paper Sec. 4.1) without any external ML framework.  Only the ops
those networks need are implemented; everything is dense float32/64.

Design: a :class:`Tensor` wraps an ndarray and (when produced by an op)
a backward closure over its parents.  ``backward()`` topologically sorts
the tape and accumulates gradients.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (reverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # sum leading extra dims
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """A node in the autodiff tape."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward")

    def __init__(self, data, requires_grad: bool = False):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = requires_grad
        self._parents: Tuple["Tensor", ...] = ()
        self._backward: Optional[Callable[[np.ndarray], None]] = None

    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without a gradient needs a scalar output"
                )
            grad = np.ones_like(self.data)
        # topological order of the tape reachable from self
        order: List[Tensor] = []
        seen = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in seen:
                    stack.append((parent, False))

        self._accumulate(np.asarray(grad, dtype=np.float64))
        for node in reversed(order):
            if node._backward is None or node.grad is None:
                continue
            node._backward(node.grad)

    # ------------------------------------------------------------------ #
    # operator sugar (implementations live in functional.py to keep this
    # module focused on the tape mechanics)
    # ------------------------------------------------------------------ #
    def __add__(self, other):
        from . import functional as F
        return F.add(self, _as_tensor(other))

    __radd__ = __add__

    def __mul__(self, other):
        from . import functional as F
        return F.mul(self, _as_tensor(other))

    __rmul__ = __mul__

    def __sub__(self, other):
        from . import functional as F
        return F.add(self, F.scale(_as_tensor(other), -1.0))

    def __rsub__(self, other):
        from . import functional as F
        return F.add(_as_tensor(other), F.scale(self, -1.0))

    def __neg__(self):
        from . import functional as F
        return F.scale(self, -1.0)

    def __matmul__(self, other):
        from . import functional as F
        return F.matmul(self, _as_tensor(other))

    def __truediv__(self, other):
        from . import functional as F
        if isinstance(other, (int, float)):
            return F.scale(self, 1.0 / other)
        return F.div(self, _as_tensor(other))

    def sum(self, axis=None, keepdims: bool = False):
        from . import functional as F
        return F.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False):
        from . import functional as F
        return F.mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape):
        from . import functional as F
        return F.reshape(self, shape)

    def transpose(self, axes=None):
        from . import functional as F
        return F.transpose(self, axes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tensor(shape={self.shape}, grad={'yes' if self.grad is not None else 'no'})"


def _as_tensor(value) -> Tensor:
    if isinstance(value, Tensor):
        return value
    return Tensor(np.asarray(value, dtype=np.float64))


def make_op(data: np.ndarray, parents: Sequence[Tensor],
            backward: Callable[[np.ndarray], None]) -> Tensor:
    """Create a tape node; gradients flow iff any parent requires them."""
    out = Tensor(data)
    out.requires_grad = any(p.requires_grad for p in parents)
    if out.requires_grad:
        out._parents = tuple(parents)
        out._backward = backward
    return out


def parameter(shape: Tuple[int, ...], rng: np.random.Generator,
              scale: Optional[float] = None) -> Tensor:
    """Glorot-initialized trainable tensor."""
    if scale is None:
        fan_in = shape[0] if len(shape) >= 1 else 1
        fan_out = shape[-1] if len(shape) >= 2 else shape[0]
        scale = float(np.sqrt(2.0 / (fan_in + fan_out)))
    t = Tensor(rng.normal(0.0, scale, size=shape))
    t.requires_grad = True
    return t
