"""numpy autodiff engine + layers for the GNN policy (no external ML deps)."""

from . import functional
from .layers import Dense, GATLayer, LayerNorm, Module, MultiHeadSelfAttention
from .optim import SGD, Adam, Optimizer
from .tensor import Tensor, make_op, parameter
from .transformer_xl import EncoderLayer, RelativePositionBias, StrategyNetwork

__all__ = [
    "Tensor",
    "parameter",
    "make_op",
    "functional",
    "Module",
    "Dense",
    "LayerNorm",
    "GATLayer",
    "MultiHeadSelfAttention",
    "StrategyNetwork",
    "EncoderLayer",
    "RelativePositionBias",
    "Optimizer",
    "SGD",
    "Adam",
]
