"""Optimizers for the policy networks."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .tensor import Tensor


class Optimizer:
    """Base optimizer: parameter list + gradient clipping."""
    def __init__(self, params: List[Tensor]):
        if not params:
            raise ValueError("optimizer received no parameters")
        self.params = params

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def _clip(self, max_norm: Optional[float]) -> None:
        if max_norm is None:
            return
        total = 0.0
        for p in self.params:
            if p.grad is not None:
                total += float((p.grad ** 2).sum())
        norm = np.sqrt(total)
        if norm > max_norm and norm > 0:
            factor = max_norm / norm
            for p in self.params:
                if p.grad is not None:
                    p.grad = p.grad * factor


class SGD(Optimizer):
    """Stochastic gradient descent with momentum."""
    def __init__(self, params: List[Tensor], lr: float = 0.01,
                 momentum: float = 0.0, clip_norm: Optional[float] = None):
        super().__init__(params)
        self.lr = lr
        self.momentum = momentum
        self.clip_norm = clip_norm
        self._velocity = [np.zeros_like(p.data) for p in params]

    def step(self) -> None:
        self._clip(self.clip_norm)
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            v *= self.momentum
            v += p.grad
            p.data = p.data - self.lr * v


class Adam(Optimizer):
    """Adam with bias correction."""
    def __init__(self, params: List[Tensor], lr: float = 1e-3,
                 betas=(0.9, 0.999), eps: float = 1e-8,
                 clip_norm: Optional[float] = None):
        super().__init__(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.clip_norm = clip_norm
        self._m = [np.zeros_like(p.data) for p in params]
        self._v = [np.zeros_like(p.data) for p in params]
        self._t = 0

    def step(self) -> None:
        self._clip(self.clip_norm)
        self._t += 1
        bc1 = 1.0 - self.beta1 ** self._t
        bc2 = 1.0 - self.beta2 ** self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            m *= self.beta1
            m += (1 - self.beta1) * p.grad
            v *= self.beta2
            v += (1 - self.beta2) * (p.grad ** 2)
            m_hat = m / bc1
            v_hat = v / bc2
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
