"""Neural-network layers built on the autodiff engine."""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from . import functional as F
from .tensor import Tensor, parameter


class Module:
    """Minimal module base: parameter registration and traversal."""

    def parameters(self) -> List[Tensor]:
        params: List[Tensor] = []
        for value in self.__dict__.values():
            if isinstance(value, Tensor) and value.requires_grad:
                params.append(value)
            elif isinstance(value, Module):
                params.extend(value.parameters())
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        params.extend(item.parameters())
                    elif isinstance(item, Tensor) and item.requires_grad:
                        params.append(item)
        return params

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        return sum(int(np.prod(p.shape)) for p in self.parameters())

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {str(i): p.data.copy() for i, p in enumerate(self.parameters())}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        params = self.parameters()
        if len(state) != len(params):
            raise ValueError(
                f"state has {len(state)} tensors, model has {len(params)}"
            )
        for i, p in enumerate(params):
            incoming = state[str(i)]
            if incoming.shape != p.data.shape:
                raise ValueError(
                    f"shape mismatch for parameter {i}: "
                    f"{incoming.shape} vs {p.data.shape}"
                )
            p.data = incoming.copy()


class Dense(Module):
    """Affine layer y = x W + b."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, bias: bool = True):
        self.weight = parameter((in_features, out_features), rng)
        self.bias = None
        if bias:
            self.bias = Tensor(np.zeros(out_features))
            self.bias.requires_grad = True

    def __call__(self, x: Tensor) -> Tensor:
        out = F.matmul(x, self.weight)
        if self.bias is not None:
            out = F.add(out, self.bias)
        return out


class LayerNorm(Module):
    """Layer normalization over the last axis with learned gain/bias."""
    def __init__(self, dim: int):
        self.gain = Tensor(np.ones(dim))
        self.gain.requires_grad = True
        self.bias = Tensor(np.zeros(dim))
        self.bias.requires_grad = True

    def __call__(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.gain, self.bias)


class GATLayer(Module):
    """One multi-head graph-attention layer (Velickovic et al., 2017).

    ``e_o = ||_k sigma( sum_j alpha^k_{oj} W^k e'_j )`` with attention
    coefficients from a shared additive mechanism, masked to the graph's
    neighbourhood (paper Sec. 4.1.1).
    """

    def __init__(self, in_dim: int, out_dim: int, heads: int,
                 rng: np.random.Generator):
        if out_dim % heads != 0:
            raise ValueError(f"out_dim {out_dim} not divisible by heads {heads}")
        self.heads = heads
        self.head_dim = out_dim // heads
        self.w = [parameter((in_dim, self.head_dim), rng) for _ in range(heads)]
        self.attn_src = [parameter((self.head_dim, 1), rng) for _ in range(heads)]
        self.attn_dst = [parameter((self.head_dim, 1), rng) for _ in range(heads)]

    def __call__(self, h: Tensor, adjacency_mask: np.ndarray) -> Tensor:
        """``h``: (O, in_dim); ``adjacency_mask``: (O, O) bool, True where
        node j is a neighbour of node o (self-loops included)."""
        outputs = []
        for k in range(self.heads):
            wh = F.matmul(h, self.w[k])                      # (O, d)
            src_score = F.matmul(wh, self.attn_src[k])       # (O, 1)
            dst_score = F.matmul(wh, self.attn_dst[k])       # (O, 1)
            logits = F.add(src_score, F.transpose(dst_score))  # (O, O)
            logits = F.leaky_relu(logits)
            logits = F.masked_fill(logits, adjacency_mask, -1e9)
            alpha = F.softmax(logits, axis=-1)
            out = F.matmul(alpha, wh)                        # (O, d)
            outputs.append(F.elu(out))
        return F.concat(outputs, axis=-1)


class MultiHeadSelfAttention(Module):
    """Standard scaled dot-product self-attention over a set of tokens."""

    def __init__(self, dim: int, heads: int, rng: np.random.Generator):
        if dim % heads != 0:
            raise ValueError(f"dim {dim} not divisible by heads {heads}")
        self.heads = heads
        self.head_dim = dim // heads
        self.wq = Dense(dim, dim, rng, bias=False)
        self.wk = Dense(dim, dim, rng, bias=False)
        self.wv = Dense(dim, dim, rng, bias=False)
        self.wo = Dense(dim, dim, rng)

    def __call__(self, x: Tensor,
                 position_bias: Optional[Tensor] = None) -> Tensor:
        n, dim = x.shape
        q = F.reshape(self.wq(x), (n, self.heads, self.head_dim))
        k = F.reshape(self.wk(x), (n, self.heads, self.head_dim))
        v = F.reshape(self.wv(x), (n, self.heads, self.head_dim))
        q = F.transpose(q, (1, 0, 2))  # (heads, n, d)
        k = F.transpose(k, (1, 2, 0))  # (heads, d, n)
        v = F.transpose(v, (1, 0, 2))
        scores = F.scale(F.matmul(q, k), 1.0 / np.sqrt(self.head_dim))
        if position_bias is not None:
            scores = F.add(scores, position_bias)
        alpha = F.softmax(scores, axis=-1)
        out = F.matmul(alpha, v)       # (heads, n, d)
        out = F.transpose(out, (1, 0, 2))
        out = F.reshape(out, (n, dim))
        return self.wo(out)
