"""Differentiable operations for the autodiff engine."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from .tensor import Tensor, _unbroadcast, make_op


def add(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise addition with numpy broadcasting."""
    data = a.data + b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(grad, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(grad, b.shape))

    return make_op(data, (a, b), backward)


def mul(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise multiplication with numpy broadcasting."""
    data = a.data * b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(grad * b.data, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(grad * a.data, b.shape))

    return make_op(data, (a, b), backward)


def div(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise division."""
    data = a.data / b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(grad / b.data, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(-grad * a.data / (b.data ** 2), b.shape))

    return make_op(data, (a, b), backward)


def scale(a: Tensor, factor: float) -> Tensor:
    """Multiply a tensor by a python scalar."""
    data = a.data * factor

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * factor)

    return make_op(data, (a,), backward)


def matmul(a: Tensor, b: Tensor) -> Tensor:
    """Matrix product (batched via numpy @ semantics)."""
    data = a.data @ b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            ga = grad @ np.swapaxes(b.data, -1, -2)
            a._accumulate(_unbroadcast(ga, a.shape))
        if b.requires_grad:
            gb = np.swapaxes(a.data, -1, -2) @ grad
            b._accumulate(_unbroadcast(gb, b.shape))

    return make_op(data, (a, b), backward)


def relu(a: Tensor) -> Tensor:
    """max(x, 0)."""
    mask = a.data > 0
    data = a.data * mask

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * mask)

    return make_op(data, (a,), backward)


def leaky_relu(a: Tensor, alpha: float = 0.2) -> Tensor:
    """x if x > 0 else alpha * x (the GAT attention nonlinearity)."""
    mask = a.data > 0
    data = np.where(mask, a.data, alpha * a.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * np.where(mask, 1.0, alpha))

    return make_op(data, (a,), backward)


def elu(a: Tensor, alpha: float = 1.0) -> Tensor:
    """Exponential linear unit."""
    mask = a.data > 0
    exp_part = alpha * (np.exp(np.minimum(a.data, 0.0)) - 1.0)
    data = np.where(mask, a.data, exp_part)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * np.where(mask, 1.0, exp_part + alpha))

    return make_op(data, (a,), backward)


def tanh(a: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    data = np.tanh(a.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * (1.0 - data ** 2))

    return make_op(data, (a,), backward)


def exp(a: Tensor) -> Tensor:
    """Elementwise exponential."""
    data = np.exp(a.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * data)

    return make_op(data, (a,), backward)


def log(a: Tensor, eps: float = 1e-12) -> Tensor:
    """Elementwise natural log (stabilized with eps)."""
    data = np.log(a.data + eps)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad / (a.data + eps))

    return make_op(data, (a,), backward)


def gelu(a: Tensor) -> Tensor:
    """tanh-approximation GELU."""
    c = np.sqrt(2.0 / np.pi)
    inner = c * (a.data + 0.044715 * a.data ** 3)
    t = np.tanh(inner)
    data = 0.5 * a.data * (1.0 + t)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            dt = (1.0 - t ** 2) * c * (1.0 + 3 * 0.044715 * a.data ** 2)
            a._accumulate(grad * (0.5 * (1.0 + t) + 0.5 * a.data * dt))

    return make_op(data, (a,), backward)


def sum(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001
    """Sum over axis (or all elements)."""
    data = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(grad: np.ndarray) -> None:
        if not a.requires_grad:
            return
        g = grad
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis=axis)
        a._accumulate(np.broadcast_to(g, a.shape).copy())

    return make_op(data, (a,), backward)


def mean(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    """Mean over axis (or all elements)."""
    if axis is None:
        count = a.data.size
    elif isinstance(axis, tuple):
        count = int(np.prod([a.shape[ax] for ax in axis]))
    else:
        count = a.shape[axis]
    return scale(sum(a, axis=axis, keepdims=keepdims), 1.0 / count)


def reshape(a: Tensor, shape: Sequence[int]) -> Tensor:
    """View with a new shape."""
    original = a.shape
    data = a.data.reshape(shape)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad.reshape(original))

    return make_op(data, (a,), backward)


def transpose(a: Tensor, axes: Optional[Sequence[int]] = None) -> Tensor:
    """Permute axes (reverse when axes is None)."""
    data = np.transpose(a.data, axes)
    if axes is None:
        inverse = None
    else:
        inverse = np.argsort(axes)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(np.transpose(grad, inverse))

    return make_op(data, (a,), backward)


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along an axis."""
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for i, t in enumerate(tensors):
            if not t.requires_grad:
                continue
            index = [slice(None)] * grad.ndim
            index[axis] = slice(offsets[i], offsets[i + 1])
            t._accumulate(grad[tuple(index)])

    return make_op(data, tuple(tensors), backward)


def masked_fill(a: Tensor, mask: np.ndarray, value: float) -> Tensor:
    """Where ``mask`` is True keep ``a``; elsewhere substitute ``value``
    (no gradient flows to substituted positions)."""
    data = np.where(mask, a.data, value)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * mask)

    return make_op(data, (a,), backward)


def softmax(a: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along an axis."""
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    data = e / e.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            dot = (grad * data).sum(axis=axis, keepdims=True)
            a._accumulate(data * (grad - dot))

    return make_op(data, (a,), backward)


def log_softmax(a: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable log-softmax along an axis."""
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    logsum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    data = shifted - logsum
    soft = np.exp(data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

    return make_op(data, (a,), backward)


def layer_norm(a: Tensor, gain: Tensor, bias: Tensor,
               eps: float = 1e-5) -> Tensor:
    """LayerNorm over the last axis."""
    mu = a.data.mean(axis=-1, keepdims=True)
    var = a.data.var(axis=-1, keepdims=True)
    inv = 1.0 / np.sqrt(var + eps)
    norm = (a.data - mu) * inv
    data = norm * gain.data + bias.data
    dim = a.shape[-1]

    def backward(grad: np.ndarray) -> None:
        if gain.requires_grad:
            gain._accumulate(
                _unbroadcast(grad * norm, gain.shape)
            )
        if bias.requires_grad:
            bias._accumulate(_unbroadcast(grad, bias.shape))
        if a.requires_grad:
            gnorm = grad * gain.data
            term1 = gnorm
            term2 = gnorm.mean(axis=-1, keepdims=True)
            term3 = norm * (gnorm * norm).mean(axis=-1, keepdims=True)
            a._accumulate(inv * (term1 - term2 - term3))

    return make_op(data, (a, gain, bias), backward)


def dropout(a: Tensor, rate: float, rng: Optional[np.random.Generator],
            training: bool) -> Tensor:
    """Inverted dropout (identity when not training)."""
    if not training or rate <= 0.0 or rng is None:
        return a
    keep = 1.0 - rate
    mask = (rng.random(a.shape) < keep) / keep

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * mask)

    return make_op(a.data * mask, (a,), backward)
