"""Multi-job resource allocation using HeteroG as a blackbox (Sec. 7).

"For multi-job scheduling, HeteroG can be used as a blackbox, feeding in
resource provisioning to a job and obtaining the training speed of the
job based on produced strategies; then we can balance resource
allocation to different jobs, to achieve targeted global objectives such
as fairness, maximal resource utilization or job completion time
minimization."

This module implements that loop: it partitions the cluster's GPUs among
jobs, queries the planning service for each job's training speed on each
candidate allocation, and greedily assigns GPUs to maximize the chosen
objective.  Speed queries are typed :class:`~repro.service.PlanRequest`
objects, so identical (graph, allocation) candidates — which the greedy
loop re-evaluates constantly — are answered from the service's
fingerprint-keyed result cache instead of re-profiling and re-compiling
the sub-cluster.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from .baselines.dp import dp_strategy
from .cluster.topology import Cluster
from .config import HeteroGConfig
from .errors import ReproError
from .graph.dag import ComputationGraph
from .service import PlanningService, PlanRequest


class Objective(enum.Enum):
    """Global allocation objective across jobs."""
    MAX_THROUGHPUT = "throughput"    # maximize total samples/sec
    MIN_MAKESPAN = "makespan"        # minimize the slowest job's epoch time
    FAIRNESS = "fairness"            # maximize the minimum relative speed


@dataclass
class Job:
    """One training job competing for cluster GPUs."""

    name: str
    graph: ComputationGraph
    global_batch: int
    min_gpus: int = 1

    def __post_init__(self) -> None:
        if self.min_gpus < 1:
            raise ReproError(f"job {self.name}: min_gpus must be >= 1")


@dataclass
class Allocation:
    """GPUs assigned to each job plus the predicted speeds."""

    devices: Dict[str, List[str]] = field(default_factory=dict)
    speeds: Dict[str, float] = field(default_factory=dict)  # samples/sec
    idle: List[str] = field(default_factory=list)  # GPUs nobody benefits from

    def total_throughput(self) -> float:
        return sum(self.speeds.values())

    def min_speed(self) -> float:
        return min(self.speeds.values()) if self.speeds else 0.0


SpeedFn = Callable[[Job, Sequence[str]], float]


def cp_ar_speed_fn(cluster: Cluster, seed: int = 0, iterations: int = 2,
                   service: Optional[PlanningService] = None,
                   prune: bool = True) -> SpeedFn:
    """Fast speed oracle: CP-AR data parallelism on the sub-cluster.

    A full HeteroG search per candidate allocation is the faithful (but
    expensive) oracle; CP-AR is a monotone proxy good enough to drive the
    outer allocation loop, as the paper suggests using HeteroG "as a
    blackbox".

    Every query goes through the planning service as a *build* request
    (explicit CP-AR strategy, engine-measured), so profiles and compiled
    plans are reused per candidate device set and identical queries hit
    the service's result cache.
    """
    plan_service = service if service is not None \
        else PlanningService(workers=0, name="multijob")
    config = HeteroGConfig(seed=seed)

    def speed(job: Job, devices: Sequence[str]) -> float:
        sub = cluster.subcluster(list(devices))
        if sub.num_devices == 1:
            from .parallel.strategy import single_device_strategy
            strategy = single_device_strategy(job.graph, sub)
        else:
            strategy = dp_strategy("CP-AR", job.graph, sub)
        result = plan_service.plan(PlanRequest(
            graph=job.graph,
            cluster=sub,
            strategy=strategy,
            measure_iterations=iterations,
            config=config,
            label=f"multijob:{job.name}",
            prune=prune,
        ))
        return result.speed(job.global_batch)

    return speed


class MultiJobAllocator:
    """Greedy marginal-gain GPU allocation across jobs."""

    def __init__(self, cluster: Cluster, speed_fn: Optional[SpeedFn] = None,
                 seed: int = 0, service: Optional[PlanningService] = None):
        self.cluster = cluster
        self.service = service if service is not None \
            else PlanningService(workers=0, name="multijob")
        self.speed_fn = speed_fn or cp_ar_speed_fn(cluster, seed=seed,
                                                   service=self.service)

    def _speed(self, job: Job, devices: Sequence[str]) -> float:
        return self.speed_fn(job, devices)

    def allocate(self, jobs: Sequence[Job],
                 objective: Objective = Objective.MAX_THROUGHPUT
                 ) -> Allocation:
        """Assign every GPU to some job, greedily by marginal objective
        gain.  Jobs first receive their ``min_gpus``."""
        if not jobs:
            raise ReproError("no jobs to allocate")
        total_min = sum(j.min_gpus for j in jobs)
        if total_min > self.cluster.num_devices:
            raise ReproError(
                f"jobs require {total_min} GPUs, cluster has "
                f"{self.cluster.num_devices}"
            )
        names = {j.name for j in jobs}
        if len(names) != len(jobs):
            raise ReproError("job names must be unique")

        # seed every job with its minimum, strongest devices first
        # (deterministic: devices in cluster order)
        free = list(self.cluster.device_ids)
        assigned: Dict[str, List[str]] = {j.name: [] for j in jobs}
        for job in jobs:
            for _ in range(job.min_gpus):
                assigned[job.name].append(free.pop(0))

        # greedy: hand each remaining GPU to the job that benefits most;
        # a GPU stays idle when every job's marginal gain is negative
        # (forcing it onto a job would slow that job down)
        idle: List[str] = []
        while free:
            device = free.pop(0)
            best_job = None
            best_gain = 0.0
            for job in jobs:
                current = self._speed(job, assigned[job.name])
                upgraded = self._speed(job, assigned[job.name] + [device])
                gain = self._objective_gain(objective, job, jobs, assigned,
                                            current, upgraded)
                if gain > best_gain:
                    best_gain = gain
                    best_job = job
            if best_job is None:
                idle.append(device)
            else:
                assigned[best_job.name].append(device)

        speeds = {
            job.name: self._speed(job, assigned[job.name]) for job in jobs
        }
        return Allocation(devices=assigned, speeds=speeds, idle=idle)

    def _objective_gain(self, objective: Objective, job: Job,
                        jobs: Sequence[Job],
                        assigned: Dict[str, List[str]],
                        current: float, upgraded: float) -> float:
        if objective is Objective.MAX_THROUGHPUT:
            return upgraded - current
        if objective is Objective.FAIRNESS:
            # help the currently slowest job the most
            speeds = {
                j.name: self._speed(j, assigned[j.name]) for j in jobs
            }
            rank_bonus = 1.0 / (1e-9 + speeds[job.name])
            return (upgraded - current) * rank_bonus
        if objective is Objective.MIN_MAKESPAN:
            # marginal reduction of the job's epoch time
            if current <= 0 or upgraded <= 0:
                return upgraded - current
            epochs_now = job.global_batch / current
            epochs_up = job.global_batch / upgraded
            return epochs_now - epochs_up
        raise ReproError(f"unknown objective {objective}")
