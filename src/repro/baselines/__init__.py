"""Baselines: the four DP schemes and the related-work systems of Fig. 9."""

from .dp import DP_BASELINES, all_dp_strategies, dp_strategy
from .flexflow import FlexFlowSearch, flexflow_strategy
from .hetpipe import hetpipe_strategy, virtual_workers
from .horovod import horovod_deployment, horovod_strategy
from .post import PostSearch, post_strategy

__all__ = [
    "DP_BASELINES",
    "dp_strategy",
    "all_dp_strategies",
    "horovod_strategy",
    "horovod_deployment",
    "flexflow_strategy",
    "FlexFlowSearch",
    "hetpipe_strategy",
    "virtual_workers",
    "post_strategy",
    "PostSearch",
]
