"""Post-style baseline (Gao et al., 2018).

Post "integrates an online RL algorithm and a batch learning algorithm"
(cross-entropy minimization + proximal policy optimization) to learn
*device placement* of DNN operations; per the paper's Sec. 6.8 critique,
it "only considers operation-to-device placement but not operation-level
data parallelism".

Reproduction at that scope: a cross-entropy-method search over per-group
device assignments (MP only, no replication, no comm-method choice,
default FIFO order), scored on the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..agent.policy import actions_to_strategy
from ..cluster.topology import Cluster
from ..graph.dag import ComputationGraph
from ..graph.grouping import Grouping, group_operations
from ..parallel.strategy import Strategy
from ..plan import BatchEvaluator, BestSoFar, PlanBuilder
from ..profiling.profiler import Profile, Profiler


@dataclass
class CEMResult:
    """Outcome of one cross-entropy placement search."""
    strategy: Strategy
    time: float
    evaluations: int


class PostSearch:
    """Cross-entropy placement search (device-only action space)."""

    def __init__(self, graph: ComputationGraph, cluster: Cluster,
                 profile: Optional[Profile] = None, *, max_groups: int = 60,
                 seed: int = 0, workers: int = 1, prune: bool = True):
        self.graph = graph
        # branch-and-bound pruning is search-transparent for CEM: a
        # candidate is only aborted when provably worse than BOTH the
        # global best AND the round's would-be elite cut (keep=num_elite),
        # so the elite set, the refit distribution and the final best are
        # bit-identical to the unpruned search.
        self.prune = prune
        self.cluster = cluster
        self.profile = profile or Profiler(seed=seed).profile(graph, cluster)
        avg = {op.name: op.flops for op in graph}
        self.grouping: Grouping = group_operations(graph, avg, max_groups)
        self.builder = PlanBuilder(
            graph, cluster, self.profile,
            use_order_scheduling=False,
            group_of=self.grouping.group_of,
        )
        # the samples of one CEM round are independent: evaluate them as
        # a batch (parallel when workers > 1, identical results either way)
        self.batch_evaluator = BatchEvaluator(self.builder,
                                              max_workers=workers)
        self.rng = np.random.default_rng(seed)

    def _evaluate(self, placements: np.ndarray) -> float:
        strategy = actions_to_strategy(self.graph, self.cluster,
                                       self.grouping, placements)
        outcome = self.builder.evaluate(strategy)
        return outcome.time if outcome.feasible else float("inf")

    def _evaluate_batch(self, batch: List[np.ndarray],
                        best: Optional[BestSoFar] = None) -> List[float]:
        strategies = [
            actions_to_strategy(self.graph, self.cluster, self.grouping,
                                draws)
            for draws in batch
        ]
        outcomes = self.batch_evaluator.evaluate(strategies, best=best,
                                                 prune=self.prune)
        # pruned outcomes score inf, same as infeasible ones: they are
        # provably outside the elite cut, so their exact time is moot
        return [o.time if o.feasible else float("inf") for o in outcomes]

    def search(self, rounds: int = 8, samples_per_round: int = 12,
               elite_fraction: float = 0.25,
               smoothing: float = 0.7) -> CEMResult:
        m = self.cluster.num_devices
        n = self.grouping.num_groups
        probs = np.full((n, m), 1.0 / m)
        best: Optional[np.ndarray] = None
        best_time = float("inf")
        evaluations = 0
        num_elite = max(1, int(samples_per_round * elite_fraction))
        # global best-so-far spans rounds; each round layers a
        # keep=num_elite tracker on top so only candidates that can
        # neither win overall nor make the round's elite set are pruned
        global_best = BestSoFar() if self.prune else None
        for _ in range(rounds):
            batch: List[np.ndarray] = [
                np.array([
                    self.rng.choice(m, p=probs[g]) for g in range(n)
                ])
                for _ in range(samples_per_round)
            ]
            round_best = (BestSoFar(keep=num_elite, floor=global_best)
                          if self.prune else None)
            scores = self._evaluate_batch(batch, best=round_best)
            evaluations += len(batch)
            for draws, time in zip(batch, scores):
                if time < best_time:
                    best, best_time = draws.copy(), time
            order = np.argsort(scores)[:num_elite]
            elite = np.stack([batch[i] for i in order])
            counts = np.zeros((n, m))
            for row in elite:
                counts[np.arange(n), row] += 1.0
            refit = counts / counts.sum(axis=1, keepdims=True)
            probs = smoothing * probs + (1 - smoothing) * refit
        if best is None:  # pragma: no cover - defensive
            best = np.zeros(n, dtype=np.int64)
            best_time = self._evaluate(best)
        strategy = actions_to_strategy(self.graph, self.cluster,
                                       self.grouping, best)
        return CEMResult(strategy=strategy, time=best_time,
                         evaluations=evaluations)


def post_strategy(graph: ComputationGraph, cluster: Cluster,
                  profile: Optional[Profile] = None, *, seed: int = 0,
                  rounds: int = 8) -> Strategy:
    """Convenience wrapper: run the CEM placement search, return its best strategy."""
    return PostSearch(graph, cluster, profile, seed=seed).search(rounds).strategy
