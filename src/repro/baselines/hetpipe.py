"""HetPipe-style baseline (Park et al., 2020).

HetPipe "uses heuristics to divide GPUs into multiple virtual workers,
utilizes layer-level pipeline parallelism within each virtual worker and
data parallelism across different virtual workers, but does not consider
operation-level optimization" (paper Sec. 6.8).

Reproduction at that scope:

- virtual workers (VWs) = the homogeneous GPU groups of each server;
- inside a VW, layers are partitioned into contiguous blocks across the
  VW's GPUs, balanced by FLOPs (layer-level model placement — the
  steady-state pipeline behaviour without micro-batch semantics, which
  HeteroG's synchronous setting doesn't allow anyway);
- across VWs, data parallelism with PS synchronization, batch shares
  proportional to VW aggregate compute power.

Per op this yields a DP strategy whose replica set contains one device
per VW — the device owning the op's layer block in that VW.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..cluster.topology import Cluster
from ..graph.dag import ComputationGraph
from ..parallel.strategy import (
    CommMethod,
    OpStrategy,
    ParallelKind,
    Strategy,
)


def virtual_workers(cluster: Cluster) -> List[List[str]]:
    """One virtual worker per server (homogeneous GPUs within a server)."""
    return [
        [d.device_id for d in cluster.devices_on_server(server)]
        for server in cluster.server_names()
    ]


def _layer_blocks(graph: ComputationGraph, num_blocks: int) -> Dict[str, int]:
    """Assign every op to one of ``num_blocks`` contiguous layer blocks.

    Blocks are FLOP-balanced over the *forward* ops; each backward/apply
    op is colocated with its forward op's block (the standard pipeline
    layout — splitting forward and backward across devices would move
    every activation twice).
    """
    from ..graph.op import OpPhase
    order = [n for n in graph.topological_order()
             if graph.op(n).phase in (OpPhase.INPUT, OpPhase.FORWARD,
                                      OpPhase.LOSS)]
    flops = np.asarray([max(graph.op(n).flops, 1.0) for n in order])
    cumulative = np.cumsum(flops)
    total = cumulative[-1]
    block_of: Dict[str, int] = {}
    for i, name in enumerate(order):
        block_of[name] = min(int(cumulative[i] / total * num_blocks),
                             num_blocks - 1)
    for name in graph.op_names:
        if name in block_of:
            continue
        ref = graph.op(name).forward_ref
        block_of[name] = block_of.get(ref, num_blocks - 1)
    return block_of


def strip_gradient_sync(dist):
    """Remove the synchronous gradient path (pushes, aggregation, apply,
    pulls) from a compiled graph, returning (stripped graph, bytes of
    gradient traffic removed).

    HetPipe synchronizes with *bounded staleness* (WSP): parameter pushes
    and pulls overlap the following iterations instead of gating this one,
    at the cost of the exact synchronous-SGD semantics HeteroG preserves.
    The steady-state iteration time is then
    ``max(compute-pipeline makespan, background gradient traffic time)``
    — see :func:`hetpipe_iteration_time`.
    """
    from ..parallel.distgraph import DistGraph, DistOp, DistOpKind

    # ops reachable *forward* from any parameter-gradient output form the
    # sync path: PS pushes, AGGREGATE, APPLY, pulls, AllReduce
    drop = set()
    for name in dist.topological_order():
        op = dist.op(name)
        if op.kind in (DistOpKind.AGGREGATE, DistOpKind.APPLY,
                       DistOpKind.ALLREDUCE):
            drop.add(name)
        elif any(p in drop for p in dist.predecessors(name)):
            drop.add(name)
        elif op.kind is DistOpKind.TRANSFER:
            preds = dist.predecessors(name)
            if preds and all(
                dist.op(p).source_op is not None
                and dist.op(p).source_op.produces_param_gradient
                for p in preds
            ):
                drop.add(name)  # gradient push

    stripped = DistGraph(f"{dist.name}:async")
    grad_bytes = 0.0
    for name in dist.topological_order():
        if name in drop:
            op = dist.op(name)
            if op.is_communication:
                grad_bytes += op.size_bytes
            continue
        op = dist.op(name)
        deps = [p for p in dist.predecessors(name) if p not in drop]
        stripped.add(DistOp(
            name=op.name, kind=op.kind, source_op=op.source_op,
            device=op.device, src_device=op.src_device,
            dst_device=op.dst_device, devices=op.devices,
            size_bytes=op.size_bytes, batch_fraction=op.batch_fraction,
            group=op.group, hierarchical=op.hierarchical,
            extra_resources=op.extra_resources,
        ), deps)
    stripped.validate()
    return stripped, grad_bytes


def aggregate_nic_bandwidth(cluster: Cluster) -> float:
    """Total inter-server bandwidth available for background sync."""
    return sum(min(s.nic.bandwidth, cluster.switch_bandwidth)
               for s in cluster.servers)


def hetpipe_iteration_time(compute_makespan: float, grad_bytes: float,
                           cluster: Cluster) -> float:
    """Steady-state HetPipe iteration time under bounded staleness:
    compute pipeline and background parameter traffic overlap fully, so
    the slower of the two paces training."""
    background = grad_bytes / max(aggregate_nic_bandwidth(cluster), 1.0)
    return max(compute_makespan, background)


def hetpipe_strategy(graph: ComputationGraph, cluster: Cluster) -> Strategy:
    """HetPipe deployment: layer blocks inside each virtual worker, DP (PS) across workers weighted by aggregate compute power."""
    vws = virtual_workers(cluster)
    # batch share per VW ~ aggregate compute power, expressed as integer
    # replica counts with the weakest VW normalized to 1
    powers = np.asarray([
        sum(cluster.device(d).compute_power for d in vw) for vw in vws
    ])
    weights = np.maximum(1, np.round(powers / powers.min()).astype(int))

    per_op: Dict[str, OpStrategy] = {}
    blocks_per_vw = [_layer_blocks(graph, len(vw)) for vw in vws]
    for name in graph.op_names:
        replicas: Dict[str, int] = {}
        for vw, weight, blocks in zip(vws, weights, blocks_per_vw):
            owner = vw[blocks[name]]
            replicas[owner] = replicas.get(owner, 0) + int(weight)
        per_op[name] = OpStrategy(
            ParallelKind.DP,
            replicas=replicas,
            comm=CommMethod.PS,
        )
    return Strategy(graph, cluster, per_op)
