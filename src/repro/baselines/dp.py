"""The four data-parallel baselines of Sec. 6.1.

- EV-PS: one replica per device, PS gradient synchronization;
- EV-AR: one replica per device, AllReduce;
- CP-PS: replicas proportional to compute power, PS;
- CP-AR: replicas proportional to compute power, AllReduce.
"""

from __future__ import annotations

from typing import Dict

from ..cluster.topology import Cluster
from ..graph.dag import ComputationGraph
from ..parallel.strategy import (
    CommMethod,
    ReplicaAllocation,
    Strategy,
    make_dp_strategy,
    uniform_strategy,
)

DP_BASELINES = ("EV-PS", "EV-AR", "CP-PS", "CP-AR")

_SPEC = {
    "EV-PS": (ReplicaAllocation.EVEN, CommMethod.PS),
    "EV-AR": (ReplicaAllocation.EVEN, CommMethod.ALLREDUCE),
    "CP-PS": (ReplicaAllocation.PROPORTIONAL, CommMethod.PS),
    "CP-AR": (ReplicaAllocation.PROPORTIONAL, CommMethod.ALLREDUCE),
}


def dp_strategy(name: str, graph: ComputationGraph,
                cluster: Cluster) -> Strategy:
    """Build one of the named DP baseline strategies."""
    try:
        allocation, comm = _SPEC[name]
    except KeyError:
        raise ValueError(
            f"unknown DP baseline {name!r}; choose from {DP_BASELINES}"
        ) from None
    return uniform_strategy(graph, cluster,
                            make_dp_strategy(cluster, allocation, comm))


def all_dp_strategies(graph: ComputationGraph,
                      cluster: Cluster) -> Dict[str, Strategy]:
    """All four DP baseline strategies keyed by name."""
    return {name: dp_strategy(name, graph, cluster) for name in DP_BASELINES}
