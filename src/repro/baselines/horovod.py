"""Horovod baseline (Sergeev & Del Balso, 2018).

Horovod's model: one full model replica per device, ring AllReduce for
every gradient, framework-default execution order (no order scheduling),
no heterogeneity awareness.  Equivalent to EV-AR compiled without
HeteroG's rank-based order enforcement.
"""

from __future__ import annotations

from typing import Optional

from ..cluster.topology import Cluster
from ..graph.dag import ComputationGraph
from ..parallel.strategy import Strategy
from ..profiling.profiler import Profile
from ..runtime.deployment import Deployment, build_deployment
from .dp import dp_strategy


def horovod_strategy(graph: ComputationGraph, cluster: Cluster) -> Strategy:
    """Horovod semantics: one replica per device, AllReduce everywhere."""
    return dp_strategy("EV-AR", graph, cluster)


def horovod_deployment(graph: ComputationGraph, cluster: Cluster,
                       profile: Optional[Profile] = None) -> Deployment:
    """Compile Horovod's strategy under the framework-default order."""
    strategy = horovod_strategy(graph, cluster)
    return build_deployment(graph, cluster, strategy, profile=profile,
                            use_order_scheduling=False)
