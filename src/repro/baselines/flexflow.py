"""FlexFlow-style baseline (Jia et al., 2018).

FlexFlow searches per-operation parallelization with an MCMC simulated-
annealing loop over a simulator, but (per the paper's Sec. 6.8 critique)
"does not consider gradient aggregation methods or execution order of
operations".  We reproduce that scope: the proposal space per op group is
{MP on device m} U {even replication, proportional replication}; the
communication method is fixed to AllReduce; candidate costing uses the
framework-default FIFO order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..agent.policy import actions_to_strategy
from ..cluster.topology import Cluster
from ..graph.dag import ComputationGraph
from ..graph.grouping import Grouping, group_operations
from ..parallel.strategy import Strategy
from ..plan import BestSoFar, PlanBuilder
from ..profiling.profiler import Profile, Profiler


@dataclass
class MCMCResult:
    """Outcome of one FlexFlow-style MCMC search."""
    strategy: Strategy
    time: float
    evaluations: int
    accepted: int


class FlexFlowSearch:
    """MCMC over the SOAP-like per-group space, AllReduce-only."""

    def __init__(self, graph: ComputationGraph, cluster: Cluster,
                 profile: Optional[Profile] = None, *, max_groups: int = 60,
                 seed: int = 0, prune: bool = False):
        self.graph = graph
        # OFF by default: MCMC acceptance needs the proposal's exact
        # finite time (and draws acceptance randomness on finite scores),
        # so best-so-far pruning changes the walk.  Opt in only when
        # throughput matters more than reproducing the unpruned chain.
        self.prune = prune
        self._best = BestSoFar() if prune else None
        self.cluster = cluster
        self.profile = profile or Profiler(seed=seed).profile(graph, cluster)
        avg = {op.name: op.flops for op in graph}
        self.grouping: Grouping = group_operations(graph, avg, max_groups)
        # the MCMC walk revisits states, so the builder's outcome cache
        # turns repeated proposals into dictionary lookups
        self.builder = PlanBuilder(
            graph, cluster, self.profile,
            use_order_scheduling=False,  # FlexFlow keeps default order
            group_of=self.grouping.group_of,
        )
        self.rng = np.random.default_rng(seed)
        m = cluster.num_devices
        # action ids reused from the policy encoding; AllReduce-only DP
        self._allowed: List[int] = list(range(m)) + [m + 1, m + 3]

    def _evaluate(self, actions: np.ndarray) -> float:
        strategy = actions_to_strategy(self.graph, self.cluster,
                                       self.grouping, actions)
        outcome = self.builder.evaluate(strategy, best=self._best)
        if not outcome.feasible:
            return float("inf")
        return outcome.time

    def search(self, iterations: int = 120,
               temperature: float = 0.05) -> MCMCResult:
        m = self.cluster.num_devices
        n = self.grouping.num_groups
        # start from the better of even / proportional AllReduce DP,
        # scored as one evaluate_many population
        candidates = [np.full(n, m + 1, dtype=np.int64),
                      np.full(n, m + 3, dtype=np.int64)]
        outcomes = self.builder.evaluate_many(
            [actions_to_strategy(self.graph, self.cluster, self.grouping, c)
             for c in candidates],
            best=self._best)
        scored = sorted(
            (o.time if o.feasible else float("inf"), i)
            for i, o in enumerate(outcomes))
        current = candidates[scored[0][1]]
        current_time = scored[0][0]
        best = current.copy()
        best_time = current_time
        accepted = 0
        for _ in range(iterations):
            proposal = current.copy()
            flips = 1 + int(self.rng.integers(0, max(1, n // 20)))
            for _ in range(flips):
                g = int(self.rng.integers(0, n))
                proposal[g] = self._allowed[
                    int(self.rng.integers(0, len(self._allowed)))
                ]
            time = self._evaluate(proposal)
            delta = time - current_time
            scale = max(current_time, 1e-9) * temperature
            if delta <= 0 or (
                np.isfinite(time)
                and self.rng.random() < np.exp(-delta / scale)
            ):
                current, current_time = proposal, time
                accepted += 1
                if time < best_time:
                    best, best_time = proposal.copy(), time
        strategy = actions_to_strategy(self.graph, self.cluster,
                                       self.grouping, best)
        return MCMCResult(strategy=strategy, time=best_time,
                          evaluations=iterations + 1, accepted=accepted)


def flexflow_strategy(graph: ComputationGraph, cluster: Cluster,
                      profile: Optional[Profile] = None, *,
                      iterations: int = 120, seed: int = 0) -> Strategy:
    """Convenience wrapper: run the MCMC search, return its best strategy."""
    search = FlexFlowSearch(graph, cluster, profile, seed=seed)
    return search.search(iterations).strategy
