"""Linear-regression predictors, as the paper's Profiler builds (Sec. 3.3).

Two families:

- :class:`OpTimeRegression` — per (operation, GPU model): execution time as
  a linear function of the batch fraction, fitted on measurements at
  representative batch sizes ("we build a linear regression model to
  predict computation time of a specific operation at other batch sizes").
- :class:`TransferTimeRegression` — per link: transfer time as a linear
  function of tensor size ("record the transfer time and build a linear
  regression model for transfer time prediction over each link").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..errors import ProfilingError


def _fit_line(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """Weighted least-squares fit y = slope * x + intercept.

    Measurement noise is multiplicative (kernel-time jitter is a
    percentage, not an absolute), so residuals are weighted by 1/y:
    without this, the intercept — microseconds of latency — would be
    swamped by the absolute noise of the multi-millisecond large-size
    samples and come out wildly wrong.
    """
    if len(xs) != len(ys) or len(xs) == 0:
        raise ProfilingError("regression needs equal, non-empty x/y samples")
    x = np.asarray(xs, dtype=np.float64)
    y = np.asarray(ys, dtype=np.float64)
    if len(xs) == 1:
        return 0.0, float(y[0])
    weights = 1.0 / np.maximum(np.abs(y), 1e-12)
    design = np.stack([x, np.ones_like(x)], axis=1) * weights[:, None]
    coef, *_ = np.linalg.lstsq(design, y * weights, rcond=None)
    return float(coef[0]), float(coef[1])


@dataclass(frozen=True)
class OpTimeRegression:
    """time(batch_fraction) = slope * batch_fraction + intercept."""

    slope: float
    intercept: float

    @classmethod
    def fit(cls, fractions: Sequence[float], times: Sequence[float]
            ) -> "OpTimeRegression":
        slope, intercept = _fit_line(fractions, times)
        return cls(slope, intercept)

    def predict(self, batch_fraction: float) -> float:
        if batch_fraction <= 0:
            raise ProfilingError(
                f"batch_fraction must be positive, got {batch_fraction}"
            )
        # physical floor: a kernel never runs in negative time
        return max(1e-9, self.slope * batch_fraction + self.intercept)


@dataclass(frozen=True)
class TransferTimeRegression:
    """time(bytes) = bytes / bandwidth + latency, fitted from samples."""

    inv_bandwidth: float
    latency: float

    @classmethod
    def fit(cls, sizes: Sequence[float], times: Sequence[float]
            ) -> "TransferTimeRegression":
        slope, intercept = _fit_line(sizes, times)
        return cls(max(slope, 0.0), max(intercept, 0.0))

    def predict(self, size_bytes: float) -> float:
        if size_bytes < 0:
            raise ProfilingError(f"negative transfer size {size_bytes}")
        return self.latency + self.inv_bandwidth * size_bytes

    @property
    def bandwidth(self) -> float:
        if self.inv_bandwidth <= 0:
            return float("inf")
        return 1.0 / self.inv_bandwidth
