"""Synthetic measurement generation.

Stands in for running the model under TensorFlow's FULL_TRACE profiler:
samples the analytic cost model at representative batch fractions /
transfer sizes, with multiplicative log-normal noise mimicking kernel-time
variance on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..cluster.device import GPUSpec
from ..cluster.link import Link
from ..graph.op import Operation
from . import cost_model

# Batch fractions the profiler samples per op/device ("different
# representative batch sizes", Sec. 3.3).
DEFAULT_FRACTIONS = (0.125, 0.25, 0.5, 1.0)
# Transfer sizes sampled per link, in bytes.
DEFAULT_SIZES = (64 * 1024, 1024 * 1024, 16 * 1024 * 1024, 128 * 1024 * 1024)


@dataclass(frozen=True)
class MeasurementNoise:
    """Log-normal multiplicative noise model for one profiling run."""

    sigma: float = 0.03

    def apply(self, value: float, rng: np.random.Generator) -> float:
        if self.sigma <= 0:
            return value
        return value * float(rng.lognormal(mean=0.0, sigma=self.sigma))


def measure_op_times(
    op: Operation,
    spec: GPUSpec,
    fractions: Sequence[float],
    rng: np.random.Generator,
    noise: MeasurementNoise = MeasurementNoise(),
) -> List[float]:
    """Measured execution times of ``op`` at each batch fraction."""
    return [
        noise.apply(cost_model.op_time(op, spec, f), rng) for f in fractions
    ]


def measure_transfer_times(
    link: Link,
    sizes: Sequence[float],
    rng: np.random.Generator,
    noise: MeasurementNoise = MeasurementNoise(),
) -> List[float]:
    """Measured transfer times on ``link`` at each tensor size."""
    return [
        noise.apply(cost_model.transfer_time(link, s), rng) for s in sizes
    ]
