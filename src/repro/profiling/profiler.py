"""The Profiler facade (paper Sec. 3.3).

Profiles a DNN graph against a cluster: measures every op on every GPU
model at representative batch fractions, measures every link at several
transfer sizes, and fits the linear-regression predictors the Strategy
Maker's simulator consumes.

Deduplication matches the paper's practice: ops are measured once per
(op, GPU model) — devices of the same model share timings — and links once
per (bandwidth, latency) class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..cluster.topology import Cluster
from ..errors import ProfilingError
from ..graph.dag import ComputationGraph
from ..graph.op import Operation
from . import cost_model
from .measurements import (
    DEFAULT_FRACTIONS,
    DEFAULT_SIZES,
    MeasurementNoise,
    measure_op_times,
    measure_transfer_times,
)
from .regression import OpTimeRegression, TransferTimeRegression


@dataclass
class Profile:
    """Fitted predictors for one (graph, cluster) pair."""

    graph_name: str
    op_models: Dict[Tuple[str, str], OpTimeRegression] = field(default_factory=dict)
    link_models: Dict[Tuple[str, str], TransferTimeRegression] = field(
        default_factory=dict
    )
    # device_id -> GPU model string (to index op_models)
    device_model: Dict[str, str] = field(default_factory=dict)

    def op_time(self, op_name: str, device_id: str,
                batch_fraction: float = 1.0) -> float:
        model = self.device_model.get(device_id)
        if model is None:
            raise ProfilingError(f"device {device_id!r} was not profiled")
        key = (op_name, model)
        if key not in self.op_models:
            raise ProfilingError(
                f"op {op_name!r} was not profiled on {model!r}"
            )
        return self.op_models[key].predict(batch_fraction)

    def transfer_time(self, src: str, dst: str, size_bytes: float) -> float:
        if src == dst:
            return 0.0
        key = (src, dst)
        if key not in self.link_models:
            raise ProfilingError(f"link {src!r}->{dst!r} was not profiled")
        return self.link_models[key].predict(size_bytes)

    def bandwidth(self, src: str, dst: str) -> float:
        if src == dst:
            return float("inf")
        return self.link_models[(src, dst)].bandwidth


class Profiler:
    """Runs (synthetic) profiling and fits prediction models."""

    def __init__(
        self,
        fractions=DEFAULT_FRACTIONS,
        sizes=DEFAULT_SIZES,
        noise: MeasurementNoise = MeasurementNoise(),
        seed: int = 0,
    ):
        if not fractions:
            raise ProfilingError("need at least one batch fraction")
        if not sizes:
            raise ProfilingError("need at least one transfer size")
        self.fractions = tuple(fractions)
        self.sizes = tuple(sizes)
        self.noise = noise
        self.seed = seed

    def profile(self, graph: ComputationGraph, cluster: Cluster) -> Profile:
        rng = np.random.default_rng(self.seed)
        profile = Profile(graph_name=graph.name)
        profile.device_model = {
            d.device_id: d.spec.model for d in cluster.devices
        }

        # One regression per (op, GPU model).
        specs = {d.spec.model: d.spec for d in cluster.devices}
        for op in graph:
            for model_name, spec in specs.items():
                times = measure_op_times(op, spec, self.fractions, rng,
                                         self.noise)
                profile.op_models[(op.name, model_name)] = OpTimeRegression.fit(
                    self.fractions, times
                )

        # One regression per directed link; identical (bw, latency) classes
        # share a fit, mirroring "transfer data ... between each pair".
        class_fit: Dict[Tuple[float, float], TransferTimeRegression] = {}
        for link in cluster.links():
            key = (link.bandwidth, link.latency)
            if key not in class_fit:
                times = measure_transfer_times(link, self.sizes, rng, self.noise)
                class_fit[key] = TransferTimeRegression.fit(self.sizes, times)
            profile.link_models[(link.src, link.dst)] = class_fit[key]
        return profile


def exact_profile(graph: ComputationGraph, cluster: Cluster) -> Profile:
    """A noise-free profile (predictors match the analytic truth exactly).

    Useful for tests that need deterministic, bias-free predictions.
    """
    return Profiler(noise=MeasurementNoise(sigma=0.0)).profile(graph, cluster)
