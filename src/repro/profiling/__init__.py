"""Profiler: analytic cost model, synthetic measurements, regressions."""

from .cost_model import (
    bytes_touched,
    op_class,
    op_memory_bytes,
    op_resident_bytes,
    op_time,
    transfer_time,
)
from .measurements import (
    DEFAULT_FRACTIONS,
    DEFAULT_SIZES,
    MeasurementNoise,
    measure_op_times,
    measure_transfer_times,
)
from .profiler import Profile, Profiler, exact_profile
from .regression import OpTimeRegression, TransferTimeRegression

__all__ = [
    "Profile",
    "Profiler",
    "exact_profile",
    "OpTimeRegression",
    "TransferTimeRegression",
    "MeasurementNoise",
    "DEFAULT_FRACTIONS",
    "DEFAULT_SIZES",
    "measure_op_times",
    "measure_transfer_times",
    "op_time",
    "op_class",
    "transfer_time",
    "bytes_touched",
    "op_memory_bytes",
    "op_resident_bytes",
]
