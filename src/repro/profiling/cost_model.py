"""Analytic ("ground truth") cost model for operations and transfers.

This plays the role of the physical hardware in the paper's testbed: a
roofline-style model gives each op a execution time on each GPU model, and
each tensor a transfer time on each link.  The Profiler *measures* this
model (with noise) and fits the paper's linear-regression predictors on
the measurements; the ExecutionEngine *runs* on this model (with jitter).

time(op, device) = max(compute_time, memory_time) + kernel_overhead
  compute_time = flops / (peak_flops * class_efficiency[class(op)])
  memory_time  = bytes_touched / mem_bandwidth

This naturally reproduces Fig. 3(b): large compute-bound kernels see the
full V100-vs-1080Ti peak-FLOPs gap (~2x), while small or memory-bound
kernels are launch/bandwidth limited where the GPUs differ less (~1.1x).
"""

from __future__ import annotations

from typing import Dict

from ..cluster.device import GPUSpec
from ..cluster.link import Link
from ..graph.op import Operation

# op_type -> roofline class
_OP_CLASS: Dict[str, str] = {}


def _register(op_class: str, *types: str) -> None:
    for t in types:
        _OP_CLASS[t] = op_class


_register("conv", "Conv2D", "DepthwiseConv2D")
_register("conv1d", "Conv1D")
_register("gemm", "MatMul", "BatchMatMul")
_register("elementwise", "Relu", "Gelu", "AddN", "BatchNorm", "LayerNorm",
           "Reshape", "Mean", "ApplyGradient", "Split", "Concat", "ConcatV2",
           "Identity")
_register("reduce", "MaxPool", "AvgPool", "Softmax", "SoftmaxCrossEntropy",
           "GradientAggregation", "LossGrad")
_register("other", "Input", "Embedding", "VariableRead", "LearningRate")


def op_class(op_type: str) -> str:
    """Roofline class of an op type.

    Conv backward kernels get their own classes — cuDNN's weight-gradient
    (BpFilter) and data-gradient (BpInput) algorithms utilize the two GPU
    generations differently, which is exactly the Fig. 3(b) spread.
    Other backward ops inherit their forward op's class.
    """
    if op_type in _OP_CLASS:
        return _OP_CLASS[op_type]
    if op_type in ("Conv2DBpFilter", "DepthwiseConv2DBpFilter"):
        return "conv_bp_filter"
    if op_type in ("Conv2DBpInput", "DepthwiseConv2DBpInput"):
        return "conv_bp_input"
    for suffix in ("BpInput", "BpFilter"):
        if op_type.endswith(suffix):
            return op_class(op_type[: -len(suffix)])
    return "other"


def bytes_touched(op: Operation, batch_fraction: float = 1.0) -> float:
    """Approximate memory traffic of one execution (read in + write out)."""
    out_bytes = float(op.output.size_bytes)
    if op.output.batch_dim is not None:
        out_bytes *= batch_fraction
    # inputs are roughly the same order as outputs for the op mix we model;
    # parameters are read once per execution.
    return 3.0 * out_bytes + float(op.param_bytes)


def op_time(op: Operation, spec: GPUSpec, batch_fraction: float = 1.0) -> float:
    """Ground-truth execution time of ``op`` on a GPU of type ``spec``.

    ``batch_fraction`` is the share of the global mini-batch this replica
    processes (1.0 for an unreplicated op).
    """
    if batch_fraction <= 0:
        raise ValueError(f"batch_fraction must be positive, got {batch_fraction}")
    flops = op.scaled_flops(batch_fraction)
    if flops <= 0 and op.output.size_bytes == 0:
        return spec.kernel_overhead
    cls = op_class(op.op_type)
    compute = flops / (spec.peak_flops * spec.efficiency(cls))
    memory = bytes_touched(op, batch_fraction) / spec.mem_bandwidth
    return max(compute, memory) + spec.kernel_overhead


def transfer_time(link: Link, size_bytes: float) -> float:
    """Ground-truth time to move ``size_bytes`` over ``link``."""
    return link.transfer_time(size_bytes)


# Training frameworks hold more than the raw activation per op: the
# mirrored gradient buffer, cuDNN workspace, and allocator slack.  This
# multiplier converts "output tensor bytes" into "memory the op pins for
# the iteration"; 2.1 places the Table 1 OOM boundaries where the paper
# reports them (feasible at the baseline batch sizes, OOM at the doubled
# ones) for the calibrated paper presets in the model registry.
ACTIVATION_OVERHEAD = 2.1


def op_memory_bytes(op: Operation, batch_fraction: float = 1.0) -> int:
    """Bytes of memory pinned by one execution of this op instance."""
    out = float(op.output.size_bytes)
    if op.output.batch_dim is not None:
        out *= batch_fraction
    return int(out * ACTIVATION_OVERHEAD)


# weights + momentum slot + (partially live) fused gradient buffer
RESIDENT_OVERHEAD = 2.5


def op_resident_bytes(op: Operation) -> int:
    """Long-lived memory per device holding this op: parameters plus
    optimizer state (momentum) and the fused gradient buffer."""
    return int(RESIDENT_OVERHEAD * op.param_bytes)
