"""Heterogeneous GPU cluster model: devices, links, topology, presets."""

from .device import (
    GB,
    GPU_ALIASES,
    GPU_MODELS,
    GTX_1080TI,
    TESLA_P100,
    TESLA_V100,
    Device,
    GPUSpec,
    resolve_gpu,
)
from .link import GBPS, NIC_50G, NIC_100G, NVLINK, PCIE3, Link, LinkSpec
from .presets import (
    cluster_2gpu,
    cluster_4gpu,
    cluster_8gpu,
    cluster_12gpu,
    homogeneous_cluster,
    paper_testbed,
)
from .topology import Cluster, ServerSpec

__all__ = [
    "Cluster",
    "Device",
    "GPUSpec",
    "Link",
    "LinkSpec",
    "ServerSpec",
    "GB",
    "GBPS",
    "GPU_ALIASES",
    "GPU_MODELS",
    "resolve_gpu",
    "TESLA_V100",
    "TESLA_P100",
    "GTX_1080TI",
    "NVLINK",
    "PCIE3",
    "NIC_100G",
    "NIC_50G",
    "paper_testbed",
    "cluster_12gpu",
    "cluster_8gpu",
    "cluster_4gpu",
    "cluster_2gpu",
    "homogeneous_cluster",
]
