"""Cluster presets mirroring the paper's testbed (Sec. 6.1).

The testbed: 5 machines, 12 GPUs total —
  * server0: 4x NVIDIA Tesla V100 16GB, 100GbE RDMA NIC, NVLink inside;
  * server1, server2: 2x GTX 1080Ti 11GB each, 50GbE RDMA NIC, PCIe;
  * server3, server4: 2x Tesla P100 12GB each, 50GbE RDMA NIC, PCIe;
all connected through a 100Gbps switch.

The 8-GPU experiments (Tables 1, 2, 7, Fig. 8) use 2 V100 + 4 1080Ti +
2 P100; Fig. 3 uses 2 V100 + 2 1080Ti.
"""

from __future__ import annotations

from .device import GTX_1080TI, TESLA_P100, TESLA_V100
from .link import NIC_100G, NIC_50G, NVLINK, PCIE3
from .topology import Cluster, ServerSpec

SWITCH_BANDWIDTH = 100e9 / 8  # bytes/s


def paper_testbed() -> Cluster:
    """The full 12-GPU, 5-server heterogeneous cluster."""
    return Cluster(
        [
            ServerSpec("server0", TESLA_V100, 4, NIC_100G, intra_link=NVLINK),
            ServerSpec("server1", GTX_1080TI, 2, NIC_50G, intra_link=PCIE3),
            ServerSpec("server2", GTX_1080TI, 2, NIC_50G, intra_link=PCIE3),
            ServerSpec("server3", TESLA_P100, 2, NIC_50G, intra_link=PCIE3),
            ServerSpec("server4", TESLA_P100, 2, NIC_50G, intra_link=PCIE3),
        ],
        switch_bandwidth=SWITCH_BANDWIDTH,
    )


def cluster_12gpu() -> Cluster:
    """Alias of :func:`paper_testbed` — the Table 4 / Fig. 9 cluster."""
    return paper_testbed()


def cluster_8gpu() -> Cluster:
    """2x V100 + 4x 1080Ti + 2x P100 (Tables 1, 2, 7; Fig. 8).

    Device indices match Table 2's caption: G0, G1 = V100; G2-G5 = 1080Ti;
    G6, G7 = P100.
    """
    return Cluster(
        [
            ServerSpec("server0", TESLA_V100, 2, NIC_100G, intra_link=NVLINK),
            ServerSpec("server1", GTX_1080TI, 2, NIC_50G, intra_link=PCIE3),
            ServerSpec("server2", GTX_1080TI, 2, NIC_50G, intra_link=PCIE3),
            ServerSpec("server3", TESLA_P100, 2, NIC_50G, intra_link=PCIE3),
        ],
        switch_bandwidth=SWITCH_BANDWIDTH,
    )


def cluster_2gpu() -> Cluster:
    """2x GTX 1080Ti on one server — the elastic-churn starting fleet.

    Deliberately small and slow: the churn experiments start here so
    that arriving V100 capacity is genuinely worth replanning onto.
    """
    return Cluster(
        [ServerSpec("server0", GTX_1080TI, 2, NIC_50G, intra_link=PCIE3)],
        switch_bandwidth=SWITCH_BANDWIDTH,
    )


def cluster_4gpu() -> Cluster:
    """2x V100 + 2x 1080Ti — the Fig. 3(a) motivation cluster."""
    return Cluster(
        [
            ServerSpec("server0", TESLA_V100, 2, NIC_100G, intra_link=NVLINK),
            ServerSpec("server1", GTX_1080TI, 2, NIC_50G, intra_link=PCIE3),
        ],
        switch_bandwidth=SWITCH_BANDWIDTH,
    )


def homogeneous_cluster(num_gpus: int = 4, gpus_per_server: int = 2) -> Cluster:
    """An all-V100 cluster, for homogeneous-vs-heterogeneous comparisons."""
    servers = []
    remaining = num_gpus
    idx = 0
    while remaining > 0:
        count = min(gpus_per_server, remaining)
        servers.append(
            ServerSpec(f"server{idx}", TESLA_V100, count, NIC_100G,
                       intra_link=NVLINK)
        )
        remaining -= count
        idx += 1
    return Cluster(servers, switch_bandwidth=SWITCH_BANDWIDTH)
