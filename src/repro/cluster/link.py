"""Communication links between devices.

Following Sec. 4.2, each *directed* device pair is modelled as its own
schedulable resource ("we further treat a link between two GPUs as a
device"): a link carries at most one tensor transfer at a time.  Intra-
server links go over NVLink/PCIe; inter-server paths traverse both NICs
and the switch, so their bandwidth is the minimum along the path.
"""

from __future__ import annotations

from dataclasses import dataclass

GBPS = 1e9 / 8  # 1 Gbit/s in bytes/s


@dataclass(frozen=True)
class LinkSpec:
    """Bandwidth/latency of one interconnect technology."""

    name: str
    bandwidth: float  # bytes/s
    latency: float    # seconds per message

    def transfer_time(self, size_bytes: float) -> float:
        return self.latency + size_bytes / self.bandwidth


NVLINK = LinkSpec("NVLink", 22e9, 2e-6)
PCIE3 = LinkSpec("PCIe3 x16", 11e9, 3e-6)
NIC_100G = LinkSpec("100GbE RDMA", 100 * GBPS, 6e-6)
NIC_50G = LinkSpec("50GbE RDMA", 50 * GBPS, 6e-6)
LOOPBACK = LinkSpec("loopback", 1e15, 0.0)


@dataclass(frozen=True)
class Link:
    """A directed communication path between two devices."""

    src: str
    dst: str
    bandwidth: float
    latency: float
    intra_server: bool

    @property
    def link_id(self) -> str:
        return f"link:{self.src}->{self.dst}"

    def transfer_time(self, size_bytes: float) -> float:
        if self.src == self.dst:
            return 0.0
        return self.latency + size_bytes / self.bandwidth
