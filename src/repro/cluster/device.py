"""GPU device models.

Per-device numbers are calibrated so that the *effective* compute-power
ratio between Tesla V100 and GTX 1080Ti is roughly 2:1 — the ratio the
paper measures on its testbed (Sec. 2.3) — while per-op-type speed-ups
vary between ~1.1x and ~1.9x as in Fig. 3(b).  The variation emerges from
a roofline-style cost model (see ``repro.profiling.cost_model``): small or
memory-bound kernels are limited by memory bandwidth / launch overhead
where the GPUs differ less; large compute-bound kernels see the full
peak-FLOPs gap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

GB = 1024 ** 3

# Memory reserved by the CUDA context / cuDNN handles and therefore not
# available to the training job (~0.5 GB on the paper's GPU generation).
CUDA_RESERVED_BYTES = GB // 2


@dataclass(frozen=True)
class GPUSpec:
    """Static capabilities of one GPU model."""

    model: str
    memory_bytes: int
    peak_flops: float          # effective sustainable FLOP/s for training
    mem_bandwidth: float       # bytes/s
    kernel_overhead: float     # seconds of fixed launch/dispatch cost per op
    # multiplier on peak_flops per op class ("conv", "gemm", "elementwise",
    # "reduce", "other"); models how well each architecture runs each class
    class_efficiency: Dict[str, float] = field(default_factory=dict)

    def efficiency(self, op_class: str) -> float:
        return self.class_efficiency.get(op_class, 1.0)


TESLA_V100 = GPUSpec(
    model="Tesla V100",
    memory_bytes=16 * GB,
    peak_flops=7.8e12,
    mem_bandwidth=900e9,
    kernel_overhead=8e-6,
    # Volta's cuDNN kernels extract near-peak throughput from forward
    # convs; 1D convs and weight-gradient kernels utilize it less well;
    # elementwise/reduce kernels are bandwidth-bound.  The class ratios
    # between the V100 and 1080Ti tables are calibrated to Fig. 3(b):
    # Conv2D ~1.9x, MatMul ~1.7x, Conv1D ~1.3x, BpFilter ~1.5x,
    # BpInput ~1.8x at the 2:1 peak-FLOPs ratio.
    class_efficiency={"conv": 0.95, "conv1d": 0.72, "conv_bp_filter": 0.79,
                      "conv_bp_input": 0.90, "gemm": 0.88,
                      "elementwise": 0.60, "reduce": 0.55, "other": 0.70},
)

GTX_1080TI = GPUSpec(
    model="GTX 1080Ti",
    memory_bytes=11 * GB,
    peak_flops=3.9e12,
    mem_bandwidth=484e9,
    kernel_overhead=10e-6,
    # Pascal consumer silicon: relatively strong on GEMM and 1D convs
    # (high clocks), weaker on the fp16-path-optimized kernels it lacks.
    class_efficiency={"conv": 1.00, "conv1d": 1.10, "conv_bp_filter": 1.05,
                      "conv_bp_input": 1.00, "gemm": 1.04,
                      "elementwise": 0.75, "reduce": 0.65, "other": 0.80},
)

TESLA_P100 = GPUSpec(
    model="Tesla P100",
    memory_bytes=12 * GB,
    peak_flops=4.7e12,
    mem_bandwidth=732e9,
    kernel_overhead=9e-6,
    class_efficiency={"conv": 0.97, "conv1d": 0.90, "conv_bp_filter": 0.92,
                      "conv_bp_input": 0.95, "gemm": 0.92,
                      "elementwise": 0.70, "reduce": 0.60, "other": 0.75},
)

GPU_MODELS: Dict[str, GPUSpec] = {
    spec.model: spec for spec in (TESLA_V100, GTX_1080TI, TESLA_P100)
}

#: short, spec-grammar-friendly names for the GPU models (full model
#: names contain spaces, which fault/churn specs cannot carry)
GPU_ALIASES: Dict[str, GPUSpec] = {
    "v100": TESLA_V100,
    "1080ti": GTX_1080TI,
    "p100": TESLA_P100,
}


def resolve_gpu(name: str) -> GPUSpec:
    """A :class:`GPUSpec` from an alias (``v100``) or full model name.

    Raises :class:`KeyError` with the known names when unresolvable.
    """
    key = name.strip()
    spec = GPU_ALIASES.get(key.lower()) or GPU_MODELS.get(key)
    if spec is None:
        raise KeyError(
            f"unknown GPU model {name!r} (known: "
            f"{', '.join(sorted(GPU_ALIASES))} or "
            f"{', '.join(sorted(GPU_MODELS))})")
    return spec


@dataclass(frozen=True)
class Device:
    """One concrete GPU in the cluster."""

    device_id: str   # e.g. "gpu0"
    server: str      # hosting machine, e.g. "server0"
    spec: GPUSpec

    @property
    def memory_bytes(self) -> int:
        return self.spec.memory_bytes

    @property
    def usable_memory_bytes(self) -> int:
        """Capacity available to the job (total minus CUDA reservation)."""
        return self.spec.memory_bytes - CUDA_RESERVED_BYTES

    @property
    def compute_power(self) -> float:
        """Scalar power used for proportional (CP) replica allocation."""
        return self.spec.peak_flops

    def __str__(self) -> str:
        return f"{self.device_id}({self.spec.model}@{self.server})"
