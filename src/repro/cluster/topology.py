"""Cluster topology: servers, devices, and the link fabric between them."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import PlacementError
from .device import Device, GPUSpec
from .link import LOOPBACK, NVLINK, PCIE3, Link, LinkSpec


@dataclass(frozen=True)
class ServerSpec:
    """One physical machine hosting GPUs behind a NIC."""

    name: str
    gpu_spec: GPUSpec
    num_gpus: int
    nic: LinkSpec
    intra_link: LinkSpec = PCIE3  # NVLink on the V100 box, PCIe elsewhere


def _wire_link(a: Device, b: Device, spec_of: Mapping[str, ServerSpec],
               switch_bandwidth: float) -> Link:
    """The link the fabric gives a device pair (loopback / intra / inter).

    One shared implementation so links wired for a freshly-joined device
    are value-identical to what full re-enumeration would produce.
    """
    if a.device_id == b.device_id:
        return Link(a.device_id, b.device_id, LOOPBACK.bandwidth,
                    LOOPBACK.latency, intra_server=True)
    if a.server == b.server:
        spec = spec_of[a.device_id].intra_link
        return Link(a.device_id, b.device_id, spec.bandwidth, spec.latency,
                    intra_server=True)
    nic_a = spec_of[a.device_id].nic
    nic_b = spec_of[b.device_id].nic
    bandwidth = min(nic_a.bandwidth, nic_b.bandwidth, switch_bandwidth)
    latency = nic_a.latency + nic_b.latency
    return Link(a.device_id, b.device_id, bandwidth, latency,
                intra_server=False)


def _device_order_key(device: Device) -> Tuple[int, str]:
    """Canonical fleet order: numeric ``gpuN`` suffix, then lexical."""
    dev_id = device.device_id
    if dev_id.startswith("gpu") and dev_id[3:].isdigit():
        return (int(dev_id[3:]), dev_id)
    return (1 << 30, dev_id)


class Cluster:
    """The heterogeneous GPU cluster HeteroG deploys onto.

    Responsible for: device enumeration (deterministic order — placement
    actions index into it), pairwise link lookup, and compute-power ratios
    for proportional replica allocation.
    """

    def __init__(self, servers: Sequence[ServerSpec],
                 switch_bandwidth: float = 100e9 / 8):
        if not servers:
            raise PlacementError("cluster needs at least one server")
        self.servers: List[ServerSpec] = list(servers)
        self.switch_bandwidth = switch_bandwidth
        self._devices: List[Device] = []
        for server in self.servers:
            for i in range(server.num_gpus):
                dev_id = f"gpu{len(self._devices)}"
                self._devices.append(Device(dev_id, server.name, server.gpu_spec))
        self._by_id: Dict[str, Device] = {d.device_id: d for d in self._devices}
        self._server_of: Dict[str, ServerSpec] = {
            d.device_id: server
            for server in self.servers
            for d in self._devices
            if d.server == server.name
        }
        self._links: Dict[Tuple[str, str], Link] = {}
        for a in self._devices:
            for b in self._devices:
                self._links[(a.device_id, b.device_id)] = self._make_link(a, b)

    # ------------------------------------------------------------------ #
    def _make_link(self, a: Device, b: Device) -> Link:
        return _wire_link(a, b, self._server_of, self.switch_bandwidth)

    # ------------------------------------------------------------------ #
    @property
    def devices(self) -> List[Device]:
        return list(self._devices)

    @property
    def device_ids(self) -> List[str]:
        return [d.device_id for d in self._devices]

    @property
    def num_devices(self) -> int:
        return len(self._devices)

    def device(self, device_id: str) -> Device:
        try:
            return self._by_id[device_id]
        except KeyError:
            raise PlacementError(f"unknown device {device_id!r}") from None

    def link(self, src: str, dst: str) -> Link:
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise PlacementError(f"unknown link {src!r} -> {dst!r}") from None

    def links(self) -> List[Link]:
        return [l for l in self._links.values() if l.src != l.dst]

    def same_server(self, a: str, b: str) -> bool:
        return self.device(a).server == self.device(b).server

    def devices_on_server(self, server: str) -> List[Device]:
        return [d for d in self._devices if d.server == server]

    def server_names(self) -> List[str]:
        return [s.name for s in self.servers]

    # ------------------------------------------------------------------ #
    def compute_powers(self) -> Dict[str, float]:
        return {d.device_id: d.compute_power for d in self._devices}

    def relative_powers(self) -> Dict[str, float]:
        """Powers normalized so the weakest device is 1.0."""
        powers = self.compute_powers()
        weakest = min(powers.values())
        return {k: v / weakest for k, v in powers.items()}

    def proportional_shares(self, device_ids: Optional[Iterable[str]] = None
                            ) -> Dict[str, float]:
        """Fractions of a batch per device, proportional to compute power."""
        ids = list(device_ids) if device_ids is not None else self.device_ids
        total = sum(self.device(d).compute_power for d in ids)
        return {d: self.device(d).compute_power / total for d in ids}

    def min_memory(self) -> int:
        return min(d.memory_bytes for d in self._devices)

    def subcluster(self, device_ids: Sequence[str]) -> "Cluster":
        """A cluster view restricted to ``device_ids`` (keeps servers/links).

        Used for the paper's 8-GPU vs 12-GPU experiments on one testbed.

        .. note:: This builds a *fresh* cluster, so devices are
           **renumbered** from ``gpu0`` (``subcluster(["gpu2", "gpu3"])``
           yields devices ``gpu0``/``gpu1``).  That is right for
           "pretend the testbed is smaller" experiments, but wrong for a
           fleet that changed mid-run: use :meth:`without_devices` /
           :meth:`with_devices`, which preserve device identity, when
           strategies or plan fingerprints referencing existing ids must
           stay valid.
        """
        keep = set(device_ids)
        unknown = keep - set(self.device_ids)
        if unknown:
            raise PlacementError(f"unknown devices {sorted(unknown)}")
        per_server: Dict[str, int] = {}
        for dev in self._devices:
            if dev.device_id in keep:
                per_server[dev.server] = per_server.get(dev.server, 0) + 1
        specs = [
            ServerSpec(s.name, s.gpu_spec, per_server[s.name], s.nic, s.intra_link)
            for s in self.servers if per_server.get(s.name)
        ]
        return Cluster(specs, self.switch_bandwidth)

    # ------------------------------------------------------------------ #
    # degraded views (resilience layer): unlike subcluster(), these keep
    # the surviving devices' original ids and link objects, so strategies
    # and schedules that reference "gpu5" still mean the same GPU after a
    # failure elsewhere in the cluster
    # ------------------------------------------------------------------ #
    def _derive(self, devices: List[Device],
                links: Dict[Tuple[str, str], Link],
                servers: List[ServerSpec]) -> "Cluster":
        """Clone with explicit device/link tables (bypasses re-enumeration)."""
        clone = object.__new__(Cluster)
        clone.servers = servers
        clone.switch_bandwidth = self.switch_bandwidth
        clone._devices = devices
        clone._by_id = {d.device_id: d for d in devices}
        spec_of = {s.name: s for s in servers}
        clone._server_of = {d.device_id: spec_of[d.server] for d in devices}
        clone._links = links
        return clone

    def without_devices(self, device_ids: Iterable[str]) -> "Cluster":
        """The cluster minus crashed devices, original ids preserved.

        Every link touching a removed device disappears with it; servers
        whose GPUs all failed are dropped entirely.

        Unlike :meth:`subcluster` (which renumbers from ``gpu0``), the
        survivors keep their ids, specs and link objects, so placements
        and plan fingerprints that mention ``gpu5`` still mean the same
        GPU.  :meth:`with_devices` is the growth dual: removing devices
        and adding the *same* :class:`Device` objects back round-trips
        to an identical cluster fingerprint.
        """
        failed = set(device_ids)
        unknown = failed - set(self.device_ids)
        if unknown:
            raise PlacementError(f"unknown devices {sorted(unknown)}")
        survivors = [d for d in self._devices if d.device_id not in failed]
        if not survivors:
            raise PlacementError("cannot remove every device in the cluster")
        alive = {d.device_id for d in survivors}
        links = {
            pair: link for pair, link in self._links.items()
            if pair[0] in alive and pair[1] in alive
        }
        per_server: Dict[str, int] = {}
        for dev in survivors:
            per_server[dev.server] = per_server.get(dev.server, 0) + 1
        servers = [
            dataclasses.replace(s, num_gpus=per_server[s.name])
            for s in self.servers if per_server.get(s.name)
        ]
        return self._derive(survivors, links, servers)

    def with_devices(self, devices: Iterable[Device],
                     templates: Optional[Mapping[str, ServerSpec]] = None
                     ) -> "Cluster":
        """The cluster plus ``devices``, existing identities untouched.

        The growth dual of :meth:`without_devices`: no device is
        renumbered, existing link objects are kept, and the new devices'
        links are wired from their hosting server's spec (intra link
        inside the server, NIC + switch across servers) exactly as full
        re-enumeration would wire them — so
        ``c.without_devices(s).with_devices([c.device(d) for d in s])``
        produces an *identical* cluster fingerprint and the warm plan
        layer stays sound across fleet changes.

        Each added :class:`Device` names its hosting server.  Servers
        already in the cluster contribute their NIC/intra-link specs;
        a server unknown to the cluster must appear in ``templates``
        (its ``num_gpus`` is taken from the devices actually added).
        Devices are kept in canonical fleet order (numeric ``gpuN``
        order), so a reclaimed ``gpu1`` slots back between ``gpu0`` and
        ``gpu2`` instead of being appended.
        """
        added = list(devices)
        if not added:
            return self
        dup = [d.device_id for d in added if d.device_id in self._by_id]
        if dup:
            raise PlacementError(
                f"devices already in the cluster: {sorted(set(dup))}")
        if len({d.device_id for d in added}) != len(added):
            raise PlacementError(
                f"duplicate device ids in with_devices: "
                f"{sorted(d.device_id for d in added)}")
        templates = dict(templates or {})
        spec_by_name: Dict[str, ServerSpec] = {s.name: s for s in self.servers}
        per_new_server: Dict[str, int] = {}
        for dev in added:
            if dev.server not in spec_by_name:
                if dev.server not in templates:
                    raise PlacementError(
                        f"device {dev.device_id!r} joins unknown server "
                        f"{dev.server!r} and no template was given")
                per_new_server[dev.server] = \
                    per_new_server.get(dev.server, 0) + 1
        servers: List[ServerSpec] = []
        added_per_server: Dict[str, int] = {}
        for dev in added:
            added_per_server[dev.server] = \
                added_per_server.get(dev.server, 0) + 1
        for s in self.servers:
            extra = added_per_server.get(s.name, 0)
            servers.append(dataclasses.replace(s, num_gpus=s.num_gpus + extra)
                           if extra else s)
        for name, count in per_new_server.items():
            servers.append(dataclasses.replace(templates[name], name=name,
                                               num_gpus=count))
        merged = sorted(self._devices + added, key=_device_order_key)
        spec_of = {s.name: s for s in servers}
        server_of = {d.device_id: spec_of[d.server] for d in merged}
        links = dict(self._links)
        new_ids = {d.device_id for d in added}
        for a in merged:
            for b in merged:
                if a.device_id in new_ids or b.device_id in new_ids:
                    links[(a.device_id, b.device_id)] = _wire_link(
                        a, b, server_of, self.switch_bandwidth)
        return self._derive(merged, links, servers)

    def with_joined_devices(self, server: str, count: int = 1) -> "Cluster":
        """``count`` fresh GPUs joining an existing ``server`` in place.

        New devices take the server's GPU spec and the next free numeric
        ids (``gpu<max+1>`` ...), so existing ids never shift.
        """
        spec = next((s for s in self.servers if s.name == server), None)
        if spec is None:
            raise PlacementError(
                f"unknown server {server!r} "
                f"(known: {self.server_names()})")
        if count < 1:
            raise PlacementError(f"join count must be >= 1, got {count}")
        start = self._next_device_index()
        added = [Device(f"gpu{start + i}", server, spec.gpu_spec)
                 for i in range(count)]
        return self.with_devices(added)

    def with_joined_server(self, template: ServerSpec) -> "Cluster":
        """A whole new server (``template``) joining the fleet.

        The template's ``num_gpus`` GPUs get the next free numeric ids.
        """
        if template.name in set(self.server_names()):
            raise PlacementError(
                f"server {template.name!r} already in the cluster")
        if template.num_gpus < 1:
            raise PlacementError(
                f"joined server needs >= 1 GPUs, got {template.num_gpus}")
        start = self._next_device_index()
        added = [Device(f"gpu{start + i}", template.name, template.gpu_spec)
                 for i in range(template.num_gpus)]
        return self.with_devices(added, templates={template.name: template})

    def _next_device_index(self) -> int:
        """First numeric device suffix not used by any current device."""
        taken = [int(d.device_id[3:]) for d in self._devices
                 if d.device_id.startswith("gpu") and d.device_id[3:].isdigit()]
        return (max(taken) + 1) if taken else 0

    def with_scaled_links(self, factor: float,
                          involving: Optional[str] = None) -> "Cluster":
        """The cluster with some link bandwidths multiplied by ``factor``.

        ``involving`` selects which links degrade: a device id scales
        every link touching that device; a server name scales the
        server's inter-server (NIC) paths; ``None`` scales every
        inter-server link (switch-wide congestion).
        """
        if factor <= 0:
            raise PlacementError(f"link scale must be positive, got {factor}")
        if (involving is not None and involving not in self._by_id
                and involving not in self.server_names()):
            raise PlacementError(
                f"unknown device or server {involving!r}")

        def touched(link: Link) -> bool:
            if involving is None:
                return not link.intra_server
            if involving in self._by_id:
                return involving in (link.src, link.dst)
            return (not link.intra_server
                    and (self.device(link.src).server == involving
                         or self.device(link.dst).server == involving))

        links = {
            pair: (dataclasses.replace(
                       link, bandwidth=link.bandwidth * factor)
                   if link.src != link.dst and touched(link) else link)
            for pair, link in self._links.items()
        }
        return self._derive(list(self._devices), links, list(self.servers))

    def with_scaled_compute(self, scale: Mapping[str, float]) -> "Cluster":
        """The cluster with some devices' compute throughput multiplied.

        ``scale`` maps device ids to a factor applied to peak FLOPs and
        memory bandwidth (e.g. 0.5 for a device running at half speed —
        a persistent straggler).  Memory capacity is unchanged.
        """
        unknown = set(scale) - set(self.device_ids)
        if unknown:
            raise PlacementError(f"unknown devices {sorted(unknown)}")
        if any(f <= 0 for f in scale.values()):
            raise PlacementError(f"compute scale must be positive: {scale}")
        devices: List[Device] = []
        for dev in self._devices:
            factor = scale.get(dev.device_id)
            if factor is None or factor == 1.0:
                devices.append(dev)
                continue
            spec = dataclasses.replace(
                dev.spec,
                model=f"{dev.spec.model} (x{factor:.2f})",
                peak_flops=dev.spec.peak_flops * factor,
                mem_bandwidth=dev.spec.mem_bandwidth * factor,
            )
            devices.append(dataclasses.replace(dev, spec=spec))
        return self._derive(devices, dict(self._links), list(self.servers))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        per = ", ".join(
            f"{s.name}:{s.num_gpus}x{s.gpu_spec.model}" for s in self.servers
        )
        return f"Cluster({per})"
