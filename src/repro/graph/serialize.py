"""Graphdef-style JSON serialization of computation graphs.

The paper's Graph Analyzer consumes TensorFlow's ``graphdef``; this module
provides the equivalent portable representation for our IR so graphs can
be exported, versioned, and re-imported (e.g. to hand a profiled graph to
a remote strategy-search service).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from ..errors import GraphError
from .dag import ComputationGraph
from .op import Operation, OpPhase, TensorSpec

FORMAT_VERSION = 1


def graph_to_dict(graph: ComputationGraph) -> Dict[str, Any]:
    """Portable dict representation (stable field order, JSON-safe)."""
    nodes: List[Dict[str, Any]] = []
    for op in graph:
        nodes.append({
            "name": op.name,
            "op_type": op.op_type,
            "shape": list(op.output.shape),
            "batch_dim": op.output.batch_dim,
            "flops": op.flops,
            "param_bytes": op.param_bytes,
            "phase": op.phase.value,
            "layer": op.layer,
            "attrs": dict(op.attrs),
            "forward_ref": op.forward_ref,
            "batch_scaled": bool(op.batch_scaled),
            "inputs": graph.predecessors(op.name),
        })
    return {
        "format_version": FORMAT_VERSION,
        "name": graph.name,
        "nodes": nodes,
    }


def graph_from_dict(data: Dict[str, Any]) -> ComputationGraph:
    """Rebuild a ComputationGraph from its portable dict form."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise GraphError(
            f"unsupported graphdef format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    try:
        graph = ComputationGraph(data["name"])
        for node in data["nodes"]:
            op = Operation(
                name=node["name"],
                op_type=node["op_type"],
                output=TensorSpec(tuple(node["shape"]), node["batch_dim"]),
                flops=float(node["flops"]),
                param_bytes=int(node["param_bytes"]),
                phase=OpPhase(node["phase"]),
                layer=node.get("layer"),
                attrs=dict(node.get("attrs", {})),
                forward_ref=node.get("forward_ref"),
                batch_scaled=node.get("batch_scaled"),
            )
            graph.add_op(op, node.get("inputs", []))
    except KeyError as missing:
        raise GraphError(f"graphdef missing field {missing}") from None
    graph.validate()
    return graph


def save_graph(graph: ComputationGraph, path: str) -> None:
    """Write a graph to a JSON file."""
    with open(path, "w") as fh:
        json.dump(graph_to_dict(graph), fh, indent=1)


def load_graph(path: str) -> ComputationGraph:
    """Read a graph from a JSON file written by :func:`save_graph`."""
    with open(path) as fh:
        return graph_from_dict(json.load(fh))


def graph_to_dot(graph: ComputationGraph, max_nodes: int = 500) -> str:
    """Graphviz DOT export (phases colour-coded), for inspection."""
    colors = {
        OpPhase.INPUT: "lightgrey",
        OpPhase.FORWARD: "lightblue",
        OpPhase.LOSS: "gold",
        OpPhase.BACKWARD: "lightsalmon",
        OpPhase.APPLY: "lightgreen",
    }
    lines = [f'digraph "{graph.name}" {{', "  rankdir=TB;"]
    for i, op in enumerate(graph):
        if i >= max_nodes:
            lines.append(f'  "..." [label="(+{len(graph) - max_nodes} more)"];')
            break
        lines.append(
            f'  "{op.name}" [label="{op.name}\\n{op.op_type}", '
            f'style=filled, fillcolor={colors[op.phase]}];'
        )
    kept = set(graph.op_names[:max_nodes])
    for src, dst in graph.edges():
        if src in kept and dst in kept:
            lines.append(f'  "{src}" -> "{dst}";')
    lines.append("}")
    return "\n".join(lines)
