"""Graph Analyzer (paper Sec. 3.2).

Extracts the low-level view of the DNN computation graph that the Strategy
Maker consumes: deterministic node indexing, per-phase partition, tensor
sizes on edges, and structural statistics.  This is the equivalent of
reading TensorFlow's ``graphdef`` regardless of which high-level API built
the model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..errors import GraphError
from .dag import ComputationGraph
from .op import Operation, OpPhase


@dataclass
class GraphAnalysis:
    """Immutable analysis products for one computation graph."""

    graph: ComputationGraph
    topo_order: List[str]
    index: Dict[str, int]
    phases: Dict[OpPhase, List[str]] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @property
    def num_ops(self) -> int:
        return len(self.topo_order)

    def edge_bytes(self, src: str, dst: str) -> int:
        """Size of the tensor carried on edge src -> dst."""
        if dst not in self.graph.successors(src):
            raise GraphError(f"no edge {src!r} -> {dst!r}")
        return self.graph.op(src).output_bytes

    def param_ops(self) -> List[Operation]:
        """Forward ops owning trainable parameters."""
        return [
            op for op in self.graph
            if op.param_bytes > 0 and op.phase in (OpPhase.FORWARD, OpPhase.LOSS)
        ]

    def gradient_ops(self) -> List[Operation]:
        """Backward ops producing parameter gradients (need aggregation)."""
        return [op for op in self.graph if op.produces_param_gradient]

    def longest_path_flops(self) -> float:
        """Critical-path FLOPs — a device-independent lower-bound proxy."""
        best: Dict[str, float] = {}
        for name in reversed(self.topo_order):
            op = self.graph.op(name)
            succ_best = max(
                (best[s] for s in self.graph.successors(name)), default=0.0
            )
            best[name] = op.flops + succ_best
        return max(best.values(), default=0.0)

    def summary(self) -> Dict[str, float]:
        out = dict(self.graph.stats())
        out["param_ops"] = len(self.param_ops())
        out["gradient_ops"] = len(self.gradient_ops())
        out["critical_path_flops"] = self.longest_path_flops()
        return out


class GraphAnalyzer:
    """Analyzes a computation DAG prior to strategy making."""

    def analyze(self, graph: ComputationGraph) -> GraphAnalysis:
        topo = graph.topological_order()
        index = {name: i for i, name in enumerate(graph.op_names)}
        phases: Dict[OpPhase, List[str]] = {p: [] for p in OpPhase}
        for op in graph:
            phases[op.phase].append(op.name)

        # Sanity checks a graphdef from a training job must satisfy.
        if not phases[OpPhase.BACKWARD]:
            raise GraphError(
                f"graph {graph.name!r} has no backward ops; build it with "
                "build_training_graph()"
            )
        for op in graph:
            if op.produces_param_gradient and not graph.successors(op.name):
                raise GraphError(
                    f"parameter gradient {op.name!r} has no consumer "
                    "(missing ApplyGradient)"
                )
        return GraphAnalysis(graph=graph, topo_order=topo, index=index,
                             phases=phases)
