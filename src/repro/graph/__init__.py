"""Computation-graph IR: operations, tensors, DAGs, analysis, grouping."""

from .analyzer import GraphAnalysis, GraphAnalyzer
from .builder import GraphBuilder, build_training_graph
from .dag import ComputationGraph
from .op import DTYPE_BYTES, Operation, OpPhase, TensorSpec

__all__ = [
    "ComputationGraph",
    "GraphAnalysis",
    "GraphAnalyzer",
    "GraphBuilder",
    "Operation",
    "OpPhase",
    "TensorSpec",
    "DTYPE_BYTES",
    "build_training_graph",
]
