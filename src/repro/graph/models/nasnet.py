"""NasNet (Zoph et al., 2018) training-graph builder.

NasNet cells are wide, irregular DAGs with many small ops — the hardest
case for schedulers (the paper's Table 7 shows the largest order-scheduling
variance on op-dense models).  We reproduce the normal/reduction cell
structure with separable convolutions and multi-branch combines.
"""

from __future__ import annotations

from typing import List

from ..builder import GraphBuilder
from ..dag import ComputationGraph
from .common import IMAGENET_CLASSES, classifier_head, conv_bn_relu, finish


def _separable(b: GraphBuilder, src: str, channels: int, kernel: int,
               stride: int, layer: str) -> str:
    x = conv_bn_relu(b, src, channels, kernel=kernel, stride=stride,
                     layer=f"{layer}_dw", depthwise=True)
    return conv_bn_relu(b, x, channels, kernel=1, layer=f"{layer}_pw")


def _normal_cell(b: GraphBuilder, prev: str, cur: str, channels: int,
                 layer: str) -> str:
    """NasNet-A normal cell: 5 pairwise combines over {prev, cur}."""
    combines: List[str] = []
    combines.append(b.add_n(
        [_separable(b, cur, channels, 3, 1, f"{layer}_c0a"),
         _separable(b, cur, channels, 5, 1, f"{layer}_c0b")],
        layer=f"{layer}_c0",
    ))
    combines.append(b.add_n(
        [_separable(b, prev, channels, 3, 1, f"{layer}_c1a"),
         _separable(b, cur, channels, 5, 1, f"{layer}_c1b")],
        layer=f"{layer}_c1",
    ))
    pooled = b.pool(cur, stride=1, kind="AvgPool", layer=f"{layer}_c2pool")
    pooled = conv_bn_relu(b, pooled, channels, kernel=1, layer=f"{layer}_c2proj")
    combines.append(b.add_n(
        [pooled, _separable(b, prev, channels, 3, 1, f"{layer}_c2b")],
        layer=f"{layer}_c2",
    ))
    combines.append(_separable(b, prev, channels, 3, 1, f"{layer}_c3"))
    combines.append(_separable(b, cur, channels, 3, 1, f"{layer}_c4"))
    return b.concat(combines, layer=f"{layer}_concat")


def build_nasnet(
    batch_size: int = 192,
    *,
    image_size: int = 224,
    cells_per_stage: int = 4,
    stages: int = 3,
    channels: int = 44,
    classes: int = IMAGENET_CLASSES,
    name: str = "nasnet",
) -> ComputationGraph:
    """NasNet-A training graph (normal cells with separable convs)."""
    b = GraphBuilder(name, batch_size)
    x = b.input((image_size, image_size, 3))
    x = conv_bn_relu(b, x, 32, kernel=3, stride=2, layer="stem")
    prev = x
    for stage in range(stages):
        for cell in range(cells_per_stage):
            nxt = _normal_cell(b, prev, x, channels,
                               layer=f"s{stage}_cell{cell}")
            # project prev to keep concat shapes aligned next round
            prev, x = x, nxt
            x = conv_bn_relu(b, x, channels, kernel=1,
                             layer=f"s{stage}_cell{cell}_squeeze")
            prev = conv_bn_relu(b, prev, channels, kernel=1,
                                layer=f"s{stage}_cell{cell}_prevproj")
        if stage != stages - 1:
            x = b.pool(x, layer=f"s{stage}_reduce")
            prev = b.pool(prev, layer=f"s{stage}_reduce_prev")
            channels *= 2
    classifier_head(b, x, classes)
    return finish(b)
