"""Transformer (Vaswani et al., 2017) training-graph builder.

The paper trains a 6-layer Transformer at batch 720 (8 GPUs) and larger
24/48-layer variants that OOM under pure data parallelism (Tables 1, 3, 4).
The word-embedding / output-projection parameters dominate gradient traffic,
which drives HeteroG's PS-vs-AllReduce and MP decisions for this family.
"""

from __future__ import annotations

from ..builder import GraphBuilder
from ..dag import ComputationGraph
from ..op import TensorSpec
from .common import finish


def transformer_layer(b: GraphBuilder, x: str, hidden: int, heads: int,
                      ffn: int, layer: str) -> str:
    """One post-norm transformer encoder layer (attention + FFN)."""
    attn = b.self_attention(x, heads, layer=f"{layer}_attn")
    x = b.add_n([x, attn], layer=f"{layer}_attn_res")
    x = b.layer_norm(x, layer=f"{layer}_attn_ln")
    ff = b.dense(x, ffn, layer=f"{layer}_ffn1")
    ff = b.activation(ff, kind="Gelu", layer=f"{layer}_ffn_act")
    ff = b.dense(ff, hidden, layer=f"{layer}_ffn2")
    x = b.add_n([x, ff], layer=f"{layer}_ffn_res")
    return b.layer_norm(x, layer=f"{layer}_ffn_ln")


def build_transformer(
    batch_size: int = 720,
    layers: int = 6,
    *,
    seq_len: int = 64,
    hidden: int = 512,
    heads: int = 8,
    ffn: int = 2048,
    vocab: int = 32000,
    name: str | None = None,
) -> ComputationGraph:
    """Transformer training graph with embedding and vocab projection."""
    b = GraphBuilder(name or f"transformer_{layers}l", batch_size)
    tokens = b.input((seq_len,), name="tokens")
    x = b.embedding(tokens, vocab, hidden, layer="embedding")
    for i in range(layers):
        x = transformer_layer(b, x, hidden, heads, ffn, layer=f"layer{i}")
    # output projection back to vocab: the heavy parameter matrix
    logits = b.dense(x, vocab, layer="output_projection")
    pooled = b.add(
        "Mean",
        TensorSpec((batch_size, vocab)),
        [logits],
        name="pooled_logits",
        flops=float(b.graph.op(logits).output.num_elements),
        layer="loss",
    )
    b.softmax_loss(pooled, vocab)
    return finish(b)
