"""Registry of benchmark models with paper / bench / tiny presets.

The paper evaluates 8 model families.  Each entry maps a canonical name to
a builder plus keyword presets:

- ``paper``: faithful depth/width (ResNet-200, 24-layer BERT, ...).  Large
  graphs (hundreds to thousands of ops) — used by the full experiment
  harness when time allows.
- ``bench``: same architecture family at reduced depth so the benchmark
  suite regenerates every table/figure in minutes on CPU.  Relative model
  characteristics (param-heavy VGG fc layers, op-dense NasNet, comm-bound
  Transformer) are preserved.
- ``tiny``: minimal instances for unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from ...errors import GraphError
from ..dag import ComputationGraph
from .bert import build_bert_large
from .inception import build_inception_v3
from .mobilenet import build_mobilenet_v2
from .nasnet import build_nasnet
from .resnet import build_resnet
from .transformer import build_transformer
from .vgg import build_vgg19
from .xlnet import build_xlnet_large


@dataclass(frozen=True)
class ModelEntry:
    """One registered model family with its builder and presets."""
    name: str
    builder: Callable[..., ComputationGraph]
    paper: Dict[str, object] = field(default_factory=dict)
    bench: Dict[str, object] = field(default_factory=dict)
    tiny: Dict[str, object] = field(default_factory=dict)

    def build(self, preset: str = "bench", **overrides) -> ComputationGraph:
        presets = {"paper": self.paper, "bench": self.bench, "tiny": self.tiny}
        if preset not in presets:
            raise GraphError(f"unknown preset {preset!r} for model {self.name}")
        kwargs = dict(presets[preset])
        kwargs.update(overrides)
        return self.builder(**kwargs)


_REGISTRY: Dict[str, ModelEntry] = {}


def _register(entry: ModelEntry) -> None:
    _REGISTRY[entry.name] = entry


_register(ModelEntry(
    "vgg19", build_vgg19,
    paper={"batch_size": 192, "image_size": 112},
    bench={"batch_size": 192, "image_size": 112},
    tiny={"batch_size": 8, "image_size": 32, "fc_units": 64, "classes": 10},
))
_register(ModelEntry(
    "resnet200", build_resnet,
    paper={"batch_size": 192, "depth": 200, "image_size": 112},
    bench={"batch_size": 192, "depth": 50, "image_size": 128,
           "name": "resnet200"},
    tiny={"batch_size": 8, "depth": 50, "image_size": 32, "classes": 10},
))
_register(ModelEntry(
    "inception_v3", build_inception_v3,
    paper={"batch_size": 192, "image_size": 149},
    bench={"batch_size": 192, "cells": 6, "image_size": 149},
    tiny={"batch_size": 8, "cells": 2, "image_size": 64, "classes": 10},
))
_register(ModelEntry(
    "mobilenet_v2", build_mobilenet_v2,
    paper={"batch_size": 192, "image_size": 112},
    bench={"batch_size": 192, "image_size": 112},
    tiny={"batch_size": 8, "image_size": 32, "classes": 10, "width": 0.5},
))
_register(ModelEntry(
    "nasnet", build_nasnet,
    paper={"batch_size": 192, "cells_per_stage": 6, "image_size": 96,
           "channels": 32},
    bench={"batch_size": 192, "cells_per_stage": 2, "image_size": 96,
           "channels": 32},
    tiny={"batch_size": 8, "cells_per_stage": 1, "stages": 2,
          "image_size": 32, "channels": 16, "classes": 10},
))
_register(ModelEntry(
    "transformer", build_transformer,
    paper={"batch_size": 720, "layers": 6, "seq_len": 96},
    bench={"batch_size": 720, "layers": 6, "seq_len": 32, "hidden": 512},
    tiny={"batch_size": 16, "layers": 2, "seq_len": 8, "hidden": 64,
          "heads": 2, "ffn": 128, "vocab": 1000},
))
_register(ModelEntry(
    "bert_large", build_bert_large,
    paper={"batch_size": 48, "layers": 24, "seq_len": 192},
    bench={"batch_size": 48, "layers": 8, "seq_len": 64,
           "name": "bert_large_24l"},
    tiny={"batch_size": 8, "layers": 2, "seq_len": 8, "hidden": 64,
          "heads": 2, "ffn": 128, "vocab": 1000},
))
_register(ModelEntry(
    "xlnet_large", build_xlnet_large,
    paper={"batch_size": 48, "layers": 24, "seq_len": 192},
    bench={"batch_size": 48, "layers": 8, "seq_len": 64,
           "name": "xlnet_large_24l"},
    tiny={"batch_size": 8, "layers": 2, "seq_len": 8, "hidden": 64,
          "heads": 2, "ffn": 128, "vocab": 1000},
))

# The five CNN models of Fig. 3(a) / Table 5.
CNN_MODELS: List[str] = [
    "vgg19", "resnet200", "inception_v3", "mobilenet_v2", "nasnet",
]
# All 8 families of the per-iteration experiments.
ALL_MODELS: List[str] = CNN_MODELS + ["transformer", "bert_large", "xlnet_large"]


def model_names() -> List[str]:
    """Names of all registered benchmark models."""
    return list(_REGISTRY)


def get_model_entry(name: str) -> ModelEntry:
    """Look up a registry entry; raises GraphError for unknown names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise GraphError(
            f"unknown model {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def build_model(name: str, preset: str = "bench", **overrides) -> ComputationGraph:
    """Build a registered benchmark model's full training graph."""
    return get_model_entry(name).build(preset, **overrides)
