"""VGG-19 (Simonyan & Zisserman, 2014) training-graph builder.

VGG's defining trait for HeteroG is its enormous fully-connected layers:
the fc parameters dominate gradient traffic, which is why the paper's
Table 2 shows HeteroG placing the last fc ops on a single GPU (MP) to
eliminate their gradient aggregation.
"""

from __future__ import annotations

from ..builder import GraphBuilder
from ..dag import ComputationGraph
from .common import IMAGENET_CLASSES, conv_bn_relu, finish

# Channel plan of VGG-19: (num_convs, channels) per stage.
_VGG19_STAGES = ((2, 64), (2, 128), (4, 256), (4, 512), (4, 512))


def build_vgg19(
    batch_size: int = 192,
    *,
    image_size: int = 224,
    fc_units: int = 4096,
    classes: int = IMAGENET_CLASSES,
    name: str = "vgg19",
) -> ComputationGraph:
    """VGG-19 training graph with its full-size fc6/fc7 layers."""
    b = GraphBuilder(name, batch_size)
    x = b.input((image_size, image_size, 3))
    for stage, (num_convs, channels) in enumerate(_VGG19_STAGES):
        for i in range(num_convs):
            x = conv_bn_relu(b, x, channels, layer=f"stage{stage}_conv{i}")
        x = b.pool(x, layer=f"stage{stage}_pool")
    # flatten (keep all spatial features: the fc6 weight matrix is the
    # model's defining 100M-parameter block)
    spec = b.graph.op(x).output
    from ..op import TensorSpec
    flat = b.add(
        "Reshape",
        TensorSpec((batch_size, spec.num_elements // batch_size)),
        [x],
        name="flatten",
        flops=0.0,
        layer="head",
    )
    x = b.dense(flat, fc_units, layer="fc6")
    x = b.activation(x, layer="fc6")
    x = b.dense(x, fc_units, layer="fc7")
    x = b.activation(x, layer="fc7")
    b.softmax_loss(x, classes)
    return finish(b)
