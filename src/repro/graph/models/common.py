"""Shared building blocks for the benchmark-model graph builders."""

from __future__ import annotations

from typing import Optional

from ..builder import GraphBuilder, build_training_graph
from ..dag import ComputationGraph

IMAGENET_CLASSES = 1000


def conv_bn_relu(
    b: GraphBuilder,
    src: str,
    channels: int,
    kernel: int = 3,
    stride: int = 1,
    *,
    layer: str,
    depthwise: bool = False,
) -> str:
    """Conv2D -> BatchNorm -> ReLU, the standard CNN micro-block."""
    x = b.conv2d(src, channels, kernel, stride, layer=layer, depthwise=depthwise)
    x = b.batch_norm(x, layer=layer)
    return b.activation(x, layer=layer)


def classifier_head(b: GraphBuilder, src: str, classes: int = IMAGENET_CLASSES) -> str:
    """Global average pool + softmax cross-entropy loss."""
    x = b.global_pool(src, layer="head")
    return b.softmax_loss(x, classes)


def finish(b: GraphBuilder) -> ComputationGraph:
    """Build the full training graph (FP + BP + apply) and validate it."""
    graph = build_training_graph(b)
    graph.validate()
    return graph
