"""BERT-large (Devlin et al., 2018) training-graph builder.

24 transformer layers, hidden 1024, 16 heads, plus the 30k-word embedding
table whose gradients HeteroG keeps on a single device (Table 2's MP
column).  The 48-layer variant reproduces the paper's large-model rows.
"""

from __future__ import annotations

from ..builder import GraphBuilder
from ..dag import ComputationGraph
from ..op import TensorSpec
from .common import finish
from .transformer import transformer_layer

BERT_VOCAB = 30522


def build_bert_large(
    batch_size: int = 48,
    layers: int = 24,
    *,
    seq_len: int = 128,
    hidden: int = 1024,
    heads: int = 16,
    ffn: int = 4096,
    vocab: int = BERT_VOCAB,
    name: str | None = None,
) -> ComputationGraph:
    """BERT-large training graph (layers/seq/hidden configurable)."""
    b = GraphBuilder(name or f"bert_large_{layers}l", batch_size)
    tokens = b.input((seq_len,), name="tokens")
    x = b.embedding(tokens, vocab, hidden, layer="word_embedding")
    # segment + position embeddings, added in
    pos = b.add(
        "Embedding",
        TensorSpec((batch_size, seq_len, hidden)),
        [tokens],
        name="position_embedding",
        flops=float(batch_size * seq_len * hidden),
        param_bytes=(512 + 2) * hidden * 4,
        layer="pos_embedding",
    )
    x = b.add_n([x, pos], layer="embedding_sum")
    x = b.layer_norm(x, layer="embedding_ln")
    for i in range(layers):
        x = transformer_layer(b, x, hidden, heads, ffn, layer=f"layer{i}")
    # masked-LM head: dense + output projection to vocab
    x = b.dense(x, hidden, layer="mlm_transform")
    x = b.activation(x, kind="Gelu", layer="mlm_act")
    logits = b.dense(x, vocab, layer="mlm_projection")
    pooled = b.add(
        "Mean",
        TensorSpec((batch_size, vocab)),
        [logits],
        name="pooled_logits",
        flops=float(b.graph.op(logits).output.num_elements),
        layer="loss",
    )
    b.softmax_loss(pooled, vocab)
    return finish(b)
