"""Benchmark DNN model zoo (op-level training graphs)."""

from .bert import build_bert_large
from .inception import build_inception_v3
from .mobilenet import build_mobilenet_v2
from .nasnet import build_nasnet
from .registry import (
    ALL_MODELS,
    CNN_MODELS,
    ModelEntry,
    build_model,
    get_model_entry,
    model_names,
)
from .resnet import build_resnet
from .transformer import build_transformer
from .vgg import build_vgg19
from .xlnet import build_xlnet_large

__all__ = [
    "ALL_MODELS",
    "CNN_MODELS",
    "ModelEntry",
    "build_model",
    "get_model_entry",
    "model_names",
    "build_vgg19",
    "build_resnet",
    "build_inception_v3",
    "build_mobilenet_v2",
    "build_nasnet",
    "build_transformer",
    "build_bert_large",
    "build_xlnet_large",
]
