"""MobileNet-v2 (Sandler et al., 2018) training-graph builder.

MobileNet's inverted-residual blocks are compute-light but op-dense, so
communication overhead dominates — the regime where the paper reports the
largest relative benefit from even replica allocation (Table 2: EV-AR is
the majority strategy).
"""

from __future__ import annotations

from ..builder import GraphBuilder
from ..dag import ComputationGraph
from .common import IMAGENET_CLASSES, classifier_head, conv_bn_relu, finish

# (expansion, out_channels, repeats, stride) per stage — the v2 plan.
_V2_PLAN = (
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
)


def _inverted_residual(b: GraphBuilder, src: str, expansion: int,
                       out_channels: int, stride: int, layer: str) -> str:
    in_channels = b.graph.op(src).output.shape[-1]
    x = src
    if expansion != 1:
        x = conv_bn_relu(b, x, in_channels * expansion, kernel=1,
                         layer=f"{layer}_expand")
    x = conv_bn_relu(b, x, in_channels * expansion, kernel=3, stride=stride,
                     layer=f"{layer}_dw", depthwise=True)
    x = b.conv2d(x, out_channels, kernel=1, layer=f"{layer}_project")
    x = b.batch_norm(x, layer=f"{layer}_project")
    if stride == 1 and in_channels == out_channels:
        x = b.add_n([x, src], layer=f"{layer}_residual")
    return x


def build_mobilenet_v2(
    batch_size: int = 192,
    *,
    image_size: int = 224,
    classes: int = IMAGENET_CLASSES,
    width: float = 1.0,
    name: str = "mobilenet_v2",
) -> ComputationGraph:
    """MobileNet-v2 training graph (inverted residual blocks)."""
    b = GraphBuilder(name, batch_size)
    x = b.input((image_size, image_size, 3))
    x = conv_bn_relu(b, x, int(32 * width), kernel=3, stride=2, layer="stem")
    for stage, (expansion, channels, repeats, stride) in enumerate(_V2_PLAN):
        for i in range(repeats):
            x = _inverted_residual(
                b, x, expansion, int(channels * width),
                stride if i == 0 else 1, layer=f"s{stage}_b{i}",
            )
    x = conv_bn_relu(b, x, int(1280 * width), kernel=1, layer="head_conv")
    classifier_head(b, x, classes)
    return finish(b)
