"""XLNet-large (Yang et al., 2019) training-graph builder.

XLNet's two-stream attention roughly doubles the per-layer attention work
relative to BERT, which is why the paper's XLNet rows run ~2x slower than
BERT at the same depth/batch.  We model each layer as content-stream +
query-stream attention blocks sharing the feed-forward sublayer.
"""

from __future__ import annotations

from ..builder import GraphBuilder
from ..dag import ComputationGraph
from ..op import TensorSpec
from .common import finish

XLNET_VOCAB = 32000


def _two_stream_layer(b: GraphBuilder, x: str, hidden: int, heads: int,
                      ffn: int, layer: str) -> str:
    content = b.self_attention(x, heads, layer=f"{layer}_content")
    # Query stream: only the predicted positions (~1/6 of tokens during
    # permutation-LM pretraining) carry a second stream, so its *memory*
    # footprint is small while the relative-attention compute against the
    # full content stream stays expensive.
    batch, seq, _ = b.graph.op(x).output.shape
    query_tokens = max(1, seq // 6)
    query_in = b.add(
        "Split",
        TensorSpec((batch, query_tokens, hidden)),
        [x],
        name=b._fresh(f"{layer}_query_slice"),
        flops=float(batch * query_tokens * hidden),
        layer=f"{layer}_query",
    )
    # Relative positional attention (Transformer-XL style): recomputes
    # attention against position encodings — roughly doubling per-layer
    # compute relative to BERT (the paper's XLNet rows run ~1.9x slower
    # than BERT at equal depth/batch) with only a small extra output.
    rel = b.add(
        "BatchMatMul",
        TensorSpec((batch, seq, hidden)),
        [content],
        name=b._fresh(f"{layer}_rel_attn"),
        flops=24.0 * batch * seq * hidden * hidden,
        layer=f"{layer}_content",
        attrs={"heads": heads},
    )
    content = b.add_n([content, rel], layer=f"{layer}_rel_res")
    query = b.self_attention(query_in, heads, layer=f"{layer}_query")
    query_out = b.add(
        "ConcatV2",
        TensorSpec((batch, seq, hidden)),
        [query, x],
        name=b._fresh(f"{layer}_query_scatter"),
        flops=float(batch * seq * hidden),
        layer=f"{layer}_query",
    )
    x = b.add_n([x, content], layer=f"{layer}_content_res")
    x = b.add_n([x, query_out], layer=f"{layer}_query_res")
    x = b.layer_norm(x, layer=f"{layer}_attn_ln")
    ff = b.dense(x, ffn, layer=f"{layer}_ffn1")
    ff = b.activation(ff, kind="Gelu", layer=f"{layer}_ffn_act")
    ff = b.dense(ff, hidden, layer=f"{layer}_ffn2")
    x = b.add_n([x, ff], layer=f"{layer}_ffn_res")
    return b.layer_norm(x, layer=f"{layer}_ffn_ln")


def build_xlnet_large(
    batch_size: int = 48,
    layers: int = 24,
    *,
    seq_len: int = 128,
    hidden: int = 1024,
    heads: int = 16,
    ffn: int = 4096,
    vocab: int = XLNET_VOCAB,
    name: str | None = None,
) -> ComputationGraph:
    """XLNet-large training graph (two-stream relative attention)."""
    b = GraphBuilder(name or f"xlnet_large_{layers}l", batch_size)
    tokens = b.input((seq_len,), name="tokens")
    x = b.embedding(tokens, vocab, hidden, layer="word_embedding")
    # relative positional encoding parameters
    rel = b.add(
        "Embedding",
        TensorSpec((batch_size, seq_len, hidden)),
        [tokens],
        name="relative_encoding",
        flops=float(batch_size * seq_len * hidden),
        param_bytes=2 * seq_len * hidden * 4,
        layer="rel_encoding",
    )
    x = b.add_n([x, rel], layer="embedding_sum")
    for i in range(layers):
        x = _two_stream_layer(b, x, hidden, heads, ffn, layer=f"layer{i}")
    logits = b.dense(x, vocab, layer="lm_projection")
    pooled = b.add(
        "Mean",
        TensorSpec((batch_size, vocab)),
        [logits],
        name="pooled_logits",
        flops=float(b.graph.op(logits).output.num_elements),
        layer="loss",
    )
    b.softmax_loss(pooled, vocab)
    return finish(b)
