"""Inception-v3 (Szegedy et al., 2016) training-graph builder.

Inception's multi-branch cells give the DAG genuine width, exercising the
scheduler's ability to overlap independent branches on different devices.
"""

from __future__ import annotations

from ..builder import GraphBuilder
from ..dag import ComputationGraph
from .common import IMAGENET_CLASSES, classifier_head, conv_bn_relu, finish


def _inception_cell(b: GraphBuilder, src: str, channels: int, layer: str) -> str:
    branch1 = conv_bn_relu(b, src, channels, kernel=1, layer=f"{layer}_b1x1")

    branch2 = conv_bn_relu(b, src, channels, kernel=1, layer=f"{layer}_b3_reduce")
    branch2 = conv_bn_relu(b, branch2, channels, kernel=3, layer=f"{layer}_b3")

    branch3 = conv_bn_relu(b, src, channels // 2, kernel=1,
                           layer=f"{layer}_b5_reduce")
    branch3 = conv_bn_relu(b, branch3, channels, kernel=5, layer=f"{layer}_b5")

    branch4 = b.pool(src, stride=1, kind="AvgPool", layer=f"{layer}_pool")
    branch4 = conv_bn_relu(b, branch4, channels, kernel=1,
                           layer=f"{layer}_pool_proj")

    return b.concat([branch1, branch2, branch3, branch4], layer=f"{layer}_concat")


def build_inception_v3(
    batch_size: int = 192,
    *,
    image_size: int = 299,
    cells: int = 11,
    classes: int = IMAGENET_CLASSES,
    name: str = "inception_v3",
) -> ComputationGraph:
    """Build Inception-v3; ``cells`` controls the number of mixed cells
    (11 in the reference network: 5x 35x35, 4x 17x17, 2x 8x8)."""
    b = GraphBuilder(name, batch_size)
    x = b.input((image_size, image_size, 3))
    x = conv_bn_relu(b, x, 32, kernel=3, stride=2, layer="stem0")
    x = conv_bn_relu(b, x, 64, kernel=3, layer="stem1")
    x = b.pool(x, layer="stem_pool0")
    x = conv_bn_relu(b, x, 192, kernel=3, layer="stem2")
    x = b.pool(x, layer="stem_pool1")

    channels = 64
    for cell in range(cells):
        x = _inception_cell(b, x, channels, layer=f"mixed{cell}")
        # reduce spatial resolution roughly every third of the network
        if cell in (cells // 3, 2 * cells // 3):
            x = b.pool(x, layer=f"reduce{cell}")
            channels *= 2
    classifier_head(b, x, classes)
    return finish(b)
