"""ResNet (He et al., 2016) training-graph builder with bottleneck blocks.

``build_resnet(depth=200)`` reproduces the ResNet-200 configuration used in
the paper's evaluation; smaller depths (50, 101) are available for tests
and scaled-down benchmark runs.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ...errors import GraphError
from ..builder import GraphBuilder
from ..dag import ComputationGraph
from .common import IMAGENET_CLASSES, classifier_head, conv_bn_relu

# blocks per stage for the standard bottleneck ResNets
_BLOCK_PLANS: Dict[int, Tuple[int, int, int, int]] = {
    50: (3, 4, 6, 3),
    101: (3, 4, 23, 3),
    152: (3, 8, 36, 3),
    200: (3, 24, 36, 3),
}


def _bottleneck(b: GraphBuilder, src: str, channels: int, stride: int,
                layer: str, project: bool) -> str:
    x = conv_bn_relu(b, src, channels, kernel=1, stride=1, layer=f"{layer}_a")
    x = conv_bn_relu(b, x, channels, kernel=3, stride=stride, layer=f"{layer}_b")
    x = b.conv2d(x, channels * 4, kernel=1, stride=1, layer=f"{layer}_c")
    x = b.batch_norm(x, layer=f"{layer}_c")
    shortcut = src
    if project:
        shortcut = b.conv2d(src, channels * 4, kernel=1, stride=stride,
                            layer=f"{layer}_proj")
        shortcut = b.batch_norm(shortcut, layer=f"{layer}_proj")
    x = b.add_n([x, shortcut], layer=f"{layer}_add")
    return b.activation(x, layer=f"{layer}_add")


def build_resnet(
    batch_size: int = 192,
    depth: int = 200,
    *,
    image_size: int = 224,
    classes: int = IMAGENET_CLASSES,
    name: str | None = None,
) -> ComputationGraph:
    """Bottleneck ResNet training graph (depth in {50, 101, 152, 200})."""
    if depth not in _BLOCK_PLANS:
        raise GraphError(
            f"unsupported resnet depth {depth}; choose from {sorted(_BLOCK_PLANS)}"
        )
    plan = _BLOCK_PLANS[depth]
    b = GraphBuilder(name or f"resnet{depth}", batch_size)
    x = b.input((image_size, image_size, 3))
    x = conv_bn_relu(b, x, 64, kernel=7, stride=2, layer="stem")
    x = b.pool(x, layer="stem_pool")
    channels = 64
    for stage, num_blocks in enumerate(plan):
        for block in range(num_blocks):
            stride = 2 if (stage > 0 and block == 0) else 1
            x = _bottleneck(
                b, x, channels, stride,
                layer=f"s{stage}_b{block}", project=(block == 0),
            )
        channels *= 2
    classifier_head(b, x, classes)
    from .common import finish
    return finish(b)
