"""Helpers for constructing forward graphs and deriving training graphs.

Model builders (``repro.graph.models``) use :class:`GraphBuilder` to lay
down forward operations with realistic shapes/FLOPs, then call
:func:`build_training_graph` which mirrors the forward DAG with backward
(gradient) operations and per-parameter ApplyGradient ops — the same
structure TensorFlow's graphdef exposes to HeteroG's Graph Analyzer.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import GraphError
from .dag import ComputationGraph
from .op import DTYPE_BYTES, Operation, OpPhase, TensorSpec

# Backward op-type naming, matching the TensorFlow kernels the paper profiles
# (Fig. 3(b) plots Conv2DBpFilter / Conv2DBpInput explicitly).
_BACKWARD_INPUT_SUFFIX = "BpInput"
_BACKWARD_PARAM_SUFFIX = "BpFilter"


class GraphBuilder:
    """Incrementally builds the *forward* part of a computation DAG."""

    def __init__(self, name: str, batch_size: int):
        if batch_size <= 0:
            raise GraphError(f"batch size must be positive, got {batch_size}")
        self.graph = ComputationGraph(name)
        self.batch_size = batch_size
        self._counter: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # naming
    # ------------------------------------------------------------------ #
    def _fresh(self, kind: str) -> str:
        idx = self._counter.get(kind, 0)
        self._counter[kind] = idx + 1
        return f"{kind.lower()}_{idx}"

    # ------------------------------------------------------------------ #
    # generic node insertion
    # ------------------------------------------------------------------ #
    def add(
        self,
        op_type: str,
        output: TensorSpec,
        inputs: Sequence[str] = (),
        *,
        name: Optional[str] = None,
        flops: float = 0.0,
        param_bytes: int = 0,
        layer: Optional[str] = None,
        attrs: Optional[dict] = None,
    ) -> str:
        op = Operation(
            name=name or self._fresh(op_type),
            op_type=op_type,
            output=output,
            flops=flops,
            param_bytes=param_bytes,
            phase=OpPhase.FORWARD,
            layer=layer,
            attrs=attrs or {},
        )
        self.graph.add_op(op, inputs)
        return op.name

    # ------------------------------------------------------------------ #
    # layer helpers (shapes in NHWC / [batch, seq, hidden] convention)
    # ------------------------------------------------------------------ #
    def input(self, shape: Tuple[int, ...], name: str = "input") -> str:
        spec = TensorSpec((self.batch_size,) + tuple(shape))
        op = Operation(name, "Input", spec, phase=OpPhase.INPUT)
        self.graph.add_op(op)
        return name

    def conv2d(
        self,
        src: str,
        out_channels: int,
        kernel: int = 3,
        stride: int = 1,
        *,
        layer: Optional[str] = None,
        depthwise: bool = False,
        name: Optional[str] = None,
    ) -> str:
        in_spec = self.graph.op(src).output
        if len(in_spec.shape) != 4:
            raise GraphError(f"conv2d expects NHWC input, got {in_spec.shape}")
        batch, height, width, in_ch = in_spec.shape
        out_h = max(1, math.ceil(height / stride))
        out_w = max(1, math.ceil(width / stride))
        out = TensorSpec((batch, out_h, out_w, out_channels))
        if depthwise:
            # depthwise conv: one filter per input channel
            flops = 2.0 * batch * out_h * out_w * kernel * kernel * in_ch
            params = kernel * kernel * in_ch * DTYPE_BYTES
            op_type = "DepthwiseConv2D"
        else:
            flops = 2.0 * batch * out_h * out_w * kernel * kernel * in_ch * out_channels
            params = kernel * kernel * in_ch * out_channels * DTYPE_BYTES
            op_type = "Conv2D"
        return self.add(
            op_type,
            out,
            [src],
            name=name,
            flops=flops,
            param_bytes=params,
            layer=layer,
            attrs={"kernel": kernel, "stride": stride, "in_channels": in_ch},
        )

    def conv1d(
        self,
        src: str,
        out_channels: int,
        kernel: int = 3,
        *,
        layer: Optional[str] = None,
        name: Optional[str] = None,
    ) -> str:
        in_spec = self.graph.op(src).output
        if len(in_spec.shape) != 3:
            raise GraphError(f"conv1d expects [B, L, C] input, got {in_spec.shape}")
        batch, length, in_ch = in_spec.shape
        out = TensorSpec((batch, length, out_channels))
        flops = 2.0 * batch * length * kernel * in_ch * out_channels
        params = kernel * in_ch * out_channels * DTYPE_BYTES
        return self.add(
            "Conv1D",
            out,
            [src],
            name=name,
            flops=flops,
            param_bytes=params,
            layer=layer,
            attrs={"kernel": kernel, "in_channels": in_ch},
        )

    def dense(
        self,
        src: str,
        units: int,
        *,
        layer: Optional[str] = None,
        name: Optional[str] = None,
    ) -> str:
        in_spec = self.graph.op(src).output
        in_features = in_spec.shape[-1]
        rows = in_spec.num_elements // in_features
        out = TensorSpec(in_spec.shape[:-1] + (units,), in_spec.batch_dim)
        flops = 2.0 * rows * in_features * units
        params = (in_features * units + units) * DTYPE_BYTES
        return self.add(
            "MatMul",
            out,
            [src],
            name=name,
            flops=flops,
            param_bytes=params,
            layer=layer,
            attrs={"in_features": in_features, "units": units},
        )

    def embedding(
        self,
        src: str,
        vocab: int,
        hidden: int,
        *,
        layer: Optional[str] = None,
        name: Optional[str] = None,
    ) -> str:
        """Embedding lookup — huge parameter table, tiny compute."""
        in_spec = self.graph.op(src).output
        out = TensorSpec(in_spec.shape + (hidden,), in_spec.batch_dim)
        params = vocab * hidden * DTYPE_BYTES
        flops = float(out.num_elements)  # gather cost proxy
        return self.add(
            "Embedding",
            out,
            [src],
            name=name,
            flops=flops,
            param_bytes=params,
            layer=layer,
            attrs={"vocab": vocab, "hidden": hidden},
        )

    def pool(self, src: str, stride: int = 2, *, kind: str = "MaxPool",
             layer: Optional[str] = None, name: Optional[str] = None) -> str:
        in_spec = self.graph.op(src).output
        batch, height, width, ch = in_spec.shape
        out = TensorSpec(
            (batch, max(1, height // stride), max(1, width // stride), ch)
        )
        flops = float(in_spec.num_elements)
        return self.add(kind, out, [src], name=name, flops=flops, layer=layer,
                        attrs={"stride": stride})

    def global_pool(self, src: str, *, layer: Optional[str] = None,
                    name: Optional[str] = None) -> str:
        in_spec = self.graph.op(src).output
        batch = in_spec.shape[0]
        ch = in_spec.shape[-1]
        out = TensorSpec((batch, ch))
        return self.add("AvgPool", out, [src], name=name,
                        flops=float(in_spec.num_elements), layer=layer)

    def activation(self, src: str, *, kind: str = "Relu",
                   layer: Optional[str] = None, name: Optional[str] = None) -> str:
        spec = self.graph.op(src).output
        return self.add(kind, spec, [src], name=name,
                        flops=float(spec.num_elements), layer=layer)

    def batch_norm(self, src: str, *, layer: Optional[str] = None,
                   name: Optional[str] = None) -> str:
        spec = self.graph.op(src).output
        params = 2 * spec.shape[-1] * DTYPE_BYTES
        return self.add("BatchNorm", spec, [src], name=name,
                        flops=4.0 * spec.num_elements, param_bytes=params,
                        layer=layer)

    def layer_norm(self, src: str, *, layer: Optional[str] = None,
                   name: Optional[str] = None) -> str:
        spec = self.graph.op(src).output
        params = 2 * spec.shape[-1] * DTYPE_BYTES
        return self.add("LayerNorm", spec, [src], name=name,
                        flops=5.0 * spec.num_elements, param_bytes=params,
                        layer=layer)

    def add_n(self, srcs: Sequence[str], *, layer: Optional[str] = None,
              name: Optional[str] = None) -> str:
        specs = [self.graph.op(s).output for s in srcs]
        if len({s.shape for s in specs}) != 1:
            raise GraphError(
                f"add_n requires matching shapes, got {[s.shape for s in specs]}"
            )
        return self.add("AddN", specs[0], srcs, name=name,
                        flops=float(specs[0].num_elements * len(srcs)),
                        layer=layer)

    def concat(self, srcs: Sequence[str], *, layer: Optional[str] = None,
               name: Optional[str] = None) -> str:
        specs = [self.graph.op(s).output for s in srcs]
        last = sum(s.shape[-1] for s in specs)
        out = TensorSpec(specs[0].shape[:-1] + (last,), specs[0].batch_dim)
        return self.add("ConcatV2", out, srcs, name=name,
                        flops=float(out.num_elements), layer=layer)

    def self_attention(
        self,
        src: str,
        heads: int,
        *,
        layer: Optional[str] = None,
    ) -> str:
        """Multi-head self-attention block (QKV projections + attention + out)."""
        in_spec = self.graph.op(src).output
        batch, seq, hidden = in_spec.shape
        qkv = self.dense(src, 3 * hidden, layer=layer,
                         name=self._fresh(f"{layer}_qkv" if layer else "qkv"))
        attn_flops = 2.0 * batch * heads * seq * seq * (hidden // max(1, heads)) * 2
        attn = self.add(
            "BatchMatMul",
            TensorSpec((batch, seq, hidden)),
            [qkv],
            name=self._fresh(f"{layer}_attn" if layer else "attn"),
            flops=attn_flops,
            layer=layer,
            attrs={"heads": heads},
        )
        soft = self.add(
            "Softmax",
            TensorSpec((batch, seq, hidden)),
            [attn],
            name=self._fresh(f"{layer}_softmax" if layer else "softmax"),
            flops=3.0 * batch * heads * seq * seq,
            layer=layer,
        )
        out = self.dense(soft, hidden, layer=layer,
                         name=self._fresh(f"{layer}_attnout" if layer else "attnout"))
        return out

    def softmax_loss(self, src: str, classes: int, name: str = "loss") -> str:
        in_spec = self.graph.op(src).output
        batch = in_spec.shape[0]
        logits = src
        if in_spec.shape[-1] != classes:
            logits = self.dense(src, classes, layer="classifier",
                                name="logits")
        op = Operation(
            name,
            "SoftmaxCrossEntropy",
            TensorSpec((batch,)),
            flops=4.0 * batch * classes,
            phase=OpPhase.LOSS,
            layer="loss",
        )
        self.graph.add_op(op, [logits])
        return name


def build_training_graph(builder: GraphBuilder) -> ComputationGraph:
    """Extend a forward graph in-place with BP and ApplyGradient ops.

    Mirrors the forward DAG: for every forward op ``f`` (reverse
    topological order) we add a gradient op chain; parameterized ops get a
    separate parameter-gradient op (``*BpFilter``) feeding an
    ``ApplyGradient`` op, exactly the pattern the paper's Fig. 7 shows.
    """
    graph = builder.graph
    loss_ops = graph.ops_in_phase(OpPhase.LOSS)
    if len(loss_ops) != 1:
        raise GraphError(
            f"training graph needs exactly one loss op, found {len(loss_ops)}"
        )
    loss = loss_ops[0]

    order = graph.topological_order()
    grad_of: Dict[str, str] = {}  # forward op name -> its grad-input op name

    for fwd_name in reversed(order):
        fwd = graph.op(fwd_name)
        if fwd.phase not in (OpPhase.FORWARD, OpPhase.INPUT, OpPhase.LOSS):
            continue
        if fwd.phase is OpPhase.INPUT:
            continue  # no gradient flows into the input pipeline

        # Gradient comes from the grad ops of forward successors (or starts
        # at the loss).
        grad_inputs: List[str] = [
            grad_of[succ] for succ in graph.successors(fwd_name) if succ in grad_of
        ]
        if fwd.phase is OpPhase.LOSS:
            grad_inputs = []
        grad_inputs.append(fwd_name)  # activation needed for backward

        grad_name = f"{fwd_name}_grad"
        grad_type = (
            "LossGrad" if fwd.phase is OpPhase.LOSS
            else f"{fwd.op_type}{_BACKWARD_INPUT_SUFFIX}"
        )
        grad_op = Operation(
            name=grad_name,
            op_type=grad_type,
            output=fwd.output,  # activation-gradient size ~ activation size
            flops=fwd.flops,
            phase=OpPhase.BACKWARD,
            layer=fwd.layer,
            forward_ref=fwd_name,
        )
        graph.add_op(grad_op, grad_inputs)
        grad_of[fwd_name] = grad_name

        if fwd.param_bytes > 0:
            pgrad_name = f"{fwd_name}_pgrad"
            pgrad_op = Operation(
                name=pgrad_name,
                op_type=f"{fwd.op_type}{_BACKWARD_PARAM_SUFFIX}",
                # full-size parameter gradient; compute scales with batch
                output=TensorSpec(
                    (fwd.param_bytes // DTYPE_BYTES,), batch_dim=None
                ),
                flops=fwd.flops,
                param_bytes=fwd.param_bytes,
                phase=OpPhase.BACKWARD,
                layer=fwd.layer,
                forward_ref=fwd_name,
                batch_scaled=True,
            )
            graph.add_op(pgrad_op, [grad_name])

            apply_op = Operation(
                name=f"{fwd_name}_apply",
                op_type="ApplyGradient",
                output=TensorSpec((fwd.param_bytes // DTYPE_BYTES,),
                                  batch_dim=None),
                flops=2.0 * (fwd.param_bytes / DTYPE_BYTES),
                param_bytes=fwd.param_bytes,
                phase=OpPhase.APPLY,
                layer=fwd.layer,
                forward_ref=fwd_name,
            )
            graph.add_op(apply_op, [pgrad_name])

    graph.validate()
    return graph
