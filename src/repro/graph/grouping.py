"""Operation grouping (paper Sec. 4.1.1, "Per-group embeddings").

"If the number of operations exceeds the maximal group number N, we
choose the top-N operations with longest average execution time ...
We group each of the other operations with one of the N operations with
the least number of hops in-between."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping

import numpy as np

from ..errors import GraphError
from .dag import ComputationGraph


@dataclass
class Grouping:
    """Assignment of every op to one of ``num_groups`` groups."""

    group_of: Dict[str, int]
    anchors: List[str]  # the top-N ops seeding each group

    @property
    def num_groups(self) -> int:
        return len(self.anchors)

    def members(self) -> List[List[str]]:
        out: List[List[str]] = [[] for _ in range(self.num_groups)]
        for name, g in self.group_of.items():
            out[g].append(name)
        return out

    def assignment_matrix(self, op_index: Mapping[str, int]) -> np.ndarray:
        """(N, O) binary matrix S with S[g, o] = 1 iff op o is in group g."""
        mat = np.zeros((self.num_groups, len(op_index)), dtype=np.float64)
        for name, g in self.group_of.items():
            mat[g, op_index[name]] = 1.0
        return mat


def group_operations(graph: ComputationGraph,
                     avg_exec_time: Mapping[str, float],
                     max_groups: int) -> Grouping:
    """Nearest-neighbour grouping seeded by the longest-running ops."""
    if max_groups <= 0:
        raise GraphError(f"max_groups must be positive, got {max_groups}")
    names = graph.op_names
    missing = [n for n in names if n not in avg_exec_time]
    if missing:
        raise GraphError(
            f"avg_exec_time missing for {len(missing)} ops, e.g. {missing[:3]}"
        )

    if len(names) <= max_groups:
        anchors = list(names)
    else:
        # top-N by average execution time; stable tie-break on graph order
        order = sorted(
            range(len(names)),
            key=lambda i: (-avg_exec_time[names[i]], i),
        )
        anchors = sorted(
            (names[i] for i in order[:max_groups]),
            key=lambda n: names.index(n),
        )

    anchor_index = {name: g for g, name in enumerate(anchors)}
    nearest = graph.undirected_hop_distances(anchors)

    group_of: Dict[str, int] = {}
    for name in names:
        if name in anchor_index:
            group_of[name] = anchor_index[name]
        elif name in nearest:
            group_of[name] = anchor_index[nearest[name][1]]
        else:
            # disconnected from every anchor (shouldn't happen for training
            # graphs, but stay total): assign to the first group
            group_of[name] = 0
    return Grouping(group_of=group_of, anchors=anchors)
