"""Operation and tensor primitives of the computation-graph IR.

The paper models a DNN as a DAG whose nodes are operations (Conv2D, MatMul,
...) and whose edges are tensors (activations, gradients).  We follow the
same convention with one simplification that matches how HeteroG consumes
the graph: every operation produces exactly one output tensor, and an edge
``u -> v`` means "v consumes u's output tensor".
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

DTYPE_BYTES = 4  # fp32 throughout, matching the paper's training setup


class OpPhase(enum.Enum):
    """Which part of a training iteration an operation belongs to."""

    INPUT = "input"
    FORWARD = "forward"
    LOSS = "loss"
    BACKWARD = "backward"
    APPLY = "apply"


# Operation types with a batch dimension in their output can be replicated by
# splitting the input along the batch axis (Sec. 2.2 / Sec. 5 of the paper).
# Types in this set never carry a batch dimension.
UNBATCHED_OP_TYPES = frozenset(
    {
        "VariableRead",
        "ApplyGradient",
        "GradientAggregation",
        "LearningRate",
    }
)


@dataclass(frozen=True)
class TensorSpec:
    """Shape/dtype description of an operation's output tensor.

    ``batch_dim`` is the axis holding the mini-batch (always 0 here) or
    ``None`` for tensors without a batch dimension (parameters, gradients
    of parameters, scalars).
    """

    shape: Tuple[int, ...]
    batch_dim: Optional[int] = 0

    def __post_init__(self) -> None:
        if self.batch_dim is not None and self.batch_dim >= len(self.shape):
            raise ValueError(
                f"batch_dim {self.batch_dim} out of range for shape {self.shape}"
            )

    @property
    def num_elements(self) -> int:
        return int(math.prod(self.shape)) if self.shape else 1

    @property
    def size_bytes(self) -> int:
        # memoized: specs are frozen and this is on the compiler's and
        # cost models' hottest paths
        cached = getattr(self, "_size_cache", None)
        if cached is None:
            cached = self.num_elements * DTYPE_BYTES
            object.__setattr__(self, "_size_cache", cached)
        return cached

    @property
    def batch_size(self) -> Optional[int]:
        if self.batch_dim is None:
            return None
        return self.shape[self.batch_dim]

    def with_batch(self, batch: int) -> "TensorSpec":
        """Return a copy whose batch dimension is resized to ``batch``."""
        if self.batch_dim is None:
            return self
        shape = list(self.shape)
        shape[self.batch_dim] = batch
        return TensorSpec(tuple(shape), self.batch_dim)

    def per_sample_bytes(self) -> int:
        """Bytes per batch element (full size for unbatched tensors)."""
        if self.batch_dim is None or self.shape[self.batch_dim] == 0:
            return self.size_bytes
        return self.size_bytes // self.shape[self.batch_dim]


@dataclass
class Operation:
    """A node of the single-GPU computation DAG.

    Attributes mirror what HeteroG's Profiler/Agent need:

    - ``flops``: forward (or backward) floating point work for the *full*
      mini-batch.  Per-replica work scales with the batch share.
    - ``param_bytes``: bytes of trainable parameters owned by this op.  Ops
      with ``param_bytes > 0`` and phase BACKWARD produce parameter
      gradients that need aggregation when the op is data-parallel.
    - ``output``: the (single) output tensor spec.
    - ``attrs``: free-form attributes (e.g. kernel size, dilation) used by
      the profiler's regression features.
    """

    name: str
    op_type: str
    output: TensorSpec
    flops: float = 0.0
    param_bytes: int = 0
    phase: OpPhase = OpPhase.FORWARD
    layer: Optional[str] = None
    attrs: dict = field(default_factory=dict)
    # For BACKWARD ops: name of the forward op this op differentiates.
    forward_ref: Optional[str] = None
    # Whether the op's *compute* scales with the batch share.  Defaults to
    # "output has a batch dimension"; parameter-gradient ops (Conv2DBpFilter,
    # MatMulBpParam, ...) override this to True: their output is a full-size
    # gradient tensor, but each data-parallel replica only processes its
    # slice of the batch.
    batch_scaled: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.batch_scaled is None:
            self.batch_scaled = self.output.batch_dim is not None
        if not self.name:
            raise ValueError("operation name must be non-empty")
        if self.flops < 0:
            raise ValueError(f"op {self.name}: negative flops")
        if self.param_bytes < 0:
            raise ValueError(f"op {self.name}: negative param_bytes")
        if self.op_type in UNBATCHED_OP_TYPES and self.output.batch_dim is not None:
            raise ValueError(
                f"op {self.name}: type {self.op_type} must not have a batch dim"
            )

    @property
    def is_replicable(self) -> bool:
        """Whether the op can be data-parallel replicated.

        Sec. 5: ops whose work does not scale with the batch (VariableRead,
        ApplyGradient, scalars) are never replicated; ops processing a batch
        slice are, even when their *output* lacks the batch dimension (e.g.
        Conv2DBpFilter produces a full-size parameter gradient per replica).
        """
        return bool(self.batch_scaled)

    @property
    def produces_param_gradient(self) -> bool:
        return self.phase is OpPhase.BACKWARD and self.param_bytes > 0

    @property
    def output_bytes(self) -> int:
        return self.output.size_bytes

    def scaled_flops(self, batch_fraction: float) -> float:
        """FLOPs when processing ``batch_fraction`` of the mini-batch."""
        if not self.batch_scaled:
            return self.flops
        return self.flops * batch_fraction

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Operation({self.name!r}, {self.op_type}, out={self.output.shape}, "
            f"flops={self.flops:.3g}, params={self.param_bytes})"
        )
