"""The single-GPU computation DAG (the paper's ``graphdef`` equivalent)."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import GraphError
from .op import Operation, OpPhase


class ComputationGraph:
    """A DAG of :class:`Operation` nodes with tensor edges.

    Edges are directed from producer to consumer; the tensor on edge
    ``u -> v`` is ``u``'s output.  Insertion order is preserved and used as
    the deterministic tie-break everywhere (matching TensorFlow's graphdef
    node ordering).
    """

    def __init__(self, name: str = "graph"):
        self.name = name
        self._ops: Dict[str, Operation] = {}
        self._succ: Dict[str, List[str]] = {}
        self._pred: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_op(self, op: Operation, inputs: Sequence[str] = ()) -> Operation:
        if op.name in self._ops:
            raise GraphError(f"duplicate operation name: {op.name}")
        for src in inputs:
            if src not in self._ops:
                raise GraphError(f"op {op.name}: unknown input {src!r}")
        self._ops[op.name] = op
        self._succ[op.name] = []
        self._pred[op.name] = []
        for src in inputs:
            self.add_edge(src, op.name)
        return op

    def add_edge(self, src: str, dst: str) -> None:
        if src not in self._ops:
            raise GraphError(f"unknown edge source {src!r}")
        if dst not in self._ops:
            raise GraphError(f"unknown edge destination {dst!r}")
        if src == dst:
            raise GraphError(f"self-loop on {src!r}")
        if dst in self._succ[src]:
            return  # idempotent
        self._succ[src].append(dst)
        self._pred[dst].append(src)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def __contains__(self, name: str) -> bool:
        return name in self._ops

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._ops.values())

    def op(self, name: str) -> Operation:
        try:
            return self._ops[name]
        except KeyError:
            raise GraphError(f"unknown operation {name!r}") from None

    @property
    def ops(self) -> List[Operation]:
        return list(self._ops.values())

    @property
    def op_names(self) -> List[str]:
        return list(self._ops.keys())

    def successors(self, name: str) -> List[str]:
        return list(self._succ[name])

    def predecessors(self, name: str) -> List[str]:
        return list(self._pred[name])

    def in_degree(self, name: str) -> int:
        return len(self._pred[name])

    def out_degree(self, name: str) -> int:
        return len(self._succ[name])

    def edges(self) -> Iterator[Tuple[str, str]]:
        for src, dsts in self._succ.items():
            for dst in dsts:
                yield (src, dst)

    def num_edges(self) -> int:
        return sum(len(d) for d in self._succ.values())

    def sources(self) -> List[str]:
        return [n for n in self._ops if not self._pred[n]]

    def sinks(self) -> List[str]:
        return [n for n in self._ops if not self._succ[n]]

    def ops_in_phase(self, phase: OpPhase) -> List[Operation]:
        return [op for op in self._ops.values() if op.phase is phase]

    # ------------------------------------------------------------------ #
    # algorithms
    # ------------------------------------------------------------------ #
    def topological_order(self) -> List[str]:
        """Kahn's algorithm; deterministic (insertion order tie-break)."""
        indeg = {n: len(p) for n, p in self._pred.items()}
        ready = [n for n in self._ops if indeg[n] == 0]
        order: List[str] = []
        head = 0
        while head < len(ready):
            node = ready[head]
            head += 1
            order.append(node)
            for succ in self._succ[node]:
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self._ops):
            raise GraphError(f"graph {self.name!r} contains a cycle")
        return order

    def validate(self) -> None:
        """Raise :class:`GraphError` if the graph is not a valid DAG."""
        self.topological_order()

    def undirected_hop_distances(self, sources: Iterable[str]) -> Dict[str, Tuple[int, str]]:
        """Multi-source BFS over the undirected graph.

        Returns, for every node, ``(hops, nearest_source)`` — used by the
        nearest-neighbour grouping of Sec. 4.1.1.  Ties broken by source
        insertion order via BFS expansion order.
        """
        dist: Dict[str, Tuple[int, str]] = {}
        frontier: List[str] = []
        for s in sources:
            if s not in self._ops:
                raise GraphError(f"unknown grouping source {s!r}")
            if s not in dist:
                dist[s] = (0, s)
                frontier.append(s)
        while frontier:
            nxt: List[str] = []
            for node in frontier:
                hops, root = dist[node]
                for nbr in self._succ[node] + self._pred[node]:
                    if nbr not in dist:
                        dist[nbr] = (hops + 1, root)
                        nxt.append(nbr)
            frontier = nxt
        return dist

    def adjacency_matrix(self) -> np.ndarray:
        """Dense adjacency (directed), indexed by insertion order."""
        index = {n: i for i, n in enumerate(self._ops)}
        mat = np.zeros((len(self._ops), len(self._ops)), dtype=np.float32)
        for src, dst in self.edges():
            mat[index[src], index[dst]] = 1.0
        return mat

    # ------------------------------------------------------------------ #
    # summary statistics
    # ------------------------------------------------------------------ #
    def total_flops(self) -> float:
        return sum(op.flops for op in self._ops.values())

    def total_param_bytes(self) -> int:
        """Bytes of trainable parameters (counted once, on forward ops)."""
        return sum(
            op.param_bytes
            for op in self._ops.values()
            if op.phase in (OpPhase.FORWARD, OpPhase.LOSS)
        )

    def stats(self) -> Dict[str, float]:
        return {
            "ops": len(self._ops),
            "edges": self.num_edges(),
            "total_flops": self.total_flops(),
            "param_bytes": self.total_param_bytes(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ComputationGraph({self.name!r}, ops={len(self._ops)}, "
            f"edges={self.num_edges()})"
        )


def subgraph_phases(graph: ComputationGraph) -> Dict[OpPhase, List[str]]:
    """Partition op names by training phase."""
    out: Dict[OpPhase, List[str]] = {phase: [] for phase in OpPhase}
    for op in graph:
        out[op.phase].append(op.name)
    return out
