"""Content-addressed fingerprints for the plan layer.

A fingerprint names *everything* that determines the outcome of the
compile -> schedule -> simulate chain: the computation graph, the cluster
topology, the fitted profile, the scheduler flags, the op grouping, and
the candidate strategy.  Two evaluations with equal fingerprints are
guaranteed to produce bit-identical plans and simulation results, which
is what makes :class:`~repro.plan.cache.PlanCache` sound.

The expensive context part (graph + cluster + profile + flags) is hashed
once per :class:`~repro.plan.builder.PlanBuilder`; per-strategy
fingerprints then only hash the strategy's per-op decisions on top of
the cached context digest.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping, Optional

from ..cluster.topology import Cluster
from ..graph.dag import ComputationGraph
from ..parallel.strategy import OpStrategy, ParallelKind, Strategy
from ..profiling.profiler import Profile


def _digest(payload: Any) -> str:
    """sha256 of the canonical JSON form of ``payload``."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _graph_payload(graph: ComputationGraph) -> Any:
    ops = []
    for op in graph:
        ops.append((
            op.name, op.op_type, op.phase.value, op.flops, op.param_bytes,
            float(op.output.size_bytes), op.output.batch_dim,
            op.forward_ref, bool(op.batch_scaled),
        ))
    return {
        "name": graph.name,
        "ops": ops,
        "edges": sorted(graph.edges()),
    }


def _cluster_payload(cluster: Cluster) -> Any:
    devices = [
        (d.device_id, d.server, d.spec.model, int(d.memory_bytes),
         int(d.usable_memory_bytes))
        for d in cluster.devices
    ]
    links = [
        (link.src, link.dst, float(link.bandwidth), float(link.latency))
        for link in cluster.links()
    ]
    return {"devices": devices, "links": sorted(links)}


def _profile_payload(profile: Profile) -> Any:
    op_models = {
        f"{op}\x00{model}": (reg.slope, reg.intercept)
        for (op, model), reg in profile.op_models.items()
    }
    link_models = {
        f"{src}\x00{dst}": (reg.inv_bandwidth, reg.latency)
        for (src, dst), reg in profile.link_models.items()
    }
    return {
        "graph": profile.graph_name,
        "device_model": dict(profile.device_model),
        "op_models": op_models,
        "link_models": link_models,
    }


def fingerprint_cluster(cluster: Cluster) -> str:
    """Digest of a cluster topology alone (devices, in order, + links).

    Two clusters with equal fingerprints are interchangeable for the
    plan layer.  The elastic subsystem relies on this to check that
    :meth:`~repro.cluster.topology.Cluster.with_devices` round-trips
    :meth:`~repro.cluster.topology.Cluster.without_devices` exactly.
    """
    return _digest(_cluster_payload(cluster))


def fingerprint_context(graph: ComputationGraph, cluster: Cluster,
                        profile: Profile, *, use_order_scheduling: bool,
                        group_of: Optional[Mapping[str, int]] = None) -> str:
    """Digest of one (graph, cluster, profile, flags) evaluation context."""
    return _digest({
        "graph": _graph_payload(graph),
        "cluster": _cluster_payload(cluster),
        "profile": _profile_payload(profile),
        "use_order_scheduling": bool(use_order_scheduling),
        "group_of": dict(group_of or {}),
    })


def _op_strategy_payload(st: OpStrategy) -> Any:
    if st.kind is ParallelKind.MP:
        return ("mp", st.device)
    return (
        "dp",
        sorted(st.replicas.items()),
        st.comm.value if st.comm else None,
        st.allocation.value if st.allocation else None,
    )


def fingerprint_strategy(context_fingerprint: str, strategy: Strategy) -> str:
    """Digest of a candidate strategy within one evaluation context."""
    per_op = {name: _op_strategy_payload(st) for name, st in strategy.items()}
    return _digest({"context": context_fingerprint, "per_op": per_op})
