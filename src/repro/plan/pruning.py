"""BestSoFar: the shared prune threshold for branch-and-bound search.

Candidate evaluation prunes in two places — a static admissible lower
bound before any simulation, and a cooperative mid-simulation abort —
and both need one answer: *above what makespan is this candidate
provably useless?*  A :class:`BestSoFar` owns that answer for one
search.  It is:

- **monotonic**: the threshold only ever tightens as exact feasible
  makespans are observed, so serving a cached pruned outcome recorded
  at a looser threshold stays sound within the same search;
- **thread-safe**: the serial loop, the process-pool fold-back and the
  fleet manager's result loop all observe into the same tracker;
- **k-aware**: an elite-selection search (the CEM baseline keeps the
  ``num_elite`` best of each round) prunes at the *k-th best* observed,
  not the best — a candidate only becomes useless once it can neither
  enter the elite set nor improve the global best.  ``keep=1`` (the
  default) is plain argmin.  A ``floor`` tracker chains a per-round
  tracker to a global one: observations forward to the floor and the
  effective threshold is ``max(own kth-best, floor threshold)``, i.e. a
  candidate must be useless for *both* purposes to be pruned.

Only **exact** makespans may be observed — never a pruned outcome's
partial time — and pruning compares strictly (``time > threshold``), so
ties survive to the exact comparison and the surviving winner is
bit-identical to an unpruned search.
"""

from __future__ import annotations

import heapq
import threading
from typing import Optional


class BestSoFar:
    """Monotonic, thread-safe best-makespan tracker for one search."""

    def __init__(self, limit: float = float("inf"), *,
                 keep: int = 1, floor: Optional["BestSoFar"] = None):
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.keep = keep
        self.floor = floor
        self._lock = threading.Lock()
        self._limit = float(limit)
        # max-heap (negated) of the ``keep`` smallest observations
        self._worst_of_best: list = []

    def observe(self, time: float) -> None:
        """Record one exact feasible makespan (never a pruned partial)."""
        if time != time or time == float("inf"):  # NaN / inf guard
            return
        with self._lock:
            heap = self._worst_of_best
            if len(heap) < self.keep:
                heapq.heappush(heap, -time)
            elif time < -heap[0]:
                heapq.heapreplace(heap, -time)
        if self.floor is not None:
            self.floor.observe(time)

    def threshold(self) -> float:
        """Current prune limit: candidates strictly above it are useless.

        ``inf`` until ``keep`` exact makespans have been observed (or a
        finite initial ``limit`` was given); chained trackers return the
        max of their own k-th best and the floor's threshold.
        """
        with self._lock:
            if len(self._worst_of_best) < self.keep:
                own = self._limit
            else:
                own = min(self._limit, -self._worst_of_best[0])
        if self.floor is not None:
            # a candidate must be useless for both trackers before it
            # can be pruned, so the chained threshold is the looser one
            own = max(own, self.floor.threshold())
        return own

    @property
    def best(self) -> float:
        """Smallest exact makespan observed so far (``inf`` if none)."""
        with self._lock:
            if not self._worst_of_best:
                return float("inf")
            return -max(self._worst_of_best)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BestSoFar(threshold={self.threshold():.6g}, "
                f"keep={self.keep})")
