"""BatchEvaluator: evaluate many candidate strategies concurrently.

Strategy search is dominated by evaluator throughput (thousands of
candidates per search).  The canonical population entry point is
:meth:`PlanBuilder.evaluate_many` — lane-batched bounds, prebound
pruning, ascending-bound evaluation order.  The BatchEvaluator is the
multi-context / multi-process front end over it: ``evaluate`` and
``evaluate_pairs`` are two adapters over **one** implementation
(``evaluate`` wraps each strategy with its context and delegates to
``evaluate_pairs``; both return outcomes in input order) which fans
candidates over a process pool while keeping the results bit-identical
to the serial path:

- results come back in input order, regardless of completion order;
- every worker runs the exact deterministic PlanBuilder chain, so a
  parallel evaluation equals a serial one value-for-value;
- duplicate candidates inside one batch are evaluated once;
- outcomes already cached by the parent builder are served without
  touching the pool, and fresh worker results are folded back into the
  parent's outcome cache;
- ``max_workers=1`` (the default) bypasses multiprocessing entirely, and
  any pool failure (restricted sandboxes, missing semaphores) degrades
  to the serial path instead of erroring.

Workers are primed once with the evaluation context(s) — graph, cluster,
profile, scheduler flags — via the pool initializer; per-task payloads
are only the portable dict form of each strategy.

When a planning-service **fleet** backend is live in this process
(``repro.service.backends.active_fleet()``), the evaluator borrows the
fleet's persistent workers for its fan-out instead of opening a second
private pool — same priming contract (contexts keyed by their content
digest), same ordering guarantee, with graceful fallback to the private
pool or serial path if the fleet refuses (closing, lost workers, ...).
"""

from __future__ import annotations

import concurrent.futures
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..parallel.serialize import strategy_from_dict, strategy_to_dict
from ..parallel.strategy import Strategy
from .builder import PlanBuilder
from .plan import EvalOutcome
from .pruning import BestSoFar

DEFAULT_CONTEXT = "default"

#: best-so-far for one batch: a single tracker, or one tracker per
#: context for mixed-context batches (missing contexts are unpruned)
BestMap = Union[BestSoFar, Mapping[str, BestSoFar]]

# Per-process evaluation contexts, installed by the pool initializer.
_WORKER_BUILDERS: Dict[str, PlanBuilder] = {}


def _init_worker(payloads: Dict[str, tuple]) -> None:
    _WORKER_BUILDERS.clear()
    for name, (graph, cluster, profile, order, group_of) in payloads.items():
        _WORKER_BUILDERS[name] = PlanBuilder(
            graph, cluster, profile,
            use_order_scheduling=order, group_of=group_of,
        )


def _worker_evaluate(context: str, strategy_dict: dict,
                     prune_above: Optional[float] = None,
                     prune: bool = True) -> EvalOutcome:
    builder = _WORKER_BUILDERS[context]
    strategy = strategy_from_dict(strategy_dict, builder.graph,
                                  builder.cluster)
    return builder.evaluate(strategy, prune=prune, prune_above=prune_above)


def _best_for(best: Optional[BestMap], context: str) -> Optional[BestSoFar]:
    if best is None or isinstance(best, BestSoFar):
        return best
    return best.get(context)


class BatchEvaluator:
    """Evaluates batches of strategies against one or more PlanBuilders."""

    def __init__(self,
                 builders: Union[PlanBuilder, Mapping[str, PlanBuilder]], *,
                 max_workers: int = 1):
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if isinstance(builders, PlanBuilder):
            builders = {DEFAULT_CONTEXT: builders}
        if not builders:
            raise ValueError("BatchEvaluator needs at least one PlanBuilder")
        self._builders: Dict[str, PlanBuilder] = dict(builders)
        self.max_workers = max_workers
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None

    # ------------------------------------------------------------------ #
    def evaluate(self, strategies: Sequence[Strategy],
                 context: Optional[str] = None, *,
                 best: Optional[BestMap] = None,
                 prune: bool = True) -> List[EvalOutcome]:
        """Evaluate candidates for one context, preserving input order."""
        if context is None:
            if len(self._builders) != 1:
                raise ValueError(
                    "multiple contexts registered; pass context= explicitly"
                )
            context = next(iter(self._builders))
        return self.evaluate_pairs([(context, s) for s in strategies],
                                   best=best, prune=prune)

    def evaluate_pairs(self, pairs: Sequence[Tuple[str, Strategy]], *,
                       best: Optional[BestMap] = None,
                       prune: bool = True) -> List[EvalOutcome]:
        """Evaluate (context, strategy) pairs, preserving input order.

        ``best`` threads the search's :class:`BestSoFar` threshold(s)
        into every path (serial, private pool, fleet borrow); exact
        feasible results are observed back into it, each exactly once.
        The guarantee under pruning is *winner identity*: the candidate
        an argmin over these outcomes selects — and its outcome — is
        bit-identical to ``prune=False``; losing candidates may come
        back as ``pruned`` outcomes instead of full ones.
        """
        results: List[Optional[EvalOutcome]] = [None] * len(pairs)
        # (context, fingerprint) -> indices awaiting that evaluation
        pending: Dict[Tuple[str, str], List[int]] = {}
        todo: List[Tuple[str, Strategy, str]] = []
        for i, (context, strategy) in enumerate(pairs):
            builder = self._builders[context]
            fp = builder.fingerprint(strategy)
            key = (context, fp)
            if key in pending:
                pending[key].append(i)
                continue
            tracker = _best_for(best, context) if prune else None
            limit = builder._prune_limit(tracker, None) if prune else None
            cached = builder.cached_outcome(fp, limit=limit, best=tracker)
            if cached is not None:
                results[i] = cached
                continue
            pending[key] = [i]
            todo.append((context, strategy, fp))

        if todo:
            outcomes = self._evaluate_unique(todo, best=best, prune=prune)
            for (context, _, fp), outcome in zip(todo, outcomes):
                self._builders[context].seed_outcome(fp, outcome)
                for i in pending[(context, fp)]:
                    results[i] = outcome
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    def _evaluate_unique(self, todo: Sequence[Tuple[str, Strategy, str]], *,
                         best: Optional[BestMap] = None,
                         prune: bool = True) -> List[EvalOutcome]:
        if self.max_workers == 1 or len(todo) == 1:
            return self._evaluate_serial(todo, best=best, prune=prune)
        borrowed = self._evaluate_on_fleet(todo, best=best, prune=prune)
        if borrowed is not None:
            return borrowed
        try:
            pool = self._ensure_pool()
            # pool workers cannot share the tracker object, so each task
            # carries a float snapshot of the threshold at submit time;
            # results are observed back here (the workers never do)
            futures = []
            for context, strategy, _ in todo:
                tracker = _best_for(best, context) if prune else None
                limit = (self._builders[context]._prune_limit(tracker, None)
                         if prune else None)
                futures.append(pool.submit(
                    _worker_evaluate, context, strategy_to_dict(strategy),
                    limit, prune))
            outcomes = [f.result() for f in futures]
        except (OSError, RuntimeError, BrokenProcessPool):
            # restricted environments (no /dev/shm, fork disabled, ...)
            self.close()
            return self._evaluate_serial(todo, best=best, prune=prune)
        if best is not None and prune:
            for (context, _, _), outcome in zip(todo, outcomes):
                tracker = _best_for(best, context)
                if tracker is not None and outcome.feasible:
                    tracker.observe(outcome.time)
        return outcomes

    def _evaluate_on_fleet(self, todo: Sequence[Tuple[str, Strategy, str]],
                           *, best: Optional[BestMap] = None,
                           prune: bool = True
                           ) -> Optional[List[EvalOutcome]]:
        """Borrow a live planning-fleet's workers, if one is running.

        Returns ``None`` (fall through to the private pool) when no
        fleet is active or the fleet refuses the batch — the caller's
        ordering/caching semantics never depend on the borrow working.
        """
        # lazy import: repro.service imports the plan layer, so the
        # module-level direction must stay plan <- service only
        from ..errors import ReproError
        from ..service.backends import active_fleet

        fleet = active_fleet()
        if fleet is None:
            return None
        used = {context for context, _, _ in todo}
        digests = {name: b.context_fingerprint
                   for name, b in self._builders.items() if name in used}
        payloads = {
            name: (b.graph, b.cluster, b.profile,
                   b.use_order_scheduling, b.group_of)
            for name, b in self._builders.items() if name in used
        }
        items = [(context, strategy_to_dict(strategy))
                 for context, strategy, _ in todo]
        trackers: Optional[Dict[str, BestSoFar]] = None
        if prune and best is not None:
            trackers = {}
            for name in used:
                tracker = _best_for(best, name)
                if tracker is not None:
                    trackers[name] = tracker
            trackers = trackers or None
        try:
            return fleet.evaluate_batch(payloads, digests, items,
                                        best=trackers, prune=prune)
        except ReproError:
            return None

    def _evaluate_serial(self, todo: Sequence[Tuple[str, Strategy, str]], *,
                         best: Optional[BestMap] = None,
                         prune: bool = True) -> List[EvalOutcome]:
        # one lane-batched evaluate_many per context: the builder prices
        # all lanes through its LanePlanner, kills hopeless ones before
        # compiling, and evaluates the rest in ascending-bound order
        results: List[Optional[EvalOutcome]] = [None] * len(todo)
        by_context: Dict[str, List[int]] = {}
        for i, (context, _, _) in enumerate(todo):
            by_context.setdefault(context, []).append(i)
        for context, idxs in by_context.items():
            outcomes = self._builders[context].evaluate_many(
                [todo[i][1] for i in idxs],
                best=_best_for(best, context) if prune else None,
                prune=prune)
            for i, outcome in zip(idxs, outcomes):
                results[i] = outcome
        return results  # type: ignore[return-value]

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._pool is None:
            payloads = {
                name: (b.graph, b.cluster, b.profile,
                       b.use_order_scheduling, b.group_of)
                for name, b in self._builders.items()
            }
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.max_workers,
                initializer=_init_worker,
                initargs=(payloads,),
            )
        return self._pool

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "BatchEvaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
