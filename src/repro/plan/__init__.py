"""``repro.plan`` — the cached ExecutionPlan layer.

One immutable artifact, :class:`ExecutionPlan` (DistGraph + schedule
priorities + resident bytes + capacities + a content-addressed
fingerprint), is the single currency between compilation, scheduling,
simulation and deployment:

- :class:`PlanBuilder` produces plans for one (graph, cluster, profile)
  context and memoizes both plans and :class:`EvalOutcome`s in
  fingerprint-keyed LRUs (:class:`PlanCache`), so repeated strategies in
  REINFORCE episodes, MCMC walks and seed re-evaluations are free;
- :meth:`PlanBuilder.evaluate_many` is the canonical population entry
  point: candidates become lanes priced through one shared
  :class:`~repro.simulation.batch.LanePlanner`, hopeless lanes are
  killed before compilation (``prune_stage="prebound"``), and survivors
  run in ascending-bound order against the shared best-so-far;
- :class:`BatchEvaluator` is the multi-context / multi-process front
  end over ``evaluate_many``, with deterministic, input-ordered results
  (``max_workers=1`` falls back to the serial batched path).

Cache behaviour is observable through the ``plan_cache_hits_total`` and
``plan_cache_misses_total`` telemetry counters.
"""

from .batch import BatchEvaluator
from .builder import PlanBuilder
from .cache import PlanCache
from .fingerprint import (
    fingerprint_cluster,
    fingerprint_context,
    fingerprint_strategy,
)
from .plan import EvalOutcome, ExecutionPlan
from .pruning import BestSoFar

__all__ = [
    "BatchEvaluator",
    "BestSoFar",
    "EvalOutcome",
    "ExecutionPlan",
    "PlanBuilder",
    "PlanCache",
    "fingerprint_cluster",
    "fingerprint_context",
    "fingerprint_strategy",
]
