"""Fingerprint-keyed LRU cache for plans and evaluation outcomes."""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Optional

from .. import telemetry


class PlanCache:
    """A small thread-unaware LRU keyed by content fingerprints.

    Used by :class:`~repro.plan.builder.PlanBuilder` both for
    :class:`~repro.plan.plan.ExecutionPlan` objects and for
    :class:`~repro.plan.plan.EvalOutcome` objects (infeasible and OOM
    outcomes included — a strategy that failed once is never recompiled).
    Hit/miss counts are exported as the ``plan_cache_hits_total`` /
    ``plan_cache_misses_total`` telemetry counters, labelled by the kind
    of artifact cached.
    """

    def __init__(self, maxsize: int = 256, *, kind: str = "plan"):
        if maxsize < 1:
            raise ValueError(f"cache maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.kind = kind
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def get(self, key: Hashable) -> Optional[Any]:
        """Look up ``key``; counts a hit/miss and refreshes recency."""
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            self._count("plan_cache_misses_total")
            return None
        self._data.move_to_end(key)
        self.hits += 1
        self._count("plan_cache_hits_total")
        return value

    def put(self, key: Hashable, value: Any) -> None:
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._data.clear()

    def _count(self, name: str) -> None:
        tel = telemetry.active()
        if tel is not None:
            tel.registry.counter(
                name, labels={"kind": self.kind},
                help="plan-layer cache lookups by outcome",
            ).inc()
