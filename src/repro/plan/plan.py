"""The :class:`ExecutionPlan` artifact and evaluation outcome types.

An ExecutionPlan is the single currency between compilation, scheduling,
simulation and deployment: everything the Simulator or the
ExecutionEngine needs to run one strategy, produced once by
:class:`~repro.plan.builder.PlanBuilder` and safe to cache/share because
nothing downstream mutates it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from ..cluster.topology import Cluster
from ..graph.dag import ComputationGraph
from ..parallel.distgraph import DistGraph
from ..parallel.strategy import Strategy
from ..profiling.profiler import Profile
from ..scheduling.list_scheduler import Schedule
from ..simulation.kernel import SimKernel
from ..simulation.metrics import SimulationResult


@dataclass(frozen=True)
class ExecutionPlan:
    """One compiled + scheduled strategy, ready to simulate or execute.

    Carries the resident bytes the compiler derived (parameters +
    optimizer state per device) and the device capacities, so no hidden
    state needs to flow alongside it — this replaces the old
    ``StrategyEvaluator._last_resident`` side-channel.

    ``kernel`` is the array lowering of ``dist`` shared by every
    simulation of this plan (ranking and both candidate orders already
    used it during scheduling).  ``sim_result`` is the winning candidate
    order's traced simulation under this plan's resident bytes and
    capacities — evaluating the plan reuses it instead of running the
    simulator again.
    """

    graph: ComputationGraph
    cluster: Cluster
    strategy: Strategy
    dist: DistGraph
    schedule: Schedule
    resident_bytes: Mapping[str, int]
    capacities: Mapping[str, int]
    profile: Profile
    fingerprint: str
    kernel: Optional[SimKernel] = None
    sim_result: Optional[SimulationResult] = None

    @property
    def num_dist_ops(self) -> int:
        return len(self.dist)


@dataclass
class EvalOutcome:
    """Result of evaluating one strategy in the simulator.

    A *pruned* outcome means evaluation was cut short because the
    candidate provably cannot beat the caller's best-so-far threshold:
    ``bound`` is an admissible lower bound on its true makespan (the
    static ``kernel_lower_bound`` for ``prune_stage="bound"``, the
    partial simulated clock for ``prune_stage="midsim"``), ``time`` is
    ``inf`` and ``feasible`` is False, so no argmin consumer can ever
    select it.
    """

    time: float                  # simulated per-iteration seconds
    oom: bool
    result: Optional[SimulationResult]
    dist_ops: int
    infeasible: bool = False    # compile/simulate failed outright
    pruned: bool = False        # evaluation aborted against best-so-far
    bound: Optional[float] = None   # lower bound on the true makespan
    prune_stage: Optional[str] = None  # "bound" | "midsim"

    @property
    def feasible(self) -> bool:
        return not (self.oom or self.infeasible or self.pruned)
