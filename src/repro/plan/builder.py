"""PlanBuilder: the one compile -> schedule -> simulate chain.

Every consumer that previously wired :class:`GraphCompiler`,
:class:`ListScheduler` and :class:`Simulator` together by hand (the
Strategy Maker's environment, the FlexFlow/Post baselines, deployment)
now asks a PlanBuilder instead.  The builder is bound to one
(graph, cluster, profile) context, memoizes plans and evaluation
outcomes by content fingerprint, and guarantees cached results are
bit-identical to fresh ones (the whole chain is deterministic).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Union

from .. import telemetry
from ..cluster.topology import Cluster
from ..errors import CompileError, SimulationError
from ..telemetry.context import record_event
from ..graph.dag import ComputationGraph
from ..parallel.compiler import GraphCompiler
from ..parallel.distgraph import DistGraph
from ..parallel.strategy import Strategy
from ..profiling.profiler import Profile, Profiler
from ..scheduling.list_scheduler import FifoScheduler, ListScheduler
from ..simulation.batch import LanePlanner
from ..simulation.costs import ProfileCostModel
from ..simulation.engine import Simulator
from ..simulation.kernel import PRUNE_GUARD, kernel_lower_bound, lower
from ..simulation.metrics import SimulationResult
from .cache import PlanCache
from .fingerprint import fingerprint_context, fingerprint_strategy
from .plan import EvalOutcome, ExecutionPlan
from .pruning import BestSoFar

DEFAULT_PLAN_CACHE = 64
DEFAULT_OUTCOME_CACHE = 4096

#: valid values for the builder's ``engine`` knob.  The two engines are
#: bit-identical (PR 3's paired-fuzzing contract), so the knob changes
#: wall-clock only, never results — which is why it is *not* part of the
#: context fingerprint.
ENGINES = ("kernel", "reference")


class PlanBuilder:
    """Builds and evaluates :class:`ExecutionPlan`s for one context."""

    def __init__(self, graph: ComputationGraph, cluster: Cluster,
                 profile: Optional[Profile] = None, *,
                 use_order_scheduling: bool = True,
                 group_of: Optional[Mapping[str, int]] = None,
                 plan_cache_size: int = DEFAULT_PLAN_CACHE,
                 outcome_cache_size: int = DEFAULT_OUTCOME_CACHE,
                 engine: str = "kernel"):
        if engine not in ENGINES:
            raise ValueError(
                f"unknown simulation engine {engine!r}; expected one of "
                f"{ENGINES}")
        self.engine = engine
        self.graph = graph
        self.cluster = cluster
        self.profile = profile if profile is not None else Profiler().profile(
            graph, cluster
        )
        self.use_order_scheduling = use_order_scheduling
        self.group_of = dict(group_of) if group_of is not None else None
        self.cost = ProfileCostModel(cluster, self.profile)
        self.capacities: Dict[str, int] = {
            d.device_id: d.usable_memory_bytes for d in cluster.devices
        }
        self._scheduler = (ListScheduler() if use_order_scheduling
                           else FifoScheduler())
        self._simulator = Simulator(self.cost)
        self.context_fingerprint = fingerprint_context(
            graph, cluster, self.profile,
            use_order_scheduling=use_order_scheduling, group_of=self.group_of,
        )
        self._plans = PlanCache(plan_cache_size, kind="plan")
        self._outcomes = PlanCache(outcome_cache_size, kind="outcome")
        self._lane_planner: Optional[LanePlanner] = None
        # pruning observability: evaluate() calls vs pruned outcomes
        self.evals_total = 0
        self.evals_pruned = 0

    # ------------------------------------------------------------------ #
    def fingerprint(self, strategy: Strategy) -> str:
        """Content fingerprint of ``strategy`` within this context."""
        return fingerprint_strategy(self.context_fingerprint, strategy)

    @property
    def plan_cache(self) -> PlanCache:
        return self._plans

    @property
    def outcome_cache(self) -> PlanCache:
        return self._outcomes

    # ------------------------------------------------------------------ #
    def compile(self, strategy: Strategy) -> "tuple[DistGraph, Dict[str, int]]":
        """Compile only: the dist graph plus per-device resident bytes.

        Uncached — for consumers that post-process the dist graph
        (gradient fusion, pipeline transforms) before scheduling it
        themselves.  Standard consumers should use :meth:`build`.
        """
        compiler = GraphCompiler(self.cluster, self.profile,
                                 group_of=self.group_of)
        dist = compiler.compile(self.graph, strategy)
        return dist, compiler.resident_bytes

    def build(self, strategy: Strategy,
              fingerprint: Optional[str] = None,
              prune: bool = True) -> ExecutionPlan:
        """Compile + schedule ``strategy`` into a cached ExecutionPlan.

        Raises :class:`CompileError` when the strategy cannot be
        compiled (``evaluate`` turns that into an infeasible outcome).
        ``prune=False`` disables the scheduler's internal candidate-race
        pruning (the built plan is bit-identical either way).
        """
        fp = fingerprint or self.fingerprint(strategy)
        plan, _ = self._build_or_prune(strategy, fp, limit=None, prune=prune)
        return plan

    def _build_or_prune(self, strategy: Strategy, fp: str, *,
                        limit: Optional[float], prune: bool
                        ) -> "tuple[Optional[ExecutionPlan], Optional[EvalOutcome]]":
        """Build a plan, or stop early once it provably loses the race.

        Returns ``(plan, None)`` on a full build and ``(None, outcome)``
        when the candidate was pruned — either by the static
        :func:`kernel_lower_bound` before any simulation, or because
        both candidate-order simulations exceeded ``limit``.  Pruned
        builds are never installed in the plan cache (their schedule is
        partial); a cached plan is always served as-is.
        """
        cached = self._plans.get(fp)
        if cached is not None:
            return cached, None
        with telemetry.span("plan.build", graph=self.graph.name):
            dist, resident = self.compile(strategy)
            # one array lowering serves ranking, both candidate-order
            # simulations, and every later simulation of the cached plan
            kernel = lower(dist)
            if limit is not None:
                bound = kernel_lower_bound(kernel, self.cost)
                # violation beyond the fp guard margin only — a bound's
                # rounding may differ from the event loop's by ulps
                if bound is not None and bound > limit * (1.0 + PRUNE_GUARD):
                    return None, self._pruned_outcome(
                        stage="bound", bound=bound, threshold=limit,
                        dist_ops=len(dist))
            schedule = self._scheduler.schedule(
                dist, self.cost, kernel=kernel,
                resident_bytes=resident, capacities=self.capacities,
                prune_above=limit, prune=prune, engine=self.engine,
            )
            sim = schedule.sim_result
            if sim is not None and sim.pruned:
                return None, self._pruned_outcome(
                    stage="midsim", bound=sim.makespan, threshold=limit,
                    dist_ops=len(dist))
            plan = ExecutionPlan(
                graph=self.graph, cluster=self.cluster, strategy=strategy,
                dist=dist, schedule=schedule, resident_bytes=resident,
                capacities=self.capacities, profile=self.profile,
                fingerprint=fp, kernel=kernel,
                sim_result=schedule.sim_result,
            )
        self._plans.put(fp, plan)
        return plan, None

    def _pruned_outcome(self, *, stage: str, bound: float,
                        threshold: Optional[float],
                        dist_ops: int) -> EvalOutcome:
        telemetry.emit_count(
            "plan_pruned_total", labels={"stage": stage},
            help="candidates pruned against the best-so-far, by stage")
        record_event("candidate_pruned", stage=stage, bound=bound,
                     threshold=threshold)
        return EvalOutcome(time=float("inf"), oom=False, result=None,
                           dist_ops=dist_ops, pruned=True, bound=bound,
                           prune_stage=stage)

    # ------------------------------------------------------------------ #
    def simulate(self, plan: ExecutionPlan, *,
                 trace: bool = False,
                 prune_above: Optional[float] = None,
                 engine: Optional[str] = None) -> SimulationResult:
        """Run the Strategy Maker's simulator over a plan.

        Plans built by this builder already carry the chosen order's
        simulation (``plan.sim_result``); call this only to re-simulate,
        e.g. after mutating the dist graph.  ``prune_above`` aborts the
        run once the simulated clock exceeds it (deterministic cost
        providers only) and returns a partial, ``pruned`` result.
        ``engine`` overrides the builder's engine for this run (the two
        engines return bit-identical results).
        """
        kernel = plan.kernel
        if kernel is not None and kernel.version != plan.dist.version:
            kernel = None  # dist mutated since build: re-lower
        if not getattr(self.cost, "deterministic", False):
            prune_above = None
        return self._simulator.run(
            plan.dist,
            priorities=plan.schedule.priorities,
            resident_bytes=dict(plan.resident_bytes),
            capacities=dict(plan.capacities),
            trace=trace,
            kernel=kernel,
            engine=engine if engine is not None else self.engine,
            prune_above=prune_above,
        )

    def evaluate(self, strategy: Strategy, *,
                 trace: bool = False,
                 best: Optional[BestSoFar] = None,
                 prune: bool = True,
                 prune_above: Optional[float] = None) -> EvalOutcome:
        """Full evaluation with outcome memoization and pruning.

        Infeasible and OOM outcomes are cached like feasible ones: a
        strategy that failed to compile or overflowed memory is never
        rebuilt or re-simulated.  ``trace=True`` bypasses the outcome
        cache (the traced schedule is not retained in cached outcomes)
        but still reuses the plan cache.

        ``best`` / ``prune_above`` supply the branch-and-bound
        threshold: a candidate whose makespan provably exceeds it is cut
        short (static lower bound before any simulation, cooperative
        abort inside it) and returned as a ``pruned`` outcome — the
        surviving winner is bit-identical to an unpruned search.  Exact
        feasible results are observed back into ``best`` so the
        threshold tightens as the search progresses.  ``prune=False``
        disables every pruning layer (the ``--no-prune`` escape hatch).
        """
        fp = self.fingerprint(strategy)
        limit = self._prune_limit(best, prune_above) if prune else None
        if trace:
            limit = None
        self.evals_total += 1
        if not trace:
            cached = self.cached_outcome(fp, limit=limit, best=best)
            if cached is not None:
                return cached
        outcome = self._evaluate_fresh(strategy, fp, trace=trace,
                                       limit=limit, prune=prune)
        if not trace and (not outcome.pruned
                          or outcome.prune_stage == "bound"):
            # mid-sim-pruned outcomes are threshold-dependent (the
            # partial clock depends on where the abort landed) and are
            # never cached; the static bound is a property of the
            # candidate alone and is safe to keep
            self._outcomes.put(fp, outcome)
        if outcome.pruned:
            self.evals_pruned += 1
            self._observe_pruned_fraction()
        elif best is not None and outcome.feasible:
            best.observe(outcome.time)
        record_event("candidate_evaluated", feasible=outcome.feasible,
                     time=outcome.time, cached=False)
        return outcome

    def evaluate_many(
        self, strategies: Sequence[Strategy], *,
        best: Optional[BestSoFar] = None,
        prune: bool = True,
        prune_above: Union[None, float, Sequence[Optional[float]]] = None,
    ) -> List[EvalOutcome]:
        """Evaluate a population of candidates through one batched pass.

        The single canonical population entry point: every consumer
        that evaluates more than one candidate (`BatchEvaluator`, the
        fleet's borrowed workers, REINFORCE episodes, CEM rounds, MCMC
        restarts) routes through here.  Results are returned in input
        order and each is exactly what :meth:`evaluate` would return —
        per-candidate outcome caching, fingerprinting and best-so-far
        observation all behave identically.

        What the batch adds over a per-candidate loop:

        - duplicate strategies are evaluated once and fanned out;
        - under a prune threshold (``best`` and/or ``prune_above``) all
          lanes are first priced through the shared
          :class:`~repro.simulation.batch.LanePlanner` — one
          no-contention lower bound per lane from stacked per-op
          arrays, at a fraction of a compile's cost — and lanes whose
          admissible bound already exceeds the threshold are killed
          *before* compilation (``prune_stage="prebound"``);
        - surviving lanes are evaluated in ascending-bound order, so
          the likeliest winner runs first and tightens ``best`` for
          everyone after it.

        Pruning never changes the winner: prebound kills use admissible
        bounds, so any lane that could beat the threshold is fully
        evaluated and bit-identical to its serial ``evaluate`` (and to
        ``engine="reference"``).  With ``prune=False`` or no threshold
        source the batch degrades to the plain input-order sweep.

        ``prune_above`` may be a scalar or a per-candidate sequence
        (the fleet stamps one threshold snapshot per item at dispatch).
        """
        strategies = list(strategies)
        if not strategies:
            return []
        n = len(strategies)
        if prune_above is None or isinstance(prune_above, (int, float)):
            thresholds: List[Optional[float]] = [prune_above] * n
        else:
            thresholds = list(prune_above)
            if len(thresholds) != n:
                raise ValueError(
                    f"prune_above sequence has {len(thresholds)} entries "
                    f"for {n} strategies")
        fps = [self.fingerprint(s) for s in strategies]
        first: Dict[str, int] = {}
        for i, fp in enumerate(fps):
            first.setdefault(fp, i)
        unique = [i for i, fp in enumerate(fps) if first[fp] == i]
        outcomes: List[Optional[EvalOutcome]] = [None] * n

        bounds: Optional[Dict[int, float]] = None
        may_prune = prune and (best is not None
                               or any(t is not None for t in thresholds))
        if may_prune:
            planner = self._lane_planner
            if planner is None:
                planner = LanePlanner(self.graph, self.cluster, self.cost)
                self._lane_planner = planner
            if planner.usable:
                arr, _ = planner.bounds([strategies[i] for i in unique])
                bounds = {i: float(arr[k]) for k, i in enumerate(unique)}
        order = (sorted(unique, key=lambda i: (bounds[i], i))
                 if bounds is not None else unique)
        for i in order:
            limit = self._prune_limit(best, thresholds[i]) if prune else None
            bound = bounds[i] if bounds is not None else float("-inf")
            if limit is not None and bound > limit * (1.0 + PRUNE_GUARD):
                self.evals_total += 1
                cached = self.cached_outcome(fps[i], limit=limit, best=best)
                if cached is not None:
                    outcomes[i] = cached
                    continue
                outcome = self._pruned_outcome(
                    stage="prebound", bound=bound, threshold=limit,
                    dist_ops=0)
                # admissible and threshold-independent, like "bound"
                self._outcomes.put(fps[i], outcome)
                self.evals_pruned += 1
                self._observe_pruned_fraction()
                record_event("candidate_evaluated", feasible=False,
                             time=outcome.time, cached=False)
                outcomes[i] = outcome
            else:
                outcomes[i] = self.evaluate(strategies[i], best=best,
                                            prune=prune,
                                            prune_above=thresholds[i])
        for i, fp in enumerate(fps):
            if outcomes[i] is None:
                outcomes[i] = outcomes[first[fp]]
        return outcomes  # type: ignore[return-value]

    def cached_outcome(self, fp: str, *,
                       limit: Optional[float] = None,
                       best: Optional[BestSoFar] = None
                       ) -> Optional[EvalOutcome]:
        """Prune-aware outcome-cache lookup.

        Exact cached outcomes are always served.  A cached *pruned*
        outcome is only served when its recorded lower bound still
        exceeds the caller's current threshold (true time >= bound >
        limit, so the candidate would be pruned again); under a looser
        or absent threshold it is a cache miss — the caller must
        re-evaluate, since the candidate might now be the winner.
        """
        cached = self._outcomes.get(fp)
        if cached is None:
            return None
        if cached.pruned:
            if (limit is None or cached.bound is None
                    or not cached.bound > limit * (1.0 + PRUNE_GUARD)):
                return None
            self.evals_pruned += 1
            self._observe_pruned_fraction()
        elif best is not None and cached.feasible:
            best.observe(cached.time)
        record_event("candidate_evaluated", feasible=cached.feasible,
                     time=cached.time, cached=True)
        return cached

    def _prune_limit(self, best: Optional[BestSoFar],
                     prune_above: Optional[float]) -> Optional[float]:
        limit = float("inf") if prune_above is None else prune_above
        if best is not None:
            threshold = best.threshold()
            if threshold < limit:
                limit = threshold
        return None if limit == float("inf") else limit

    def _observe_pruned_fraction(self) -> None:
        telemetry.emit_gauge(
            "plan_pruned_fraction",
            self.evals_pruned / self.evals_total,
            help="fraction of candidate evaluations pruned (this builder)")

    def _evaluate_fresh(self, strategy: Strategy, fp: str, *,
                        trace: bool, limit: Optional[float] = None,
                        prune: bool = True) -> EvalOutcome:
        try:
            plan, pruned = self._build_or_prune(strategy, fp, limit=limit,
                                                prune=prune)
        except CompileError:
            return EvalOutcome(time=float("inf"), oom=False, result=None,
                               dist_ops=0, infeasible=True)
        if pruned is not None:
            return pruned
        # single-pass scheduling: the winner of the scheduler's candidate
        # race was already simulated (traced, under this plan's resident
        # bytes and capacities) — reuse it instead of a third simulation
        result = plan.sim_result
        if result is None:
            try:
                result = self.simulate(plan, trace=trace, prune_above=limit)
            except SimulationError:
                return EvalOutcome(time=float("inf"), oom=False, result=None,
                                   dist_ops=plan.num_dist_ops,
                                   infeasible=True)
            if result.pruned:
                return self._pruned_outcome(
                    stage="midsim", bound=result.makespan, threshold=limit,
                    dist_ops=plan.num_dist_ops)
        return EvalOutcome(
            time=result.makespan,
            oom=result.oom,
            result=result,
            dist_ops=plan.num_dist_ops,
        )

    # ------------------------------------------------------------------ #
    def seed_outcome(self, fingerprint: str, outcome: EvalOutcome) -> None:
        """Install an externally-computed outcome (e.g. from a worker
        process) so later evaluations of the same strategy hit the cache.

        Mid-sim-pruned outcomes are threshold-dependent and are never
        installed; static bound-pruned ones ("bound" from the lowered
        kernel, "prebound" from the batched lane planner) are — the
        bound is a property of the candidate and :meth:`cached_outcome`
        re-checks it against the serving threshold."""
        if outcome.pruned and outcome.prune_stage not in ("bound",
                                                          "prebound"):
            return
        self._outcomes.put(fingerprint, outcome)
