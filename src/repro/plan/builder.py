"""PlanBuilder: the one compile -> schedule -> simulate chain.

Every consumer that previously wired :class:`GraphCompiler`,
:class:`ListScheduler` and :class:`Simulator` together by hand (the
Strategy Maker's environment, the FlexFlow/Post baselines, deployment)
now asks a PlanBuilder instead.  The builder is bound to one
(graph, cluster, profile) context, memoizes plans and evaluation
outcomes by content fingerprint, and guarantees cached results are
bit-identical to fresh ones (the whole chain is deterministic).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from .. import telemetry
from ..cluster.topology import Cluster
from ..errors import CompileError, SimulationError
from ..telemetry.context import record_event
from ..graph.dag import ComputationGraph
from ..parallel.compiler import GraphCompiler
from ..parallel.distgraph import DistGraph
from ..parallel.strategy import Strategy
from ..profiling.profiler import Profile, Profiler
from ..scheduling.list_scheduler import FifoScheduler, ListScheduler
from ..simulation.costs import ProfileCostModel
from ..simulation.engine import Simulator
from ..simulation.kernel import lower
from ..simulation.metrics import SimulationResult
from .cache import PlanCache
from .fingerprint import fingerprint_context, fingerprint_strategy
from .plan import EvalOutcome, ExecutionPlan

DEFAULT_PLAN_CACHE = 64
DEFAULT_OUTCOME_CACHE = 4096


class PlanBuilder:
    """Builds and evaluates :class:`ExecutionPlan`s for one context."""

    def __init__(self, graph: ComputationGraph, cluster: Cluster,
                 profile: Optional[Profile] = None, *,
                 use_order_scheduling: bool = True,
                 group_of: Optional[Mapping[str, int]] = None,
                 plan_cache_size: int = DEFAULT_PLAN_CACHE,
                 outcome_cache_size: int = DEFAULT_OUTCOME_CACHE):
        self.graph = graph
        self.cluster = cluster
        self.profile = profile if profile is not None else Profiler().profile(
            graph, cluster
        )
        self.use_order_scheduling = use_order_scheduling
        self.group_of = dict(group_of) if group_of is not None else None
        self.cost = ProfileCostModel(cluster, self.profile)
        self.capacities: Dict[str, int] = {
            d.device_id: d.usable_memory_bytes for d in cluster.devices
        }
        self._scheduler = (ListScheduler() if use_order_scheduling
                           else FifoScheduler())
        self._simulator = Simulator(self.cost)
        self.context_fingerprint = fingerprint_context(
            graph, cluster, self.profile,
            use_order_scheduling=use_order_scheduling, group_of=self.group_of,
        )
        self._plans = PlanCache(plan_cache_size, kind="plan")
        self._outcomes = PlanCache(outcome_cache_size, kind="outcome")

    # ------------------------------------------------------------------ #
    def fingerprint(self, strategy: Strategy) -> str:
        """Content fingerprint of ``strategy`` within this context."""
        return fingerprint_strategy(self.context_fingerprint, strategy)

    @property
    def plan_cache(self) -> PlanCache:
        return self._plans

    @property
    def outcome_cache(self) -> PlanCache:
        return self._outcomes

    # ------------------------------------------------------------------ #
    def compile(self, strategy: Strategy) -> "tuple[DistGraph, Dict[str, int]]":
        """Compile only: the dist graph plus per-device resident bytes.

        Uncached — for consumers that post-process the dist graph
        (gradient fusion, pipeline transforms) before scheduling it
        themselves.  Standard consumers should use :meth:`build`.
        """
        compiler = GraphCompiler(self.cluster, self.profile,
                                 group_of=self.group_of)
        dist = compiler.compile(self.graph, strategy)
        return dist, compiler.resident_bytes

    def build(self, strategy: Strategy,
              fingerprint: Optional[str] = None) -> ExecutionPlan:
        """Compile + schedule ``strategy`` into a cached ExecutionPlan.

        Raises :class:`CompileError` when the strategy cannot be
        compiled (``evaluate`` turns that into an infeasible outcome).
        """
        fp = fingerprint or self.fingerprint(strategy)
        cached = self._plans.get(fp)
        if cached is not None:
            return cached
        with telemetry.span("plan.build", graph=self.graph.name):
            dist, resident = self.compile(strategy)
            # one array lowering serves ranking, both candidate-order
            # simulations, and every later simulation of the cached plan
            kernel = lower(dist)
            schedule = self._scheduler.schedule(
                dist, self.cost, kernel=kernel,
                resident_bytes=resident, capacities=self.capacities,
            )
            plan = ExecutionPlan(
                graph=self.graph, cluster=self.cluster, strategy=strategy,
                dist=dist, schedule=schedule, resident_bytes=resident,
                capacities=self.capacities, profile=self.profile,
                fingerprint=fp, kernel=kernel,
                sim_result=schedule.sim_result,
            )
        self._plans.put(fp, plan)
        return plan

    # ------------------------------------------------------------------ #
    def simulate(self, plan: ExecutionPlan, *,
                 trace: bool = False) -> SimulationResult:
        """Run the Strategy Maker's simulator over a plan.

        Plans built by this builder already carry the chosen order's
        simulation (``plan.sim_result``); call this only to re-simulate,
        e.g. after mutating the dist graph.
        """
        kernel = plan.kernel
        if kernel is not None and kernel.version != plan.dist.version:
            kernel = None  # dist mutated since build: re-lower
        return self._simulator.run(
            plan.dist,
            priorities=plan.schedule.priorities,
            resident_bytes=dict(plan.resident_bytes),
            capacities=dict(plan.capacities),
            trace=trace,
            kernel=kernel,
        )

    def evaluate(self, strategy: Strategy, *,
                 trace: bool = False) -> EvalOutcome:
        """Full evaluation with outcome memoization.

        Infeasible and OOM outcomes are cached like feasible ones: a
        strategy that failed to compile or overflowed memory is never
        rebuilt or re-simulated.  ``trace=True`` bypasses the outcome
        cache (the traced schedule is not retained in cached outcomes)
        but still reuses the plan cache.
        """
        fp = self.fingerprint(strategy)
        if not trace:
            cached = self._outcomes.get(fp)
            if cached is not None:
                record_event("candidate_evaluated", feasible=cached.feasible,
                             time=cached.time, cached=True)
                return cached
        outcome = self._evaluate_fresh(strategy, fp, trace=trace)
        if not trace:
            self._outcomes.put(fp, outcome)
        record_event("candidate_evaluated", feasible=outcome.feasible,
                     time=outcome.time, cached=False)
        return outcome

    def _evaluate_fresh(self, strategy: Strategy, fp: str, *,
                        trace: bool) -> EvalOutcome:
        try:
            plan = self.build(strategy, fingerprint=fp)
        except CompileError:
            return EvalOutcome(time=float("inf"), oom=False, result=None,
                               dist_ops=0, infeasible=True)
        # single-pass scheduling: the winner of the scheduler's candidate
        # race was already simulated (traced, under this plan's resident
        # bytes and capacities) — reuse it instead of a third simulation
        result = plan.sim_result
        if result is None:
            try:
                result = self.simulate(plan, trace=trace)
            except SimulationError:
                return EvalOutcome(time=float("inf"), oom=False, result=None,
                                   dist_ops=plan.num_dist_ops,
                                   infeasible=True)
        return EvalOutcome(
            time=result.makespan,
            oom=result.oom,
            result=result,
            dist_ops=plan.num_dist_ops,
        )

    # ------------------------------------------------------------------ #
    def seed_outcome(self, fingerprint: str, outcome: EvalOutcome) -> None:
        """Install an externally-computed outcome (e.g. from a worker
        process) so later evaluations of the same strategy hit the cache."""
        self._outcomes.put(fingerprint, outcome)
