"""``repro.elastic`` — elastic fleets, spot preemption, churn replanning.

The cluster a job starts on is not the cluster it finishes on: spot
markets grant and reclaim capacity mid-run.  This package makes the
fleet a first-class *time-varying* object on top of the resilience
subsystem's capacity events (``join`` / ``server_join`` / ``preempt`` /
``reclaim``):

- :class:`ChurnSchedule` — seeded Poisson generator turning arrival /
  preemption *rates* into a concrete, deterministic
  :class:`~repro.resilience.FaultSchedule` of capacity events;
- :class:`ElasticPolicy` — the replan-or-ride economics: on arrival it
  compares the expected savings from the enlarged fleet's makespan
  lower bound against the replan cost (restart overhead + an EMA of
  observed search wall-clock), yielding a :class:`ScaleDecision`; a
  post-search :meth:`~ElasticPolicy.should_adopt` guard only adopts
  plans that predict strictly faster than the incumbent.

:class:`~repro.resilience.ResilientTrainer` consumes both via
``policy="elastic"``: arrivals trigger priced background replans,
preempt notices trigger a drain-replan *before* the device dies (zero
lost work), and reclaims fold the device back into the fleet without
renumbering (see :meth:`~repro.cluster.topology.Cluster.with_devices`).
"""

from .churn import ChurnSchedule
from .policy import ElasticPolicy, ScaleDecision

__all__ = [
    "ChurnSchedule",
    "ElasticPolicy",
    "ScaleDecision",
]
