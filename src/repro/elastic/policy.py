"""Scale-up economics: when is replanning onto new capacity worth it?

On every arrival the :class:`ElasticPolicy` answers one question for
the :class:`~repro.resilience.ResilientTrainer`: *replan now, or ride
the current plan?*  It prices both sides:

- **expected savings** — the admissible makespan lower bound of the
  *current* plan's kernel (the same critical-path / busiest-resource
  bound branch-and-bound pruning uses, see
  :func:`~repro.simulation.kernel.kernel_lower_bound`) is compared with
  the floor the enlarged fleet could reach.  A replan repartitions the
  graph, so *both* bound terms shrink as per-device work drops; the
  optimistic perfect-scaling floor is
  ``bound_after = bound_before * P_old / P_new`` with ``P`` the fleet's
  aggregate compute power.  Savings = the bound's relative drop, scaled
  by the observed healthy iteration time and the steps remaining.
- **replan cost** — the restart overhead plus a running estimate of
  search wall-clock (an EMA over the searches this trainer already
  paid for; zero until the first one, i.e. optimistic).

Replanning happens only when savings strictly exceed cost.  A second
guard runs *after* the search: the found plan is adopted only if its
predicted time actually beats the current plan's, so a noisy few-episode
search can never talk the trainer into a slower deployment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cluster.topology import Cluster
from ..errors import ReproError
from ..runtime.deployment import Deployment
from ..simulation.costs import ProfileCostModel
from ..simulation.kernel import kernel_lower_bound, lower


@dataclass(frozen=True)
class ScaleDecision:
    """What the policy concluded about one arrival."""

    replan: bool
    expected_savings: float      # engine-seconds the new fleet could save
    replan_cost: float           # restart overhead + search-cost estimate
    bound_before: float          # current plan's makespan lower bound
    bound_after: float           # estimated bound on the enlarged fleet
    reason: str


class ElasticPolicy:
    """Decides whether new capacity pays for a replan.

    ``min_predicted_gain`` is the post-search adoption margin: the found
    plan must predict at least this *fraction* faster than the current
    plan to be adopted (0 = any strict improvement).
    """

    def __init__(self, *, restart_overhead: float = 0.0,
                 search_cost_smoothing: float = 0.5,
                 min_predicted_gain: float = 0.0):
        if not 0.0 < search_cost_smoothing <= 1.0:
            raise ReproError(
                f"search_cost_smoothing must be in (0, 1], got "
                f"{search_cost_smoothing}")
        if not 0.0 <= min_predicted_gain < 1.0:
            raise ReproError(
                f"min_predicted_gain must be in [0, 1), got "
                f"{min_predicted_gain}")
        self.restart_overhead = restart_overhead
        self.min_predicted_gain = min_predicted_gain
        self._smoothing = search_cost_smoothing
        self._search_cost = 0.0      # EMA of observed search wall-clock
        self._searches = 0

    # ---------------------------------------------------------------- #
    @property
    def search_cost_estimate(self) -> float:
        """Expected wall-clock of the next replan search (EMA)."""
        return self._search_cost

    def observe_search(self, seconds: float) -> None:
        """Feed one observed search duration into the cost estimate."""
        if self._searches == 0:
            self._search_cost = seconds
        else:
            self._search_cost = ((1 - self._smoothing) * self._search_cost
                                 + self._smoothing * seconds)
        self._searches += 1

    # ---------------------------------------------------------------- #
    def decide(self, deployment: Deployment, new_cluster: Cluster, *,
               healthy_mean: Optional[float],
               remaining_steps: int) -> ScaleDecision:
        """Replan-or-ride for an arrival that grew the fleet to
        ``new_cluster`` while ``deployment`` is still running."""
        kernel = deployment.plan.kernel if deployment.plan is not None \
            else None
        if kernel is None:
            kernel = lower(deployment.dist)
        cost = ProfileCostModel(deployment.cluster, deployment.profile)
        bound_before = kernel_lower_bound(kernel, cost)
        if bound_before is None:  # pragma: no cover - profile cost is
            # deterministic; be optimistic and let the post-search
            # adoption guard protect the trainer
            return ScaleDecision(True, float("inf"),
                                 self.restart_overhead + self._search_cost,
                                 float("nan"), float("nan"),
                                 "no deterministic bound; replanning")

        power_old = sum(d.compute_power for d in deployment.cluster.devices)
        power_new = sum(d.compute_power for d in new_cluster.devices)
        if power_new <= power_old or bound_before <= 0.0:
            return ScaleDecision(False, 0.0,
                                 self.restart_overhead + self._search_cost,
                                 bound_before, bound_before,
                                 "fleet did not gain compute power")
        # a replan repartitions the graph, so per-device work on every
        # bound term shrinks: perfect-scaling floor for the new fleet
        bound_after = bound_before * power_old / power_new

        per_iter = healthy_mean if healthy_mean is not None else bound_before
        frac = max(0.0, 1.0 - bound_after / bound_before)
        expected_savings = per_iter * frac * max(0, remaining_steps)
        replan_cost = self.restart_overhead + self._search_cost
        replan = expected_savings > replan_cost
        reason = (f"bound {bound_before:.4f}s -> {bound_after:.4f}s over "
                  f"{remaining_steps} steps: savings "
                  f"{expected_savings:.4f}s "
                  f"{'>' if replan else '<='} cost {replan_cost:.4f}s")
        return ScaleDecision(replan, expected_savings, replan_cost,
                             bound_before, bound_after, reason)

    # ---------------------------------------------------------------- #
    def should_adopt(self, current_time: float,
                     candidate_time: float) -> bool:
        """Post-search guard: adopt only a strictly better predicted plan."""
        if current_time != current_time:   # NaN: nothing to compare against
            return True
        return candidate_time < current_time * (1.0 - self.min_predicted_gain)
