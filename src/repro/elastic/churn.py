"""Poisson churn: seeded capacity-event timelines for elastic fleets.

A :class:`ChurnSchedule` turns per-iteration arrival/preemption *rates*
into a concrete, fully deterministic :class:`~repro.resilience.faults.
FaultSchedule` of capacity events over a given cluster — the
rate-driven counterpart of :meth:`FaultSchedule.random`.  Arrivals are
``join`` / ``server_join`` events (a spot market granting capacity),
preemptions are ``preempt`` notices with a fixed advance window, and a
preempted device may later ``reclaim`` (the market giving it back).

Everything is a pure function of the seed: the same
``(schedule, cluster, seed)`` triple always produces a byte-identical
spec string, and zero rates produce the empty schedule — so paired
churn-on/churn-off experiments inherit the injector's bit-identity
guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, Tuple

import numpy as np

from ..cluster.device import GPU_ALIASES
from ..cluster.topology import Cluster
from ..errors import ReproError
from ..resilience.faults import FaultEvent, FaultKind, FaultSchedule


@dataclass(frozen=True)
class ChurnSchedule:
    """Rates describing how a fleet churns, plus the seeded generator.

    ``arrival_rate`` and ``preempt_rate`` are expected events per
    training iteration (Poisson); ``notice`` is the spot advance-notice
    window in iterations; ``reclaim_probability`` is the chance a
    preempted device comes back later; ``server_fraction`` is the share
    of arrivals that bring a whole new server (of ``gpu_model`` GPUs)
    rather than extra GPUs on an existing server.
    """

    arrival_rate: float = 0.0
    preempt_rate: float = 0.0
    notice: int = 2
    reclaim_probability: float = 0.0
    server_fraction: float = 0.5
    gpu_model: str = "v100"
    horizon: int = 16
    seed: int = 0

    def __post_init__(self) -> None:
        if self.arrival_rate < 0 or self.preempt_rate < 0:
            raise ReproError(
                f"churn rates must be >= 0: arrival={self.arrival_rate}, "
                f"preempt={self.preempt_rate}")
        if self.notice < 1:
            raise ReproError(
                f"preempt notice must be >= 1 iteration, got {self.notice}")
        if not 0.0 <= self.reclaim_probability <= 1.0:
            raise ReproError(
                f"reclaim_probability must be in [0, 1], got "
                f"{self.reclaim_probability}")
        if not 0.0 <= self.server_fraction <= 1.0:
            raise ReproError(
                f"server_fraction must be in [0, 1], got "
                f"{self.server_fraction}")
        if self.gpu_model.lower() not in GPU_ALIASES:
            raise ReproError(
                f"unknown gpu_model {self.gpu_model!r} "
                f"(known: {', '.join(sorted(GPU_ALIASES))})")
        if self.horizon < 2:
            raise ReproError(f"horizon must be >= 2, got {self.horizon}")

    @property
    def is_empty(self) -> bool:
        return self.arrival_rate == 0.0 and self.preempt_rate == 0.0

    def schedule(self, cluster: Cluster) -> FaultSchedule:
        """The concrete capacity-event timeline for ``cluster``.

        Deterministic in ``self.seed``; preemptions never take the base
        fleet below two live devices, so a drain-replan always has
        somewhere to go.
        """
        if self.is_empty:
            return FaultSchedule.empty()
        rng = np.random.default_rng(self.seed)
        servers = cluster.server_names()
        preemptable = list(cluster.device_ids)
        events: List[FaultEvent] = []
        taken: Set[Tuple[str, int]] = set()

        def emit(iteration: int, kind: FaultKind, target: str,
                 factor: float = 1.0) -> bool:
            if (target, iteration) in taken:
                return False          # drop colliding draws, stay valid
            taken.add((target, iteration))
            events.append(FaultEvent(iteration, kind, target, factor))
            return True

        for it in range(1, self.horizon):
            for _ in range(int(rng.poisson(self.arrival_rate))):
                if float(rng.random()) < self.server_fraction:
                    emit(it, FaultKind.SERVER_JOIN, self.gpu_model.lower(),
                         float(rng.integers(1, 3)))
                else:
                    target = servers[int(rng.integers(len(servers)))]
                    emit(it, FaultKind.DEVICE_JOIN, target,
                         float(rng.integers(1, 3)))
            for _ in range(int(rng.poisson(self.preempt_rate))):
                if len(preemptable) <= 2:
                    break             # keep the base fleet replannable
                target = preemptable[int(rng.integers(len(preemptable)))]
                if not emit(it, FaultKind.PREEMPT, target,
                            float(self.notice)):
                    continue
                preemptable.remove(target)
                if float(rng.random()) < self.reclaim_probability:
                    # comes back strictly after it went dark; a reclaimed
                    # device is never preempted again (its second notice
                    # could otherwise land while it is still down)
                    back = it + self.notice + 1 + int(rng.integers(1, 4))
                    emit(back, FaultKind.RECLAIM, target)
        return FaultSchedule(tuple(events))
