"""GNN-based strategy agent: features, GAT encoder, policy, REINFORCE."""

from .agent import AgentConfig, HeteroGAgent
from .embedding import GATEncoder
from .environment import EvalOutcome, StrategyEvaluator
from .features import FeatureEncoder
from .policy import (
    DP_ACTIONS,
    PolicyNetwork,
    PolicySample,
    action_to_op_strategy,
    actions_to_strategy,
    num_actions,
    uniform_action_vector,
)
from .reinforce import GraphContext, ReinforceTrainer, TrainerConfig
from .reward import MovingAverageBaseline, compute_reward
from .seeds import seed_action_vectors

__all__ = [
    "HeteroGAgent",
    "AgentConfig",
    "GATEncoder",
    "FeatureEncoder",
    "StrategyEvaluator",
    "EvalOutcome",
    "PolicyNetwork",
    "PolicySample",
    "DP_ACTIONS",
    "num_actions",
    "action_to_op_strategy",
    "actions_to_strategy",
    "uniform_action_vector",
    "GraphContext",
    "ReinforceTrainer",
    "TrainerConfig",
    "MovingAverageBaseline",
    "compute_reward",
    "seed_action_vectors",
]
