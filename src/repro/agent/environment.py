"""The Strategy Maker's environment: compile -> schedule -> simulate.

The Simulator "estimates the per-iteration training time for setting
rewards for GNN training, and also tracks memory usage on each device, to
set bad rewards for strategies leading to memory overflow" (Sec. 3.3).
All timings here come from the *profiler's* predictions — the testbed
(TruthCostModel) is never consulted during strategy search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..cluster.topology import Cluster
from ..errors import CompileError, SimulationError
from ..graph.dag import ComputationGraph
from ..parallel.compiler import GraphCompiler
from ..parallel.distgraph import DistGraph
from ..parallel.strategy import Strategy
from ..profiling.profiler import Profile
from ..scheduling.list_scheduler import FifoScheduler, ListScheduler
from ..simulation.costs import ProfileCostModel
from ..simulation.engine import Simulator
from ..simulation.metrics import SimulationResult


@dataclass
class EvalOutcome:
    """Result of evaluating one strategy in the simulator."""

    time: float                  # simulated per-iteration seconds
    oom: bool
    result: Optional[SimulationResult]
    dist_ops: int
    infeasible: bool = False    # compile/simulate failed outright

    @property
    def feasible(self) -> bool:
        return not (self.oom or self.infeasible)


class StrategyEvaluator:
    """Evaluates strategies for one (graph, cluster, profile) context."""

    def __init__(self, graph: ComputationGraph, cluster: Cluster,
                 profile: Profile, *, use_order_scheduling: bool = True,
                 group_of: Optional[Dict[str, int]] = None):
        self.graph = graph
        self.cluster = cluster
        self.profile = profile
        self.use_order_scheduling = use_order_scheduling
        self.group_of = group_of
        self.cost = ProfileCostModel(cluster, profile)
        self.capacities = {
            d.device_id: d.usable_memory_bytes for d in cluster.devices
        }
        self._scheduler = ListScheduler() if use_order_scheduling else FifoScheduler()
        self._simulator = Simulator(self.cost)

    def compile(self, strategy: Strategy) -> DistGraph:
        compiler = GraphCompiler(self.cluster, self.profile,
                                 group_of=self.group_of)
        dist = compiler.compile(self.graph, strategy)
        self._last_resident = compiler.resident_bytes
        return dist

    def evaluate(self, strategy: Strategy, *, trace: bool = False
                 ) -> EvalOutcome:
        try:
            dist = self.compile(strategy)
        except CompileError:
            return EvalOutcome(time=float("inf"), oom=False, result=None,
                               dist_ops=0, infeasible=True)
        schedule = self._scheduler.schedule(dist, self.cost)
        try:
            result = self._simulator.run(
                dist,
                priorities=schedule.priorities,
                resident_bytes=self._last_resident,
                capacities=self.capacities,
                trace=trace,
            )
        except SimulationError:
            return EvalOutcome(time=float("inf"), oom=False, result=None,
                               dist_ops=len(dist), infeasible=True)
        return EvalOutcome(
            time=result.makespan,
            oom=result.oom,
            result=result,
            dist_ops=len(dist),
        )
