"""The Strategy Maker's environment: a thin veneer over the plan layer.

The Simulator "estimates the per-iteration training time for setting
rewards for GNN training, and also tracks memory usage on each device, to
set bad rewards for strategies leading to memory overflow" (Sec. 3.3).
All timings here come from the *profiler's* predictions — the testbed
(TruthCostModel) is never consulted during strategy search.

The actual compile -> schedule -> simulate chain lives in
:class:`repro.plan.PlanBuilder`; this class only binds one to the agent's
(graph, cluster, profile) context.  Resident bytes travel inside the
:class:`~repro.plan.ExecutionPlan` (the old ``_last_resident``
side-channel is gone), and repeated evaluations of the same strategy are
served from the builder's fingerprint-keyed caches.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..cluster.topology import Cluster
from ..graph.dag import ComputationGraph
from ..parallel.distgraph import DistGraph
from ..parallel.strategy import Strategy
from ..plan import EvalOutcome, ExecutionPlan, PlanBuilder
from ..profiling.profiler import Profile

__all__ = ["EvalOutcome", "StrategyEvaluator"]


class StrategyEvaluator:
    """Evaluates strategies for one (graph, cluster, profile) context."""

    def __init__(self, graph: ComputationGraph, cluster: Cluster,
                 profile: Profile, *, use_order_scheduling: bool = True,
                 group_of: Optional[Dict[str, int]] = None,
                 engine: str = "kernel"):
        self.graph = graph
        self.cluster = cluster
        self.profile = profile
        self.use_order_scheduling = use_order_scheduling
        self.group_of = group_of
        self.builder = PlanBuilder(
            graph, cluster, profile,
            use_order_scheduling=use_order_scheduling, group_of=group_of,
            engine=engine,
        )
        self.cost = self.builder.cost
        self.capacities = self.builder.capacities

    def plan(self, strategy: Strategy) -> ExecutionPlan:
        """Compile + schedule a strategy into a cached ExecutionPlan."""
        return self.builder.build(strategy)

    def compile(self, strategy: Strategy) -> DistGraph:
        """Compile a strategy; raises :class:`CompileError` if invalid."""
        return self.builder.build(strategy).dist

    def evaluate(self, strategy: Strategy, *, trace: bool = False,
                 best=None, prune: bool = True,
                 prune_above: Optional[float] = None) -> EvalOutcome:
        return self.builder.evaluate(strategy, trace=trace, best=best,
                                     prune=prune, prune_above=prune_above)
