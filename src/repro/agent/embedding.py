"""GAT graph encoder + per-group pooling (paper Sec. 4.1.1)."""

from __future__ import annotations

from typing import List

import numpy as np

from ..nn import functional as F
from ..nn.layers import Dense, GATLayer, Module
from ..nn.tensor import Tensor, parameter


class GATEncoder(Module):
    """Stacked multi-head GAT producing per-node embeddings ``e_o``,
    then per-group embeddings ``g_n = sigma(sum_{o in G_n} W e_o)``."""

    def __init__(self, in_dim: int, hidden_dim: int, layers: int, heads: int,
                 seed: int = 0):
        if layers < 1:
            raise ValueError("need at least one GAT layer")
        rng = np.random.default_rng(seed)
        dims = [in_dim] + [hidden_dim] * layers
        self.layers: List[GATLayer] = [
            GATLayer(dims[i], dims[i + 1], heads, rng) for i in range(layers)
        ]
        self.group_proj = parameter((hidden_dim, hidden_dim), rng)
        self.hidden_dim = hidden_dim

    def node_embeddings(self, features: np.ndarray,
                        adjacency_mask: np.ndarray) -> Tensor:
        h = Tensor(features)
        for layer in self.layers:
            h = layer(h, adjacency_mask)
        return h  # (O, hidden)

    def group_embeddings(self, node_emb: Tensor,
                         assignment: np.ndarray) -> Tensor:
        """``assignment``: (N, O) binary matrix from the Grouping."""
        pooled = F.matmul(Tensor(assignment), node_emb)   # (N, hidden)
        return F.elu(F.matmul(pooled, self.group_proj))   # (N, hidden)

    def __call__(self, features: np.ndarray, adjacency_mask: np.ndarray,
                 assignment: np.ndarray) -> Tensor:
        return self.group_embeddings(
            self.node_embeddings(features, adjacency_mask), assignment
        )
