"""Policy checkpointing (.npz) — the ``checkpoint_path`` of the config.

The paper's config object accepts "a file path to save trained
variables"; here that persists the GAT + strategy-network weights, so a
policy pretrained on one set of graphs can be fine-tuned on unseen ones
(Sec. 6.5) across processes.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..errors import StrategyError
from ..nn.layers import Module

_META_KEY = "__checkpoint_format__"
_FORMAT = 1.0


def save_policy(module: Module, path: str) -> None:
    """Persist a policy network's parameters to ``path`` (.npz)."""
    state = module.state_dict()
    state[_META_KEY] = np.asarray(_FORMAT)
    np.savez(path, **state)


def load_policy(module: Module, path: str) -> None:
    """Restore parameters saved by :func:`save_policy` into ``module``.

    The module must have been constructed with the same architecture
    hyper-parameters (shape mismatches raise).
    """
    with np.load(path) as data:
        if _META_KEY not in data:
            raise StrategyError(f"{path!r} is not a policy checkpoint")
        state: Dict[str, np.ndarray] = {
            k: data[k] for k in data.files if k != _META_KEY
        }
    try:
        module.load_state_dict(state)
    except ValueError as exc:
        raise StrategyError(
            f"checkpoint {path!r} does not match the policy architecture: "
            f"{exc}"
        ) from exc
