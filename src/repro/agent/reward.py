"""RL reward (paper Sec. 4.1.3).

"The reward is the additive inverse of the square root of the
per-iteration execution time of the DNN graph, R = -sqrt(T), if there is
no out of memory (OOM) error; otherwise, we multiply the computed reward
by 10, to lower the chance of producing the respective strategy."
"""

from __future__ import annotations

import math

from .environment import EvalOutcome

OOM_PENALTY_FACTOR = 10.0
# reward assigned when the strategy cannot even be compiled/simulated
INFEASIBLE_TIME = 1e4


def compute_reward(outcome: EvalOutcome) -> float:
    """R = -sqrt(T); x10 on OOM; large fixed penalty when uncompilable.

    A pruned outcome (evaluation aborted because the candidate provably
    exceeds the best-so-far; only produced under the trainer's
    ``prune_rollouts`` opt-in) carries ``time=inf`` and takes the same
    fixed penalty — the true time is unknown but certainly worse than
    anything already found.
    """
    if outcome.infeasible or outcome.pruned:
        return -OOM_PENALTY_FACTOR * math.sqrt(INFEASIBLE_TIME)
    reward = -math.sqrt(max(outcome.time, 0.0))
    if outcome.oom:
        reward *= OOM_PENALTY_FACTOR
    return reward


class MovingAverageBaseline:
    """The R_g moving average in the policy-gradient update."""

    def __init__(self, decay: float = 0.9):
        if not 0.0 <= decay < 1.0:
            raise ValueError(f"decay must be in [0, 1), got {decay}")
        self.decay = decay
        self._value: float | None = None

    def update(self, reward: float) -> float:
        """Fold in a reward; returns the baseline *before* this reward."""
        if self._value is None:
            self._value = reward
            return reward
        previous = self._value
        self._value = self.decay * self._value + (1 - self.decay) * reward
        return previous

    @property
    def value(self) -> float:
        return self._value if self._value is not None else 0.0
