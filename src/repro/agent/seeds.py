"""Deterministic exploration seeds for the strategy search.

The paper's agent explores for hours on GPUs; our CPU budget is far
smaller, so the trainer's first episodes evaluate a set of canonical
candidate action vectors (the four uniform DP schemes, parameter-heavy-
group MP hybrids, and memory-balanced MP ladders for large models).
They enter the search exactly like sampled actions — scored by the
simulator, folded into the reward baseline and the best-found tracker —
and the policy then refines around them.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..cluster.topology import Cluster
from ..graph.dag import ComputationGraph
from ..graph.grouping import Grouping
from ..graph.op import OpPhase
from .policy import DP_ACTIONS, uniform_action_vector


def _group_param_bytes(graph: ComputationGraph, grouping: Grouping
                       ) -> np.ndarray:
    out = np.zeros(grouping.num_groups)
    for name, g in grouping.group_of.items():
        op = graph.op(name)
        if op.param_bytes > 0 and op.phase in (OpPhase.FORWARD, OpPhase.LOSS):
            out[g] += op.param_bytes
    return out


def _anchor_topo_positions(graph: ComputationGraph, grouping: Grouping
                           ) -> np.ndarray:
    topo_pos = {n: i for i, n in enumerate(graph.topological_order())}
    return np.asarray([topo_pos[a] for a in grouping.anchors])


def seed_action_vectors(graph: ComputationGraph, cluster: Cluster,
                        grouping: Grouping) -> List[np.ndarray]:
    """Candidate per-group action vectors worth trying first."""
    m = cluster.num_devices
    candidates: List[np.ndarray] = []

    # 1) the four uniform DP schemes (the Sec. 6.1 baselines)
    for allocation, comm in DP_ACTIONS:
        candidates.append(np.asarray(
            uniform_action_vector(cluster, grouping, allocation, comm)
        ))

    # 2) hybrids: parameter-heaviest groups go MP on the fastest GPU,
    #    the rest stay data-parallel (Table 2's dominant pattern)
    params = _group_param_bytes(graph, grouping)
    if params.sum() > 0:
        order = np.argsort(-params)
        for top_k in (1, max(1, grouping.num_groups // 20)):
            heavy = set(order[:top_k].tolist())
            for dp_offset in (1, 3):  # EV-AR and CP-AR backbones
                vec = np.full(grouping.num_groups, m + dp_offset,
                              dtype=np.int64)
                for g in heavy:
                    if params[g] > 0:
                        vec[g] = 0  # MP on gpu0 (fastest)
                candidates.append(vec)

    # 3) hybrid communication: AllReduce for the few largest gradients,
    #    PS for the long tail of small ones.  NCCL serializes collectives,
    #    so draining the tail through PS links overlaps with the big
    #    AllReduces (the Table 2 "mixture of PS and AllReduce" pattern).
    if params.sum() > 0:
        order = np.argsort(-params)
        for top_k in (max(1, grouping.num_groups // 8),
                      max(1, grouping.num_groups // 3)):
            heavy = set(order[:top_k].tolist())
            for backbone, alt in ((1, 0), (3, 2)):  # EV and CP backbones
                vec = np.full(grouping.num_groups, m + alt, dtype=np.int64)
                for g in heavy:
                    vec[g] = m + backbone
                candidates.append(vec)
        # MP-heavy + hybrid comm combined
        vec = np.full(grouping.num_groups, m + 2, dtype=np.int64)  # CP-PS
        big = order[: max(1, grouping.num_groups // 3)]
        for g in big:
            vec[g] = m + 3  # CP-AR for the heavy third
        for g in order[:1]:
            if params[g] > 0:
                vec[g] = 0  # heaviest group MP on the fastest GPU
        candidates.append(vec)

    # 4) memory-balanced MP ladders: contiguous group blocks (in topo order
    #    of their anchors) across devices — the feasible fallback for
    #    models where DP OOMs.  Blocks are balanced by the *activation
    #    bytes* each group pins (forward outputs live until their backward
    #    runs), proportional to each device's usable memory.
    from ..profiling.cost_model import op_memory_bytes, op_resident_bytes
    group_mem = np.zeros(grouping.num_groups)
    for name, g in grouping.group_of.items():
        op = graph.op(name)
        if op.phase in (OpPhase.INPUT, OpPhase.FORWARD, OpPhase.LOSS):
            group_mem[g] += op_memory_bytes(op, 1.0) + op_resident_bytes(op)
    positions = _anchor_topo_positions(graph, grouping)
    topo_order = np.argsort(positions)
    memories = np.asarray([d.usable_memory_bytes for d in cluster.devices],
                          dtype=np.float64)
    mem_targets = np.cumsum(memories / memories.sum()) * group_mem.sum()
    ladder = np.zeros(grouping.num_groups, dtype=np.int64)
    dev = 0
    cumulative = 0.0
    for g in topo_order:
        cumulative += group_mem[g]
        ladder[g] = dev
        while dev < m - 1 and cumulative >= mem_targets[dev]:
            dev += 1
    # the ladders go right after the four uniform DP candidates: for the
    # large models every DP scheme OOMs, and the search budget may be
    # small, so the feasible fallbacks must be tried early
    candidates.insert(4, ladder)

    # 5) ladder with the most compute-heavy half data-parallel (CP-AR)
    mixed = ladder.copy()
    light = params < np.median(params) if params.sum() > 0 else np.ones(
        grouping.num_groups, dtype=bool
    )
    mixed[light] = m + 3
    candidates.insert(5, mixed)

    return candidates


def group_memory_bytes(graph: ComputationGraph, grouping: Grouping
                       ) -> np.ndarray:
    """Activation + resident bytes each group pins during an iteration."""
    from ..profiling.cost_model import op_memory_bytes, op_resident_bytes
    out = np.zeros(grouping.num_groups)
    for name, g in grouping.group_of.items():
        op = graph.op(name)
        if op.phase in (OpPhase.INPUT, OpPhase.FORWARD, OpPhase.LOSS):
            out[g] += op_memory_bytes(op, 1.0) + op_resident_bytes(op)
    return out


def ladder_from_targets(graph: ComputationGraph, cluster: Cluster,
                        grouping: Grouping,
                        capacity_weights: np.ndarray) -> np.ndarray:
    """Contiguous MP ladder with stage boundaries set so each device's
    estimated pinned memory is proportional to ``capacity_weights``."""
    m = cluster.num_devices
    group_mem = group_memory_bytes(graph, grouping)
    positions = _anchor_topo_positions(graph, grouping)
    topo_order = np.argsort(positions)
    shares = np.asarray(capacity_weights, dtype=np.float64)
    shares = shares / shares.sum()
    targets = np.cumsum(shares) * group_mem.sum()
    ladder = np.zeros(grouping.num_groups, dtype=np.int64)
    dev = 0
    cumulative = 0.0
    for g in topo_order:
        cumulative += group_mem[g]
        ladder[g] = dev
        while dev < m - 1 and cumulative >= targets[dev]:
            dev += 1
    return ladder


def rebalanced_ladder(graph: ComputationGraph, cluster: Cluster,
                      grouping: Grouping,
                      peak_memory: Dict[str, float]) -> np.ndarray:
    """Feasibility repair for the MP ladder.

    The static estimate cannot predict transfer buffers and backward
    pinning exactly, so at ~90% cluster occupancy (the large-model rows)
    the first ladder may overflow individual devices.  This reweights
    each device's capacity share by how over/under-committed the last
    *measured* attempt left it and rebuilds the stage boundaries —
    a one-step multiplicative-weights correction.
    """
    weights = []
    for dev in cluster.devices:
        cap = float(dev.usable_memory_bytes)
        peak = float(peak_memory.get(dev.device_id, 0.0))
        if peak <= 0:
            correction = 2.0  # unused device: attract more work
        else:
            correction = min(2.0, max(0.4, (cap / peak) ** 1.2))
        weights.append(cap * correction)
    return ladder_from_targets(graph, cluster, grouping,
                               np.asarray(weights))


def memory_ladder_strategy(graph: ComputationGraph, cluster: Cluster,
                           capacity_weights: "np.ndarray" = None):
    """Per-op model-parallel ladder balanced by pinned activation bytes.

    Unlike the group-granular ladder above, this places every *operation*
    individually: forward ops are assigned to devices in topological
    order so each device's estimated pinned memory tracks its capacity
    share; backward/apply ops are colocated with their forward op.  This
    is the expressiveness the Graph Compiler supports even though the
    GNN's group action space cannot emit it — used as a raw strategy seed
    for the large models where the cluster runs near full occupancy.
    """
    from ..profiling.cost_model import op_memory_bytes, op_resident_bytes
    from ..parallel.strategy import Strategy, make_mp_strategy

    m = cluster.num_devices
    forward = [n for n in graph.topological_order()
               if graph.op(n).phase in (OpPhase.INPUT, OpPhase.FORWARD,
                                        OpPhase.LOSS)]
    mem = np.asarray([
        op_memory_bytes(graph.op(n), 1.0) + op_resident_bytes(graph.op(n))
        for n in forward
    ], dtype=np.float64)
    if capacity_weights is None:
        capacity_weights = np.asarray(
            [d.usable_memory_bytes for d in cluster.devices], dtype=np.float64
        )
    shares = capacity_weights / capacity_weights.sum()
    targets = np.cumsum(shares) * mem.sum()
    stage: Dict[str, int] = {}
    dev = 0
    cumulative = 0.0
    for name, bytes_ in zip(forward, mem):
        cumulative += bytes_
        stage[name] = dev
        while dev < m - 1 and cumulative >= targets[dev]:
            dev += 1
    per = {}
    for name in graph.op_names:
        op = graph.op(name)
        if name in stage:
            s = stage[name]
        elif op.forward_ref is not None and op.forward_ref in stage:
            s = stage[op.forward_ref]
        else:
            s = m - 1
        per[name] = make_mp_strategy(cluster.device_ids[s])
    return Strategy(graph, cluster, per)


def rebalance_weights(cluster: Cluster, peak_memory: Dict[str, float]
                      ) -> np.ndarray:
    """Multiplicative-weights capacity correction from measured peaks."""
    weights = []
    for dev in cluster.devices:
        cap = float(dev.usable_memory_bytes)
        peak = float(peak_memory.get(dev.device_id, 0.0))
        if peak <= 0:
            correction = 1.5
        else:
            correction = min(1.8, max(0.4, (cap / peak) ** 1.2))
        weights.append(cap * correction)
    return np.asarray(weights)
