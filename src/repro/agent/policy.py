"""The GNN policy: GAT encoder + Transformer-XL strategy network.

Output is the paper's N x (M + 4) action space (Sec. 4.1.2): per op
group, the first M actions place the group on GPU m with model
parallelism; the last four are the data-parallel combinations
{even, proportional} x {PS, AllReduce}.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..cluster.topology import Cluster
from ..errors import StrategyError
from ..graph.dag import ComputationGraph
from ..graph.grouping import Grouping
from ..nn import functional as F
from ..nn.layers import Module
from ..nn.tensor import Tensor
from ..nn.transformer_xl import StrategyNetwork
from ..parallel.strategy import (
    CommMethod,
    OpStrategy,
    ReplicaAllocation,
    Strategy,
    make_dp_strategy,
    make_mp_strategy,
)
from .embedding import GATEncoder

# DP action offsets after the M MP actions
DP_ACTIONS = (
    (ReplicaAllocation.EVEN, CommMethod.PS),          # M + 0 : EV-PS
    (ReplicaAllocation.EVEN, CommMethod.ALLREDUCE),   # M + 1 : EV-AR
    (ReplicaAllocation.PROPORTIONAL, CommMethod.PS),  # M + 2 : CP-PS
    (ReplicaAllocation.PROPORTIONAL, CommMethod.ALLREDUCE),  # M + 3 : CP-AR
)


def num_actions(cluster: Cluster) -> int:
    """Size of the per-group action space: M devices + 4 DP schemes."""
    return cluster.num_devices + len(DP_ACTIONS)


def action_to_op_strategy(cluster: Cluster, action: int) -> OpStrategy:
    """Decode one action index into an :class:`OpStrategy`."""
    m = cluster.num_devices
    if 0 <= action < m:
        return make_mp_strategy(cluster.device_ids[action])
    if m <= action < m + len(DP_ACTIONS):
        allocation, comm = DP_ACTIONS[action - m]
        return make_dp_strategy(cluster, allocation, comm)
    raise StrategyError(f"action {action} out of range for M={m}")


def actions_to_strategy(graph: ComputationGraph, cluster: Cluster,
                        grouping: Grouping,
                        actions: Sequence[int]) -> Strategy:
    """Decode a per-group action vector into a full per-op Strategy."""
    if len(actions) != grouping.num_groups:
        raise StrategyError(
            f"{len(actions)} actions for {grouping.num_groups} groups"
        )
    decoded = [action_to_op_strategy(cluster, a) for a in actions]
    per_op: Dict[str, OpStrategy] = {}
    for name, g in grouping.group_of.items():
        per_op[name] = decoded[g]
    return Strategy(graph, cluster, per_op)


def uniform_action_vector(cluster: Cluster, grouping: Grouping,
                          allocation: ReplicaAllocation,
                          comm: CommMethod) -> List[int]:
    """The action vector applying one DP scheme to every group."""
    m = cluster.num_devices
    offset = DP_ACTIONS.index((allocation, comm))
    return [m + offset] * grouping.num_groups


@dataclass
class PolicySample:
    """One sampled decision with everything REINFORCE needs."""

    actions: np.ndarray          # (N,) int action per group
    log_prob: Tensor             # scalar: sum over groups of log pi(a_n)
    entropy: Tensor              # scalar: mean per-group entropy H(pi)
    probs: np.ndarray            # (N, A) detached action distribution


class PolicyNetwork(Module):
    """End-to-end: node features -> per-group action distribution."""

    def __init__(self, feature_dim: int, actions: int, *,
                 gat_hidden: int = 48, gat_layers: int = 3, gat_heads: int = 4,
                 strategy_dim: int = 64, strategy_heads: int = 4,
                 strategy_layers: int = 2, seed: int = 0):
        self.encoder = GATEncoder(feature_dim, gat_hidden, gat_layers,
                                  gat_heads, seed=seed)
        self.strategy_net = StrategyNetwork(
            gat_hidden, actions, dim=strategy_dim, heads=strategy_heads,
            layers=strategy_layers, seed=seed + 1,
        )
        self.actions = actions

    def logits(self, features: np.ndarray, adjacency_mask: np.ndarray,
               assignment: np.ndarray) -> Tensor:
        groups = self.encoder(features, adjacency_mask, assignment)
        return self.strategy_net(groups)

    def sample(self, features: np.ndarray, adjacency_mask: np.ndarray,
               assignment: np.ndarray, rng: np.random.Generator,
               greedy: bool = False,
               forced_actions: Optional[Sequence[int]] = None) -> PolicySample:
        logits = self.logits(features, adjacency_mask, assignment)
        logp = F.log_softmax(logits, axis=-1)          # (N, A)
        probs = np.exp(logp.data)
        n = probs.shape[0]
        if forced_actions is not None:
            actions = np.asarray(forced_actions, dtype=np.int64)
        elif greedy:
            actions = probs.argmax(axis=-1)
        else:
            cumulative = probs.cumsum(axis=-1)
            draws = rng.random((n, 1))
            actions = (draws > cumulative).sum(axis=-1)
            actions = np.minimum(actions, self.actions - 1)
        one_hot = np.eye(self.actions)[actions]        # (N, A)
        log_prob = F.sum(F.mul(logp, Tensor(one_hot)))
        entropy = F.scale(
            F.sum(F.mul(F.exp(logp), F.scale(logp, -1.0))), 1.0 / n
        )
        return PolicySample(actions=actions, log_prob=log_prob,
                            entropy=entropy, probs=probs)
