"""Node feature encoding for the GAT (paper Sec. 4.1.1).

"(1) a node feature matrix, where each row contains the operation's
attributes (e.g., execution time when running on different devices, the
input and output sizes, the average tensor transfer time between each
pair of devices)" — plus phase/degree structure features.  Times and
sizes are log-compressed and the matrix standardized per column, keeping
the encoding usable across very different graphs/clusters (the bandwidth
enters the features, so "if the bandwidth changes, the input to the GNN
changes and the output strategy changes correspondingly").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..cluster.topology import Cluster
from ..graph.dag import ComputationGraph
from ..graph.op import OpPhase
from ..profiling.profiler import Profile

_PHASES = list(OpPhase)


def _log1p_us(seconds: float) -> float:
    """log-compressed time in microseconds."""
    return float(np.log1p(max(seconds, 0.0) * 1e6))


def _log1p_kb(size_bytes: float) -> float:
    return float(np.log1p(max(size_bytes, 0.0) / 1024.0))


@dataclass
class FeatureEncoder:
    """Builds the (O, F) node-feature matrix and (O, O) adjacency mask."""

    cluster: Cluster
    profile: Profile

    def gpu_models(self) -> List[str]:
        seen: List[str] = []
        for dev in self.cluster.devices:
            if dev.spec.model not in seen:
                seen.append(dev.spec.model)
        return seen

    @property
    def feature_dim(self) -> int:
        return len(self.gpu_models()) + 2 + 2 + len(_PHASES) + 3

    def encode(self, graph: ComputationGraph) -> np.ndarray:
        models = self.gpu_models()
        # one representative device per GPU model for time predictions
        rep_dev: Dict[str, str] = {}
        for dev in self.cluster.devices:
            rep_dev.setdefault(dev.spec.model, dev.device_id)

        # representative intra-/inter-server link pair for transfer features
        intra = inter = None
        for link in self.cluster.links():
            if link.intra_server and intra is None:
                intra = (link.src, link.dst)
            if not link.intra_server and inter is None:
                inter = (link.src, link.dst)
        rows: List[List[float]] = []
        for op in graph:
            row: List[float] = []
            for model in models:
                row.append(_log1p_us(
                    self.profile.op_time(op.name, rep_dev[model], 1.0)
                ))
            row.append(_log1p_kb(op.output.size_bytes))
            row.append(_log1p_kb(op.param_bytes))
            # average tensor transfer time over intra/inter link classes
            for pair in (intra, inter):
                if pair is None:
                    row.append(0.0)
                else:
                    row.append(_log1p_us(self.profile.transfer_time(
                        pair[0], pair[1], op.output.size_bytes
                    )))
            row.extend(1.0 if op.phase is p else 0.0 for p in _PHASES)
            row.append(1.0 if op.is_replicable else 0.0)
            row.append(float(graph.in_degree(op.name)))
            row.append(float(graph.out_degree(op.name)))
            rows.append(row)

        mat = np.asarray(rows, dtype=np.float64)
        # column standardization (constant columns left centred at 0)
        mean = mat.mean(axis=0)
        std = mat.std(axis=0)
        std[std < 1e-9] = 1.0
        return (mat - mean) / std

    def adjacency_mask(self, graph: ComputationGraph) -> np.ndarray:
        """(O, O) bool: True where j is a (bidirectional) neighbour of o,
        self-loops included — the GAT aggregates over N_o including o."""
        index = {n: i for i, n in enumerate(graph.op_names)}
        n = len(index)
        mask = np.eye(n, dtype=bool)
        for src, dst in graph.edges():
            mask[index[src], index[dst]] = True
            mask[index[dst], index[src]] = True
        return mask

    def average_exec_times(self, graph: ComputationGraph) -> Dict[str, float]:
        """Mean predicted execution time across GPU models (for grouping)."""
        models = self.gpu_models()
        rep_dev: Dict[str, str] = {}
        for dev in self.cluster.devices:
            rep_dev.setdefault(dev.spec.model, dev.device_id)
        out: Dict[str, float] = {}
        for op in graph:
            times = [
                self.profile.op_time(op.name, rep_dev[m], 1.0) for m in models
            ]
            out[op.name] = float(np.mean(times))
        return out
