"""The Agent of the Strategy Maker (paper Sec. 3.3 / Fig. 6).

Owns the GNN policy and per-graph contexts; exposes the train / best-
strategy surface the HeteroG facade and the experiment harness use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..cluster.topology import Cluster
from ..errors import StrategyError
from ..graph.dag import ComputationGraph
from ..graph.grouping import Grouping, group_operations
from ..parallel.strategy import Strategy
from ..profiling.profiler import Profile, Profiler
from .environment import StrategyEvaluator
from .features import FeatureEncoder
from .policy import PolicyNetwork, num_actions
from .reinforce import GraphContext, ReinforceTrainer, TrainerConfig


@dataclass
class AgentConfig:
    """Hyper-parameters of the GNN policy and its training.

    Paper defaults: 12 GAT layers x 8 heads, 8 Transformer-XL layers,
    N = 2000 groups.  The defaults here are CPU-feasible reductions of the
    same architecture; pass ``paper_scale()`` for the faithful sizes.
    """

    max_groups: int = 60
    gat_hidden: int = 48
    gat_layers: int = 3
    gat_heads: int = 4
    strategy_dim: int = 64
    strategy_heads: int = 4
    strategy_layers: int = 2
    learning_rate: float = 3e-3
    entropy_weight: float = 5e-3
    entropy_decay: float = 0.995
    use_seeds: bool = True
    use_order_scheduling: bool = True
    seed: int = 0
    # worker processes for strategy evaluation (1 = serial in-process;
    # results are bit-identical either way)
    eval_workers: int = 1
    # winner-safe branch-and-bound pruning (results bit-identical)
    prune: bool = True
    # simulation event loop: "kernel" (array-lowered, default) or
    # "reference" (pure-python); the engines are bit-identical, so this
    # is a throughput knob, never a result knob
    engine: str = "kernel"
    # opt-in best-so-far pruning of REINFORCE rollouts (faster but NOT
    # reward-transparent; see TrainerConfig.prune_rollouts)
    prune_rollouts: bool = False

    @staticmethod
    def paper_scale() -> "AgentConfig":
        return AgentConfig(max_groups=2000, gat_hidden=256, gat_layers=12,
                           gat_heads=8, strategy_dim=256, strategy_heads=8,
                           strategy_layers=8)


class HeteroGAgent:
    """GNN policy + per-graph contexts + the REINFORCE trainer."""

    def __init__(self, cluster: Cluster, config: Optional[AgentConfig] = None):
        self.cluster = cluster
        self.config = config or AgentConfig()
        self._contexts: List[GraphContext] = []
        self._profiles: Dict[str, Profile] = {}
        self._policy: Optional[PolicyNetwork] = None
        self._trainer: Optional[ReinforceTrainer] = None

    # ------------------------------------------------------------------ #
    def add_graph(self, graph: ComputationGraph,
                  profile: Optional[Profile] = None,
                  name: Optional[str] = None) -> GraphContext:
        """Register a DNN graph; profiles it if no profile is supplied."""
        name = name or graph.name
        if any(ctx.name == name for ctx in self._contexts):
            raise StrategyError(f"graph {name!r} already registered")
        if profile is None:
            profile = Profiler(seed=self.config.seed).profile(graph,
                                                              self.cluster)
        self._profiles[name] = profile
        encoder = FeatureEncoder(self.cluster, profile)
        features = encoder.encode(graph)
        adjacency = encoder.adjacency_mask(graph)
        grouping = group_operations(
            graph, encoder.average_exec_times(graph), self.config.max_groups
        )
        index = {n: i for i, n in enumerate(graph.op_names)}
        assignment = grouping.assignment_matrix(index)
        evaluator = StrategyEvaluator(
            graph, self.cluster, profile,
            use_order_scheduling=self.config.use_order_scheduling,
            group_of=grouping.group_of,
            engine=self.config.engine,
        )
        ctx = GraphContext(
            name=name, graph=graph, grouping=grouping, features=features,
            adjacency_mask=adjacency, assignment=assignment,
            evaluator=evaluator,
        )
        self._contexts.append(ctx)
        self._trainer = None  # contexts changed; rebuild on next train
        if self._policy is None:
            self._policy = self._build_policy(features.shape[1])
        return ctx

    def _build_policy(self, feature_dim: int) -> PolicyNetwork:
        cfg = self.config
        return PolicyNetwork(
            feature_dim, num_actions(self.cluster),
            gat_hidden=cfg.gat_hidden, gat_layers=cfg.gat_layers,
            gat_heads=cfg.gat_heads, strategy_dim=cfg.strategy_dim,
            strategy_heads=cfg.strategy_heads,
            strategy_layers=cfg.strategy_layers, seed=cfg.seed,
        )

    # ------------------------------------------------------------------ #
    @property
    def policy(self) -> PolicyNetwork:
        if self._policy is None:
            raise StrategyError("no graphs registered yet")
        return self._policy

    @property
    def trainer(self) -> ReinforceTrainer:
        if self._trainer is None:
            if not self._contexts:
                raise StrategyError("no graphs registered yet")
            cfg = self.config
            self._trainer = ReinforceTrainer(
                self.policy, self._contexts,
                TrainerConfig(
                    learning_rate=cfg.learning_rate,
                    entropy_weight=cfg.entropy_weight,
                    entropy_decay=cfg.entropy_decay,
                    use_seeds=cfg.use_seeds,
                    eval_workers=cfg.eval_workers,
                    prune=cfg.prune,
                    prune_rollouts=cfg.prune_rollouts,
                ),
                seed=cfg.seed,
            )
        return self._trainer

    def train(self, episodes: int) -> None:
        self.trainer.train(episodes)

    # ------------------------------------------------------------------ #
    def best_strategy(self, name: str) -> Strategy:
        strategy = self.trainer.best_strategy(name)
        if strategy is None:
            raise StrategyError(
                f"no feasible strategy found yet for {name!r}; train longer"
            )
        return strategy

    def best_time(self, name: str) -> float:
        return self.trainer.best_time(name)

    def context(self, name: str) -> GraphContext:
        for ctx in self._contexts:
            if ctx.name == name:
                return ctx
        raise StrategyError(f"unknown graph {name!r}")

    def try_context(self, name: str) -> Optional[GraphContext]:
        """Like :meth:`context`, but returns None for unknown graphs."""
        for ctx in self._contexts:
            if ctx.name == name:
                return ctx
        return None

    def profile(self, name: str) -> Profile:
        return self._profiles[name]

    # ------------------------------------------------------------------ #
    def policy_state(self) -> Dict[str, np.ndarray]:
        return self.policy.state_dict()

    def load_policy_state(self, state: Dict[str, np.ndarray]) -> None:
        self.policy.load_state_dict(state)
