"""REINFORCE training of the GNN policy (paper Sec. 4.1.3).

Objective: J(theta) = (1/|G|) sum_G E_{D ~ pi(G)}[R_{G,D}] + lambda H(pi);
update:   theta <- theta + alpha (1/|G|) sum_g grad log pi(a_g) (r_g - R_g)
                    + lambda grad H(pi)
with R_g a moving average of rewards (the baseline), and H an entropy
regularizer for exploration.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import telemetry
from ..graph.dag import ComputationGraph
from ..graph.grouping import Grouping
from ..nn import functional as F
from ..nn.optim import Adam
from ..nn.tensor import Tensor
from ..plan import BatchEvaluator, BestSoFar
from .environment import EvalOutcome, StrategyEvaluator
from .policy import PolicyNetwork, actions_to_strategy
from .reward import MovingAverageBaseline, compute_reward
from .seeds import seed_action_vectors

# rewards are negative (-sqrt(T), x10 on OOM): symmetric-log buckets
_REWARD_BUCKETS = tuple(-(4.0 ** i) for i in range(8, -1, -1)) + (
    0.0, 1.0, 4.0)


@dataclass
class GraphContext:
    """Everything the trainer needs for one DNN graph."""

    name: str
    graph: ComputationGraph
    grouping: Grouping
    features: np.ndarray         # (O, F)
    adjacency_mask: np.ndarray   # (O, O) bool
    assignment: np.ndarray       # (N, O)
    evaluator: StrategyEvaluator
    baseline: MovingAverageBaseline = field(
        default_factory=lambda: MovingAverageBaseline(0.9)
    )
    best_time: float = float("inf")
    best_actions: Optional[np.ndarray] = None
    # best raw Strategy seed (per-op expressiveness the group action
    # space cannot emit, e.g. the per-op memory ladder)
    best_raw_strategy = None
    best_raw_time: float = float("inf")
    history: List[float] = field(default_factory=list)  # reward per episode
    # feasible simulated time per episode (inf when OOM/infeasible)
    time_history: List[float] = field(default_factory=list)

    def record(self, actions: np.ndarray, outcome: EvalOutcome) -> None:
        if outcome.feasible and outcome.time < self.best_time:
            self.best_time = outcome.time
            self.best_actions = actions.copy()


@dataclass
class TrainerConfig:
    """Hyper-parameters of the REINFORCE update."""
    learning_rate: float = 3e-3
    entropy_weight: float = 5e-3
    entropy_decay: float = 0.995   # anneal exploration over episodes
    baseline_decay: float = 0.9
    clip_norm: float = 5.0
    use_seeds: bool = True
    # worker processes for strategy evaluation; 1 = serial in-process
    eval_workers: int = 1
    # winner-safe pruning layers (scheduler candidate-race abort etc.);
    # never changes any outcome the trainer sees
    prune: bool = True
    # opt-in: thread the per-graph best-so-far into rollout evaluation.
    # OFF by default because it is NOT reward-transparent: a pruned
    # rollout earns the infeasible penalty instead of -sqrt(T), which
    # changes the policy-gradient trajectory (and therefore the search
    # path) relative to an unpruned run.  Enable only when training
    # throughput matters more than bit-identical training curves.
    prune_rollouts: bool = False


class ReinforceTrainer:
    """Trains one policy over a set of graph contexts."""

    def __init__(self, policy: PolicyNetwork, contexts: Sequence[GraphContext],
                 config: TrainerConfig = TrainerConfig(), seed: int = 0):
        if not contexts:
            raise ValueError("trainer needs at least one graph context")
        self.policy = policy
        self.contexts = list(contexts)
        self.config = config
        self.optimizer = Adam(policy.parameters(), lr=config.learning_rate,
                              clip_norm=config.clip_norm)
        self.rng = np.random.default_rng(seed)
        self.episode = 0
        self._entropy_weight = config.entropy_weight
        self._seed_queues: Dict[str, List[np.ndarray]] = {}
        self._repair_attempts: Dict[str, int] = {}
        self._raw_seeds_pending: Dict[str, bool] = {}
        self._batch = BatchEvaluator(
            {ctx.name: ctx.evaluator.builder for ctx in self.contexts},
            max_workers=config.eval_workers,
        )
        # per-graph best-so-far trackers (only consulted when the
        # prune_rollouts opt-in is set; observation is free otherwise)
        self._best: Dict[str, BestSoFar] = {
            ctx.name: BestSoFar() for ctx in self.contexts
        }
        if config.use_seeds:
            for ctx in self.contexts:
                self._seed_queues[ctx.name] = seed_action_vectors(
                    ctx.graph, ctx.evaluator.cluster, ctx.grouping
                )
                self._raw_seeds_pending[ctx.name] = True

    # ------------------------------------------------------------------ #
    def train_episode(self) -> Dict[str, float]:
        """One policy-gradient step over all graphs; returns rewards."""
        with telemetry.span("agent.episode", episode=self.episode):
            return self._train_episode()

    def _train_episode(self) -> Dict[str, float]:
        tel = telemetry.active()
        wall_start = time.perf_counter() if tel is not None else 0.0
        losses: List[Tensor] = []
        rewards: Dict[str, float] = {}
        # Phase 1: sample one candidate per graph (policy RNG is touched
        # only here, so batching the evaluations below cannot perturb it).
        rollouts = []
        for ctx in self.contexts:
            if self._raw_seeds_pending.pop(ctx.name, False):
                self._evaluate_raw_seeds(ctx)
            forced = None
            queue = self._seed_queues.get(ctx.name)
            if queue:
                forced = queue.pop(0)
            sample = self.policy.sample(
                ctx.features, ctx.adjacency_mask, ctx.assignment, self.rng,
                forced_actions=forced,
            )
            strategy = actions_to_strategy(
                ctx.graph, ctx.evaluator.cluster, ctx.grouping, sample.actions
            )
            rollouts.append((ctx, sample, strategy))
        # Phase 2: evaluate the rollout batch (cached + optionally parallel;
        # bit-identical to evaluating serially in context order).  The
        # best-so-far trackers are threaded only under the
        # prune_rollouts opt-in (see TrainerConfig).
        best = (self._best
                if self.config.prune and self.config.prune_rollouts
                else None)
        outcomes = self._batch.evaluate_pairs(
            [(ctx.name, strategy) for ctx, _, strategy in rollouts],
            best=best, prune=self.config.prune,
        )
        # Phase 3: rewards, baselines and the policy-gradient loss.
        for (ctx, sample, strategy), outcome in zip(rollouts, outcomes):
            self._maybe_repair_ladder(ctx, sample.actions, outcome)
            reward = compute_reward(outcome)
            ctx.record(sample.actions, outcome)
            ctx.history.append(reward)
            ctx.time_history.append(
                outcome.time if outcome.feasible else float("inf")
            )
            baseline = ctx.baseline.update(reward)
            advantage = reward - baseline
            # maximize logprob*advantage + lambda*entropy
            loss = F.add(
                F.scale(sample.log_prob, -advantage),
                F.scale(sample.entropy, -self._entropy_weight),
            )
            losses.append(loss)
            rewards[ctx.name] = reward
            if tel is not None:
                labels = {"graph": ctx.name}
                reg = tel.registry
                reg.histogram("agent_episode_reward", labels=labels,
                              help="REINFORCE reward per episode",
                              buckets=_REWARD_BUCKETS).observe(reward)
                reg.histogram("agent_episode_advantage", labels=labels,
                              help="reward minus moving-average baseline",
                              buckets=_REWARD_BUCKETS).observe(advantage)
                reg.gauge("agent_policy_entropy", labels=labels,
                          help="entropy of the sampled strategy",
                          ).set(float(sample.entropy.data))
                best = min(ctx.best_time, ctx.best_raw_time)
                if best != float("inf"):
                    reg.gauge("agent_best_time_seconds", labels=labels,
                              help="best feasible simulated time so far",
                              ).set(best)

        total = losses[0]
        for loss in losses[1:]:
            total = F.add(total, loss)
        total = F.scale(total, 1.0 / len(losses))
        self.optimizer.zero_grad()
        total.backward()
        self.optimizer.step()
        self.episode += 1
        self._entropy_weight *= self.config.entropy_decay
        if tel is not None:
            tel.registry.counter("agent_episodes_total",
                                 help="REINFORCE episodes trained").inc()
            tel.registry.histogram(
                "agent_episode_wall_seconds",
                help="wall-clock time per training episode",
            ).observe(time.perf_counter() - wall_start)
        return rewards

    def _evaluate_raw_seeds(self, ctx: GraphContext) -> None:
        """Evaluate the per-op memory-ladder strategy with a bounded
        rebalance loop (feasibility fallback for the large-model rows)."""
        from .seeds import memory_ladder_strategy, rebalance_weights
        cluster = ctx.evaluator.cluster
        weights = None
        for _ in range(4):
            strategy = memory_ladder_strategy(ctx.graph, cluster, weights)
            outcome = ctx.evaluator.evaluate(strategy)
            if outcome.feasible:
                if outcome.time < ctx.best_raw_time:
                    ctx.best_raw_time = outcome.time
                    ctx.best_raw_strategy = strategy
                return
            if outcome.result is None or not outcome.result.peak_memory:
                return
            weights = rebalance_weights(cluster,
                                        outcome.result.peak_memory)

    def _maybe_repair_ladder(self, ctx: GraphContext, actions: np.ndarray,
                             outcome: EvalOutcome) -> None:
        """When a mostly-MP candidate OOMs and nothing feasible has been
        found yet, enqueue a memory-rebalanced ladder built from the
        *measured* per-device peaks (feasibility repair for the
        large-model rows, where the cluster runs at ~90% occupancy)."""
        if not self.config.use_seeds:
            return
        if ctx.best_actions is not None or not outcome.oom:
            return
        if outcome.result is None or not outcome.result.peak_memory:
            return
        m = ctx.evaluator.cluster.num_devices
        if (actions < m).mean() < 0.5:
            return  # only repair MP-ladder-like candidates
        attempts = self._repair_attempts.get(ctx.name, 0)
        if attempts >= 4:
            return
        self._repair_attempts[ctx.name] = attempts + 1
        from .seeds import rebalanced_ladder
        repaired = rebalanced_ladder(
            ctx.graph, ctx.evaluator.cluster, ctx.grouping,
            outcome.result.peak_memory,
        )
        self._seed_queues.setdefault(ctx.name, []).insert(0, repaired)

    def train(self, episodes: int) -> None:
        for _ in range(episodes):
            self.train_episode()

    def close(self) -> None:
        """Release the evaluation worker pool (no-op when serial)."""
        self._batch.close()

    # ------------------------------------------------------------------ #
    def best_strategy(self, name: str):
        ctx = self._ctx(name)
        if ctx.best_raw_strategy is not None and (
            ctx.best_raw_time < ctx.best_time
        ):
            return ctx.best_raw_strategy
        if ctx.best_actions is None:
            return None
        return actions_to_strategy(ctx.graph, ctx.evaluator.cluster,
                                   ctx.grouping, ctx.best_actions)

    def best_time(self, name: str) -> float:
        ctx = self._ctx(name)
        return min(ctx.best_time, ctx.best_raw_time)

    def episodes_to_reach(self, name: str, target_time: float) -> Optional[int]:
        """First episode whose best-so-far simulated time <= target
        (used by the Table 6 convergence measurements)."""
        ctx = self._ctx(name)
        if ctx.best_raw_time <= target_time and ctx.time_history:
            return 1  # the raw seeds are evaluated during the 1st episode
        best = float("inf")
        for i, time in enumerate(ctx.time_history):
            best = min(best, time)
            if best <= target_time:
                return i + 1
        return None

    def _ctx(self, name: str) -> GraphContext:
        for ctx in self.contexts:
            if ctx.name == name:
                return ctx
        raise KeyError(f"unknown graph context {name!r}")
