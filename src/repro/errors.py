"""Exception hierarchy for the HeteroG reproduction."""


class ReproError(Exception):
    """Base class for all errors raised by this package.

    ``request_id`` carries the correlation id of the plan request (or
    resilience episode) the error was produced on behalf of, when one
    was in scope — the planning service stamps it before handing the
    error back, so a caller can go straight to ``repro postmortem``.
    """

    request_id = None  # set by the service when raised for a request


class GraphError(ReproError):
    """Raised for malformed computation graphs (cycles, dangling edges, ...)."""


class PlacementError(ReproError):
    """Raised when a strategy references an unknown device or is inconsistent."""


class CompileError(ReproError):
    """Raised when the graph compiler cannot apply a strategy."""


class SimulationError(ReproError):
    """Raised when the discrete-event simulator reaches an invalid state."""


class OutOfMemoryError(SimulationError):
    """Raised (or recorded) when a device exceeds its memory capacity.

    The strategy framework usually *records* OOM instead of raising, so the
    RL agent can penalize the strategy; the execution engine raises it when
    asked to run an infeasible deployment for real.
    """

    def __init__(self, device: str, required: int, capacity: int):
        self.device = device
        self.required = required
        self.capacity = capacity
        super().__init__(
            f"device {device} out of memory: "
            f"needs {required} bytes, capacity {capacity} bytes"
        )


class DeviceLostError(SimulationError):
    """Raised when an op touches a device the fault injector has crashed.

    The resilience layer (``repro.resilience``) treats this as the
    testbed's way of reporting a hard device failure: the execution
    engine surfaces it from the first dist-op that needs the dead GPU,
    and the :class:`~repro.runtime.trainer_loop.FailureDetector` turns
    it into a ``device_lost`` detection.
    """

    def __init__(self, device: str, op: str = ""):
        self.device = device
        self.op = op
        where = f" (needed by {op!r})" if op else ""
        super().__init__(f"device {device} is lost{where}")


class ProfilingError(ReproError):
    """Raised when the profiler cannot produce a prediction."""


class ServiceError(ReproError):
    """Base class for planning-service failures (``repro.service``)."""


class ServiceOverloadedError(ServiceError):
    """Raised when the service's admission queue is full.

    Structured so callers can implement backpressure: ``queue_depth`` is
    the number of requests waiting when the submission was rejected and
    ``limit`` is the service's configured queue bound.
    """

    def __init__(self, queue_depth: int, limit: int):
        self.queue_depth = queue_depth
        self.limit = limit
        super().__init__(
            f"planning service overloaded: {queue_depth} requests queued "
            f"(limit {limit}); retry later or raise max_queue"
        )


class ServiceTimeoutError(ServiceError):
    """Raised when a plan request misses its deadline.

    ``stage`` is ``"queue"`` when the deadline expired before the
    request was dispatched to a worker (the service fails it fast
    without evaluating) and ``"wait"`` when the caller stopped waiting
    for an in-flight computation.
    """

    def __init__(self, timeout: float, stage: str = "wait",
                 fingerprint: str = ""):
        self.timeout = timeout
        self.stage = stage
        self.fingerprint = fingerprint
        super().__init__(
            f"plan request timed out after {timeout:.3f}s ({stage})"
        )


class ServiceClosedError(ServiceError):
    """Raised when submitting to (or waiting on) a closed service."""


class FleetProtocolError(ServiceError):
    """Raised when a fleet wire message fails to encode or decode.

    The manager/worker channel only carries versioned typed messages
    (``repro.service.messages``); any frame that is not one — wrong
    version, unknown type tag, missing fields — poisons the channel
    and surfaces as this error instead of a silent mis-dispatch.
    """


class WorkerLostError(ServiceError):
    """Raised when a request exhausts its re-dispatch budget.

    The fleet backend re-dispatches an in-flight request when its
    worker dies or stops heartbeating; after ``redispatch_limit``
    attempts the request is failed with this error so a poisonous
    request cannot take the whole fleet down worker by worker.
    ``attempts`` counts dispatches tried, ``workers`` the ids that
    served (and lost) it.
    """

    def __init__(self, message, attempts=0, workers=()):
        self.attempts = attempts
        self.workers = list(workers)
        super().__init__(message)


class StrategyError(ReproError):
    """Raised for invalid strategy encodings or action vectors."""


class JournalSchemaError(ReproError):
    """Raised when a journal event fails schema validation.

    Emission and reading both validate against the versioned schema
    (``repro.telemetry.journal.SCHEMA_VERSION``): an unknown event type
    or a missing required field raises this, so a malformed journal
    fails loudly instead of silently degrading observability.
    """
