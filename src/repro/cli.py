"""Command-line interface: ``python -m repro <command>``.

Commands
--------
plan        search a deployment strategy for a model on a cluster preset
baselines   measure the four DP baselines for a model
models      list registered benchmark models and their sizes
clusters    show the cluster presets
trace       run the full pipeline under telemetry, write a Chrome trace
            and print the critical-path blame
faults      train under a fault-injection schedule (crash / degrade /
            straggler) and recover by elastic replanning
serve       drive the planning service with a concurrent workload and
            report coalescing / admission-control behaviour
bench-service  benchmark coalesced concurrent serving against naive
            serial replanning
experiment  run one paper experiment (table1, table4, table7, fig3a,
            fig3b, fig8, fig9, faults)
journal     tail / filter a JSONL request journal (--request-id,
            --phase, --format jsonl|table)
postmortem  reconstruct one request's full timeline from the journal
            (no tracing needed beforehand)
status      render a service status snapshot (queue, caches, SLO burn)
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from . import __version__
from .cluster import (
    cluster_2gpu,
    cluster_4gpu,
    cluster_8gpu,
    cluster_12gpu,
)
from .errors import ReproError
from .graph.models import ALL_MODELS, build_model, model_names

CLUSTERS = {
    "2gpu": cluster_2gpu,
    "4gpu": cluster_4gpu,
    "8gpu": cluster_8gpu,
    "12gpu": cluster_12gpu,
}


def _resolve_cluster(name: str):
    """Accept '8gpu', 'cluster8', 'cluster8gpu', or '8'."""
    key = name.lower().strip()
    if key.startswith("cluster"):
        key = key[len("cluster"):]
    if key and not key.endswith("gpu"):
        key = key + "gpu"
    try:
        return CLUSTERS[key]
    except KeyError:
        raise ReproError(
            f"unknown cluster {name!r}; known: {', '.join(sorted(CLUSTERS))}"
        ) from None


def _resolve_model(name: str) -> str:
    """Exact model name, or a unique prefix (e.g. 'resnet')."""
    key = name.lower().strip()
    if key in ALL_MODELS:
        return key
    matches = [m for m in model_names() if key and m.startswith(key)]
    if len(matches) == 1:
        return matches[0]
    hint = (f"ambiguous between {', '.join(matches)}" if matches
            else f"known: {', '.join(model_names())}")
    raise ReproError(f"unknown model {name!r}; {hint}")


def _write_metrics(registry, path: str) -> None:
    """Dump a metrics registry: Prometheus text for .prom/.txt, else JSON."""
    if path.endswith((".prom", ".txt")):
        registry.save_prometheus(path)
    else:
        registry.save_json(path)


def _add_output_args(parser: argparse.ArgumentParser, *,
                     journal: bool = False) -> None:
    """The shared telemetry-output options (one definition, not four)."""
    parser.add_argument("--metrics-out", metavar="PATH",
                        help="dump the telemetry metrics registry "
                        "(.prom/.txt: Prometheus text; else JSON)")
    if journal:
        parser.add_argument("--journal-out", metavar="PATH",
                            help="write the request journal as JSONL "
                            "(readable by 'repro journal' / "
                            "'repro postmortem')")


def _save_outputs(args: argparse.Namespace, tel) -> None:
    """Shared ``--metrics-out`` / ``--journal-out`` epilogue."""
    if getattr(args, "metrics_out", None):
        _write_metrics(tel.registry, args.metrics_out)
        print(f"metrics written to {args.metrics_out}", file=sys.stderr)
    if getattr(args, "journal_out", None):
        from .telemetry.flight import default_recorder
        default_recorder().journal.save_jsonl(args.journal_out)
        print(f"journal written to {args.journal_out}", file=sys.stderr)


def _render_status(snapshot: dict) -> str:
    """Human-readable one-shot service status (serve + status share it)."""
    stats = snapshot.get("stats", {})
    queue = snapshot.get("queue", {})
    contexts = snapshot.get("contexts", {})
    cache = snapshot.get("result_cache", {})
    lines = [
        f"service {snapshot.get('service', '?')!r}: "
        f"{stats.get('submitted', 0)} submitted, "
        f"{stats.get('executed', 0)} executed, "
        f"{stats.get('coalesced', 0)} coalesced, "
        f"{stats.get('result_hits', 0)} cache hits, "
        f"{stats.get('rejected', 0)} rejected, "
        f"{stats.get('timeouts', 0)} timeouts",
        f"  queue        : {queue.get('depth', 0)}/"
        f"{queue.get('capacity', 0)} queued",
        f"  contexts     : {contexts.get('warm', 0)}/"
        f"{contexts.get('capacity', 0)} warm",
        f"  result cache : {cache.get('hits', 0)} hits / "
        f"{cache.get('misses', 0)} misses "
        f"({cache.get('hit_rate', 0.0) * 100:.1f}%), "
        f"{cache.get('size', 0)}/{cache.get('capacity', 0)} entries",
    ]
    inflight = snapshot.get("inflight", [])
    if inflight:
        lines.append(f"  inflight ({len(inflight)}):")
        for entry in inflight:
            lines.append(
                f"    {entry.get('request_id', '?'):12s} "
                f"label={entry.get('label') or '-'} "
                f"priority={entry.get('priority', 0)} "
                f"age {entry.get('age_seconds', 0.0):.2f}s")
    slo = snapshot.get("slo", {})
    if slo:
        lines.append("  slo:")
        for cls, state in sorted(slo.items()):
            burn = state.get("budget_burn", 0.0)
            lines.append(
                f"    {cls:12s} {state.get('requests', 0):4d} requests  "
                f"compliance {state.get('compliance', 1.0) * 100:5.1f}%  "
                f"(objective {state.get('objective_seconds')}s, "
                f"target {(state.get('target') or 0) * 100:.0f}%)  "
                f"budget burn {burn:.2f}"
                + ("  [SLO BLOWN]" if burn > 1.0 else ""))
    return "\n".join(lines)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cluster", choices=sorted(CLUSTERS), default="8gpu",
                        help="testbed preset (default: 8gpu)")
    parser.add_argument("--preset", choices=["tiny", "bench", "paper"],
                        default="bench", help="model scale (default: bench)")
    parser.add_argument("--seed", type=int, default=0)


def cmd_models(args: argparse.Namespace) -> int:
    """``repro models``: list the model zoo with sizes."""
    print(f"{'model':16s} {'ops':>6s} {'params':>10s} {'GFLOPs':>9s}")
    for name in model_names():
        graph = build_model(name, args.preset)
        stats = graph.stats()
        print(f"{name:16s} {stats['ops']:6.0f} "
              f"{stats['param_bytes'] / 2 ** 20:8.1f}Mi "
              f"{stats['total_flops'] / 1e9:9.1f}")
    return 0


def cmd_clusters(args: argparse.Namespace) -> int:  # noqa: ARG001
    """``repro clusters``: show the testbed presets."""
    for name, factory in CLUSTERS.items():
        cluster = factory()
        print(f"{name}: {cluster}")
        for dev in cluster.devices:
            print(f"  {dev.device_id}: {dev.spec.model} "
                  f"({dev.memory_bytes / 2 ** 30:.0f} GB) on {dev.server}")
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    """``repro plan``: run the strategy search for one model."""
    from .experiments import ExperimentContext
    from .experiments.common import bench_agent_config
    from .reporting import describe_strategy
    cluster = CLUSTERS[args.cluster]()
    graph = build_model(args.model, args.preset)
    print(f"searching strategy for {graph.name} on {cluster} "
          f"({args.episodes} episodes, {args.workers} eval worker(s))...",
          file=sys.stderr)
    ctx = ExperimentContext(cluster, seed=args.seed)
    config = bench_agent_config(args.seed)
    config.eval_workers = args.workers
    config.prune = not args.no_prune
    config.engine = args.engine
    measured = ctx.run_heterog(graph, episodes=args.episodes,
                               agent_config=config)
    print(f"per-iteration time : {measured.display_time} s")
    print(f"search time        : {measured.extras['search_seconds']:.1f} s")
    print(describe_strategy(measured.strategy))
    if args.save:
        from .parallel.serialize import save_strategy
        save_strategy(measured.strategy, args.save)
        print(f"strategy saved to {args.save}")
    return 0


def cmd_baselines(args: argparse.Namespace) -> int:
    """``repro baselines``: measure the four DP baselines."""
    from .baselines import DP_BASELINES, dp_strategy
    from .experiments import ExperimentContext, format_table
    cluster = CLUSTERS[args.cluster]()
    graph = build_model(args.model, args.preset)
    ctx = ExperimentContext(cluster, seed=args.seed)
    rows: List[List[str]] = []
    for name in DP_BASELINES:
        measured = ctx.measure(graph, dp_strategy(name, graph, cluster),
                               name, use_order_scheduling=False)
        rows.append([name, measured.display_time])
    print(format_table(["Baseline", "Per-iteration (s)"], rows))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """``repro trace``: run the pipeline under telemetry and export it."""
    from . import telemetry
    from .config import HeteroGConfig
    from .heterog import HeteroG
    from .reporting import save_chrome_trace
    from .runtime.execution_engine import ExecutionEngine

    model_name = _resolve_model(args.model)
    cluster = _resolve_cluster(args.cluster)()
    with telemetry.session() as tel:
        with telemetry.span("pipeline.build", model=model_name,
                            preset=args.preset):
            graph = build_model(model_name, args.preset)
        print(f"tracing {graph.name} on {cluster} "
              f"({args.episodes} episodes)...", file=sys.stderr)
        heterog = HeteroG(cluster, HeteroGConfig(episodes=args.episodes,
                                                 seed=args.seed))
        deployment = heterog.deploy(graph)
        engine = ExecutionEngine(cluster, seed=args.seed + 1)
        with telemetry.span("pipeline.execute", graph=graph.name):
            result = engine.run_iteration(
                deployment.dist, deployment.schedule,
                deployment.resident_bytes, check_memory=False, trace=True)
        save_chrome_trace(deployment.dist, result, args.out,
                          tracer=tel.tracer,
                          resident_bytes=deployment.resident_bytes)
        print(f"chrome trace written to {args.out} "
              f"({len(deployment.dist)} dist-ops, "
              f"makespan {result.makespan * 1e3:.2f} ms)")
        report = telemetry.critical_path(deployment.dist, result)
        print(report.summary())
        if args.spans_out:
            tel.tracer.save_jsonl(args.spans_out)
            print(f"span log written to {args.spans_out}")
        _save_outputs(args, tel)
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    """``repro faults``: train under fault injection and recover.

    Returns exit code 1 when the run stalled (a crash under the ``ride``
    policy), so scripts and the CI smoke can assert recovery happened.
    """
    from . import telemetry
    from .config import HeteroGConfig
    from .experiments.common import bench_agent_config
    from .heterog import HeteroG
    from .resilience import FaultSchedule

    model_name = _resolve_model(args.model)
    cluster = _resolve_cluster(args.cluster)()
    episodes, steps = args.episodes, args.steps
    replan_episodes = args.replan_episodes
    if args.quick:
        episodes = min(episodes, 2)
        steps = min(steps, 6)
        replan_episodes = min(replan_episodes, 2)
    graph = build_model(model_name, args.preset)
    if args.schedule:
        schedule = FaultSchedule.parse(args.schedule)
    else:
        schedule = FaultSchedule.random(cluster, seed=args.seed,
                                        events=args.random_faults,
                                        horizon=max(2, steps // 2))
    config = HeteroGConfig(episodes=episodes, seed=args.seed,
                           agent=bench_agent_config(args.seed))
    heterog = HeteroG(cluster, config)
    with telemetry.session() as tel:
        print(f"searching healthy deployment for {graph.name} on {cluster} "
              f"({episodes} episodes)...", file=sys.stderr)
        deployment = heterog.deploy(graph)
        print("injecting: "
              + (", ".join(e.label for e in schedule) or "(none)"),
              file=sys.stderr)
        trainer = heterog.resilient_runner(deployment, schedule,
                                           policy=args.policy,
                                           episodes=replan_episodes)
        report = trainer.run(steps)
        print(report.summary())
        _save_outputs(args, tel)
    return 1 if report.stalled else 0


def cmd_churn(args: argparse.Namespace) -> int:
    """``repro churn``: train through spot arrivals and preemptions.

    Either a concrete ``--schedule`` of capacity events or a seeded
    Poisson timeline from ``--arrival-rate`` / ``--preempt-rate``
    (the :class:`~repro.elastic.ChurnSchedule` generator).  Returns
    exit code 1 when the run stalled, so scripts can assert the
    elastic policy kept the job alive.
    """
    from . import telemetry
    from .config import HeteroGConfig
    from .elastic import ChurnSchedule
    from .experiments.common import bench_agent_config
    from .heterog import HeteroG
    from .resilience import FaultSchedule

    model_name = _resolve_model(args.model)
    cluster = _resolve_cluster(args.cluster)()
    episodes, steps = args.episodes, args.steps
    replan_episodes = args.replan_episodes
    if args.quick:
        episodes = min(episodes, 2)
        steps = min(steps, 6)
        replan_episodes = min(replan_episodes, 2)
    graph = build_model(model_name, args.preset)
    if args.schedule:
        schedule = FaultSchedule.parse(args.schedule)
    else:
        churn = ChurnSchedule(
            arrival_rate=args.arrival_rate,
            preempt_rate=args.preempt_rate,
            notice=args.notice,
            reclaim_probability=args.reclaim_probability,
            seed=args.seed,
            horizon=max(2, steps),
        )
        schedule = churn.schedule(cluster)
    config = HeteroGConfig(episodes=episodes, seed=args.seed,
                           agent=bench_agent_config(args.seed))
    config.agent.eval_workers = args.workers
    config.agent.prune = not args.no_prune
    config.agent.engine = args.engine
    heterog = HeteroG(cluster, config)
    with telemetry.session() as tel:
        print(f"searching healthy deployment for {graph.name} on {cluster} "
              f"({episodes} episodes)...", file=sys.stderr)
        deployment = heterog.deploy(graph)
        print("churn events: "
              + (", ".join(e.label for e in schedule) or "(none)"),
              file=sys.stderr)
        trainer = heterog.resilient_runner(deployment, schedule,
                                           policy=args.policy,
                                           episodes=replan_episodes)
        report = trainer.run(steps)
        print(report.summary())
        _save_outputs(args, tel)
    return 1 if report.stalled else 0


def _backend_options(args: argparse.Namespace) -> Optional[dict]:
    """Collect the fleet knobs into ``PlanningService(backend_options=)``."""
    if getattr(args, "backend", "auto") != "fleet":
        return None
    options = {}
    if getattr(args, "heartbeat_interval", None) is not None:
        options["heartbeat_interval"] = args.heartbeat_interval
    if getattr(args, "heartbeat_timeout", None) is not None:
        options["heartbeat_timeout"] = args.heartbeat_timeout
    if getattr(args, "redispatch_limit", None) is not None:
        options["redispatch_limit"] = args.redispatch_limit
    return options or None


def _add_eval_args(p: argparse.ArgumentParser) -> None:
    """The evaluation knobs shared by every planning command
    (``plan`` / ``serve`` / ``bench-service`` / ``churn``): same flag
    names, same defaults everywhere.  Both are result-transparent
    throughput switches; ``--no-prune`` is nevertheless fingerprinted
    by the planning service so a pruned and an unpruned request never
    coalesce, keeping A/B timings honest."""
    p.add_argument("--no-prune", action="store_true",
                   help="disable branch-and-bound candidate pruning "
                   "(slower; results are identical either way)")
    p.add_argument("--engine", choices=["kernel", "reference"],
                   default="kernel",
                   help="simulation event loop (default: kernel; the "
                   "reference loop is slower but bit-identical)")


def _add_backend_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--backend",
                   choices=["auto", "inline", "thread", "fleet"],
                   default="auto",
                   help="execution backend: auto (workers=0 -> inline, "
                   "else thread), or fleet for persistent worker "
                   "processes with heartbeats and re-dispatch")
    p.add_argument("--heartbeat-interval", type=float, default=None,
                   metavar="S", help="fleet worker heartbeat period")
    p.add_argument("--heartbeat-timeout", type=float, default=None,
                   metavar="S",
                   help="silence after which a fleet worker is declared "
                   "lost and its request re-dispatched")
    p.add_argument("--redispatch-limit", type=int, default=None,
                   metavar="N",
                   help="workers one request may lose before it fails "
                   "with WorkerLostError (default: 2)")


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: drive the planning service with a demo workload.

    Submits ``--requests`` plan requests (``--duplicates`` identical
    copies each) concurrently and prints what the service did with
    them: which coalesced, which hit the result cache, which were
    rejected by admission control.
    """
    from . import telemetry
    from .config import HeteroGConfig
    from .service import PlanRequest, PlanningService
    from .service.bench import run_workload

    model_name = _resolve_model(args.model)
    cluster = _resolve_cluster(args.cluster)()
    graph = build_model(model_name, args.preset)
    config = HeteroGConfig(seed=args.seed)
    config.agent.engine = args.engine
    # each unique group gets its own episode budget, so groups have
    # distinct fingerprints while copies within a group are identical
    requests = [
        PlanRequest(graph=graph, cluster=cluster,
                    episodes=args.episodes + i // max(1, args.duplicates),
                    timeout=args.timeout, config=config,
                    label=f"serve:{i // max(1, args.duplicates)}",
                    prune=not args.no_prune)
        for i in range(args.requests * args.duplicates)
    ]
    print(f"serving {len(requests)} requests "
          f"({args.requests} unique x {args.duplicates} duplicates) for "
          f"{graph.name} on {cluster} with {args.workers} worker(s)...",
          file=sys.stderr)
    with telemetry.session() as tel:
        with PlanningService(workers=args.workers,
                             max_queue=args.max_queue,
                             backend=args.backend,
                             backend_options=_backend_options(args)
                             ) as service:
            report = run_workload(service, requests)
        for outcome in report.outcomes:
            print(f"  {outcome.label:12s} {outcome.status:10s} "
                  f"{outcome.seconds * 1e3:8.1f} ms  {outcome.detail}")
        stats = report.stats
        print(f"completed {report.completed}/{len(requests)} in "
              f"{report.wall_seconds:.2f}s — executed {stats['executed']}, "
              f"coalesced {stats['coalesced']}, "
              f"cache hits {stats['result_hits']}, "
              f"rejected {stats['rejected']}")
        print(_render_status(report.snapshot))
        if args.status_out:
            import json
            with open(args.status_out, "w") as fh:
                json.dump(report.snapshot, fh, indent=2, default=str)
            print(f"status snapshot written to {args.status_out}",
                  file=sys.stderr)
        _save_outputs(args, tel)
    return 0


def cmd_bench_service(args: argparse.Namespace) -> int:
    """``repro bench-service``: coalesced concurrent vs serial replanning."""
    from .config import HeteroGConfig
    from .service.bench import bench_coalescing

    model_name = _resolve_model(args.model)
    cluster = _resolve_cluster(args.cluster)()
    graph = build_model(model_name, args.preset)
    print(f"benchmarking {args.duplicates} duplicate requests for "
          f"{graph.name} on {cluster}...", file=sys.stderr)
    config = HeteroGConfig(seed=args.seed)
    config.agent.engine = args.engine
    numbers = bench_coalescing(
        graph, cluster, duplicates=args.duplicates,
        episodes=args.episodes, workers=args.workers,
        config=config,
        backend=args.backend, backend_options=_backend_options(args),
        prune=not args.no_prune)
    for key, value in numbers.items():
        print(f"  {key:26s} {value}")
    if numbers["divergent_results"]:
        print("error: concurrent serving diverged from serial replanning",
              file=sys.stderr)
        return 1
    if args.out:
        import json
        with open(args.out, "w") as fh:
            json.dump(numbers, fh, indent=2)
        print(f"results written to {args.out}", file=sys.stderr)
    return 0


def cmd_journal(args: argparse.Namespace) -> int:
    """``repro journal``: tail / filter a JSONL request journal."""
    import json

    from .telemetry.journal import Journal, filter_events

    events = Journal.load(args.path)
    events = filter_events(events, request_id=args.request_id,
                           event=args.event, phase=args.phase)
    if args.tail is not None:
        events = events[-args.tail:]
    if not events:
        print("(no matching events)", file=sys.stderr)
        return 0
    if args.format == "jsonl":
        for entry in events:
            print(json.dumps(entry.to_dict()))
        return 0
    base = events[0].ts
    print(f"{'+seconds':>12s}  {'request_id':14s} {'phase':10s} "
          f"{'event':20s} attrs")
    for entry in events:
        attrs = " ".join(f"{k}={entry.attrs[k]}"
                         for k in sorted(entry.attrs))
        print(f"{entry.ts - base:12.6f}  {entry.request_id:14s} "
              f"{entry.phase:10s} {entry.event:20s} {attrs}".rstrip())
    return 0


def cmd_postmortem(args: argparse.Namespace) -> int:
    """``repro postmortem``: reconstruct one request's timeline.

    Works entirely from the JSONL journal — tracing never needs to have
    been enabled.  The request id may be a unique prefix.
    """
    from .telemetry.flight import FlightRecorder, postmortem_report
    from .telemetry.journal import Journal

    recorder = FlightRecorder.from_events(Journal.load(args.journal))
    record = recorder.get(args.request_id)
    if record is None:
        known = ", ".join(sorted(r.request_id
                                 for r in recorder.records())) or "(none)"
        raise ReproError(
            f"no (unique) record for {args.request_id!r} in "
            f"{args.journal}; known ids: {known}")
    print(postmortem_report(record))
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    """``repro status``: render a service status snapshot.

    Reads the JSON snapshot ``repro serve --status-out`` saved; with
    ``--journal`` it additionally replays SLO accounting from the
    journal stream (useful when only the JSONL survived).
    """
    import json

    shown = False
    if args.status:
        with open(args.status) as fh:
            snapshot = json.load(fh)
        print(_render_status(snapshot))
        shown = True
    if args.journal:
        from .telemetry.journal import Journal
        from .telemetry.slo import replay_tracker

        events = Journal.load(args.journal)
        tracker = replay_tracker(events)
        print(f"journal {args.journal}: {len(events)} events; "
              f"slo replay:")
        slo = tracker.snapshot()
        if not slo:
            print("  (no outcome events with an slo_class)")
        for cls, state in sorted(slo.items()):
            print(f"  {cls:12s} {state['requests']:4d} requests  "
                  f"compliance {state['compliance'] * 100:5.1f}%  "
                  f"budget burn {state['budget_burn']:.2f}")
        shown = True
    if not shown:
        raise ReproError(
            "nothing to show: pass --status PATH (from 'repro serve "
            "--status-out') and/or --journal PATH")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    """``repro experiment``: regenerate one paper table/figure."""
    if args.metrics_out or args.journal_out:
        from . import telemetry
        with telemetry.session() as tel:
            code = _run_experiment(args)
            _save_outputs(args, tel)
        return code
    return _run_experiment(args)


def _run_experiment(args: argparse.Namespace) -> int:
    from . import experiments as ex
    name = args.name
    if name == "table1":
        rows = ex.per_iteration_table(cluster_8gpu(), 8,
                                      include_large=args.large)
        print(ex.render_per_iteration(rows))
        print()
        print(ex.strategy_mix_table(rows, cluster_8gpu()))
    elif name == "table4":
        rows = ex.per_iteration_table(cluster_12gpu(), 12,
                                      include_large=args.large)
        print(ex.render_per_iteration(rows))
    elif name == "table5":
        print(ex.render_end_to_end(ex.end_to_end_table()))
    elif name == "table7":
        print(ex.render_order_scheduling(
            ex.order_scheduling_table(cluster_8gpu())))
    elif name == "fig3a":
        print(ex.render_fig3a(ex.fig3a_proportional_allocation()))
    elif name == "fig3b":
        print(ex.render_fig3b(ex.fig3b_op_speedups()))
    elif name == "fig8":
        print(ex.render_fig8(ex.fig8_time_breakdown()))
    elif name == "fig9":
        print(ex.render_fig9(ex.fig9_existing_schemes()))
    elif name == "faults":
        if getattr(args, "churn", False):
            print(ex.render_churn_sweep(ex.churn_sweep()))
        else:
            print(ex.render_fault_sweep(ex.fault_sweep(cluster_4gpu())))
    elif name == "churn":
        print(ex.render_churn_sweep(ex.churn_sweep()))
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown experiment {name}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HeteroG reproduction (CoNEXT 2020)",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("models", help="list benchmark models")
    _add_common(p)
    p.set_defaults(func=cmd_models)

    p = sub.add_parser("clusters", help="show cluster presets")
    p.set_defaults(func=cmd_clusters)

    p = sub.add_parser("plan", help="search a deployment strategy")
    _add_common(p)
    p.add_argument("model", choices=sorted(ALL_MODELS))
    p.add_argument("--episodes", type=int, default=24)
    p.add_argument("--workers", type=int, default=1,
                   help="strategy-evaluation worker processes "
                   "(default: 1 = serial; results are identical)")
    p.add_argument("--save", metavar="PATH",
                   help="save the strategy as JSON")
    _add_eval_args(p)
    p.set_defaults(func=cmd_plan)

    p = sub.add_parser("baselines", help="measure the DP baselines")
    _add_common(p)
    p.add_argument("model", choices=sorted(ALL_MODELS))
    p.set_defaults(func=cmd_baselines)

    p = sub.add_parser("trace",
                       help="trace the pipeline and export telemetry")
    p.add_argument("model", help="model name or unique prefix "
                   "(e.g. resnet, vgg19)")
    p.add_argument("cluster", nargs="?", default="8gpu",
                   help="cluster preset (8gpu, cluster8, 12gpu, ...)")
    p.add_argument("-o", "--out", default="trace.json",
                   help="Chrome trace output path (default: trace.json)")
    p.add_argument("--preset", choices=["tiny", "bench", "paper"],
                   default="bench", help="model scale (default: bench)")
    p.add_argument("--episodes", type=int, default=4,
                   help="strategy-search episodes (default: 4)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--spans-out", metavar="PATH",
                   help="also write the span log as JSONL")
    _add_output_args(p)
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("faults",
                       help="train under fault injection and recover")
    p.add_argument("model", help="model name or unique prefix "
                   "(e.g. resnet, vgg19)")
    p.add_argument("cluster", nargs="?", default="8gpu",
                   help="cluster preset (8gpu, cluster8, 12gpu, ...)")
    p.add_argument("--schedule", metavar="SPEC",
                   help="comma-separated faults, kind:target@iter[xF] "
                   "(e.g. 'crash:gpu3@5,degrade:server1@8x0.5'); "
                   "default: a seeded random schedule")
    p.add_argument("--policy", choices=["replan", "ride", "elastic"],
                   default="replan",
                   help="recovery policy (default: replan); elastic "
                   "additionally reacts to joins and preempt notices")
    p.add_argument("--steps", type=int, default=12,
                   help="training iterations to run (default: 12)")
    p.add_argument("--episodes", type=int, default=8,
                   help="initial strategy-search episodes (default: 8)")
    p.add_argument("--replan-episodes", type=int, default=4,
                   help="episodes per replan search (default: 4)")
    p.add_argument("--random-faults", type=int, default=2,
                   help="events in the random schedule (default: 2)")
    p.add_argument("--quick", action="store_true",
                   help="CI smoke mode: trim episodes and steps")
    p.add_argument("--preset", choices=["tiny", "bench", "paper"],
                   default="bench", help="model scale (default: bench)")
    p.add_argument("--seed", type=int, default=0)
    _add_output_args(p, journal=True)
    p.set_defaults(func=cmd_faults)

    p = sub.add_parser("churn",
                       help="train through spot arrivals and preemptions")
    p.add_argument("model", help="model name or unique prefix "
                   "(e.g. resnet, vgg19)")
    p.add_argument("cluster", nargs="?", default="2gpu",
                   help="starting cluster preset (default: 2gpu — small "
                   "on purpose, so arriving capacity matters)")
    p.add_argument("--schedule", metavar="SPEC",
                   help="comma-separated capacity events, "
                   "kind:target@iter[xF] (e.g. 'server_join:v100@2x2,"
                   "preempt:gpu1@4x2'); default: a seeded Poisson "
                   "timeline from the rates below")
    p.add_argument("--arrival-rate", type=float, default=0.3,
                   help="expected arrivals per iteration (default: 0.3)")
    p.add_argument("--preempt-rate", type=float, default=0.1,
                   help="expected preemptions per iteration "
                   "(default: 0.1)")
    p.add_argument("--notice", type=int, default=2,
                   help="spot advance-notice window in iterations "
                   "(default: 2)")
    p.add_argument("--reclaim-probability", type=float, default=0.25,
                   help="chance a preempted device comes back "
                   "(default: 0.25)")
    p.add_argument("--policy", choices=["elastic", "replan", "ride"],
                   default="elastic",
                   help="capacity policy (default: elastic)")
    p.add_argument("--steps", type=int, default=12,
                   help="training iterations to run (default: 12)")
    p.add_argument("--episodes", type=int, default=8,
                   help="initial strategy-search episodes (default: 8)")
    p.add_argument("--replan-episodes", type=int, default=4,
                   help="episodes per replan search (default: 4)")
    p.add_argument("--quick", action="store_true",
                   help="CI smoke mode: trim episodes and steps")
    p.add_argument("--workers", type=int, default=1,
                   help="strategy-evaluation worker processes "
                   "(default: 1 = serial; results are identical)")
    _add_eval_args(p)
    p.add_argument("--preset", choices=["tiny", "bench", "paper"],
                   default="bench", help="model scale (default: bench)")
    p.add_argument("--seed", type=int, default=0)
    _add_output_args(p, journal=True)
    p.set_defaults(func=cmd_churn)

    p = sub.add_parser("serve",
                       help="drive the planning service with a workload")
    p.add_argument("model", help="model name or unique prefix")
    p.add_argument("cluster", nargs="?", default="8gpu",
                   help="cluster preset (8gpu, cluster8, 12gpu, ...)")
    p.add_argument("--requests", type=int, default=2,
                   help="unique plan requests (default: 2)")
    p.add_argument("--duplicates", type=int, default=3,
                   help="identical copies per request (default: 3)")
    p.add_argument("--workers", type=int, default=2,
                   help="service worker threads (default: 2)")
    p.add_argument("--episodes", type=int, default=4,
                   help="search episodes per request (default: 4)")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-request deadline in seconds")
    p.add_argument("--max-queue", type=int, default=64,
                   help="admission-control queue bound (default: 64)")
    _add_eval_args(p)
    _add_backend_args(p)
    p.add_argument("--preset", choices=["tiny", "bench", "paper"],
                   default="bench", help="model scale (default: bench)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--status-out", metavar="PATH",
                   help="write the full service status snapshot as JSON "
                   "(readable by 'repro status')")
    _add_output_args(p, journal=True)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("bench-service",
                       help="benchmark coalesced vs serial planning")
    p.add_argument("model", help="model name or unique prefix")
    p.add_argument("cluster", nargs="?", default="4gpu",
                   help="cluster preset (default: 4gpu)")
    p.add_argument("--duplicates", type=int, default=6,
                   help="duplicate requests to serve (default: 6)")
    p.add_argument("--workers", type=int, default=2,
                   help="service worker threads (default: 2)")
    p.add_argument("--episodes", type=int, default=4,
                   help="search episodes per request (default: 4)")
    _add_eval_args(p)
    _add_backend_args(p)
    p.add_argument("--preset", choices=["tiny", "bench", "paper"],
                   default="tiny", help="model scale (default: tiny)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("-o", "--out", metavar="PATH",
                   help="write the numbers as JSON")
    p.set_defaults(func=cmd_bench_service)

    p = sub.add_parser("experiment", help="run one paper experiment")
    p.add_argument("name", choices=["table1", "table4", "table5", "table7",
                                    "fig3a", "fig3b", "fig8", "fig9",
                                    "faults", "churn"])
    p.add_argument("--large", action="store_true",
                   help="include the large-model OOM rows (slow)")
    p.add_argument("--churn", action="store_true",
                   help="with 'faults': sweep capacity churn (arrivals, "
                   "spot preemptions) instead of degradation faults")
    _add_output_args(p, journal=True)
    p.set_defaults(func=cmd_experiment)

    p = sub.add_parser("journal",
                       help="tail / filter a JSONL request journal")
    p.add_argument("path", nargs="?", default="journal.jsonl",
                   help="journal file (default: journal.jsonl)")
    p.add_argument("--request-id", metavar="ID",
                   help="only events for this request id (or prefix)")
    p.add_argument("--event", metavar="TYPE",
                   help="only this event type (e.g. completed)")
    p.add_argument("--phase",
                   choices=["admission", "context", "search", "build",
                            "outcome", "fleet", "resilience"],
                   help="only events in this lifecycle phase")
    p.add_argument("--tail", type=int, metavar="N",
                   help="only the last N matching events")
    p.add_argument("--format", choices=["table", "jsonl"],
                   default="table", help="output format (default: table)")
    p.set_defaults(func=cmd_journal)

    p = sub.add_parser("postmortem",
                       help="reconstruct one request's timeline from "
                       "the journal")
    p.add_argument("request_id",
                   help="request or episode id (unique prefix ok)")
    p.add_argument("--journal", metavar="PATH", default="journal.jsonl",
                   help="journal file (default: journal.jsonl)")
    p.set_defaults(func=cmd_postmortem)

    p = sub.add_parser("status",
                       help="render a service status snapshot")
    p.add_argument("--status", metavar="PATH",
                   help="JSON snapshot from 'repro serve --status-out'")
    p.add_argument("--journal", metavar="PATH",
                   help="JSONL journal to replay SLO accounting from")
    p.set_defaults(func=cmd_status)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout went away mid-print (e.g. `repro journal ... | head`);
        # suppress the noise and exit with the conventional SIGPIPE code
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
