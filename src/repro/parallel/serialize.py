"""JSON serialization of deployment strategies.

A searched strategy is a valuable artifact (the paper's agent takes hours
to converge); these helpers persist it so a deployment can be re-applied
without re-running the search.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from ..cluster.topology import Cluster
from ..errors import StrategyError
from ..graph.dag import ComputationGraph
from .strategy import (
    CommMethod,
    OpStrategy,
    ParallelKind,
    ReplicaAllocation,
    Strategy,
)

FORMAT_VERSION = 1


def _op_strategy_to_dict(st: OpStrategy) -> Dict[str, Any]:
    if st.kind is ParallelKind.MP:
        return {"kind": "mp", "device": st.device}
    return {
        "kind": "dp",
        "replicas": dict(st.replicas),
        "comm": st.comm.value,
        "allocation": st.allocation.value if st.allocation else None,
    }


def _op_strategy_from_dict(data: Dict[str, Any]) -> OpStrategy:
    kind = data.get("kind")
    if kind == "mp":
        return OpStrategy(ParallelKind.MP, device=data["device"])
    if kind == "dp":
        allocation = (ReplicaAllocation(data["allocation"])
                      if data.get("allocation") else None)
        return OpStrategy(
            ParallelKind.DP,
            replicas={str(k): int(v) for k, v in data["replicas"].items()},
            comm=CommMethod(data["comm"]),
            allocation=allocation,
        )
    raise StrategyError(f"unknown strategy kind {kind!r}")


def strategy_to_dict(strategy: Strategy) -> Dict[str, Any]:
    """Portable dict form of a Strategy."""
    return {
        "format_version": FORMAT_VERSION,
        "graph": strategy.graph.name,
        "devices": strategy.cluster.device_ids,
        "per_op": {
            name: _op_strategy_to_dict(st) for name, st in strategy.items()
        },
    }


def strategy_from_dict(data: Dict[str, Any], graph: ComputationGraph,
                       cluster: Cluster) -> Strategy:
    """Rebuild a Strategy; validates graph name and device list."""
    if data.get("format_version") != FORMAT_VERSION:
        raise StrategyError(
            f"unsupported strategy format version "
            f"{data.get('format_version')!r}"
        )
    if data.get("graph") != graph.name:
        raise StrategyError(
            f"strategy was saved for graph {data.get('graph')!r}, "
            f"not {graph.name!r}"
        )
    saved_devices = data.get("devices", [])
    if saved_devices != cluster.device_ids:
        raise StrategyError(
            f"strategy was saved for devices {saved_devices}, the cluster "
            f"has {cluster.device_ids}"
        )
    per_op = {
        name: _op_strategy_from_dict(st)
        for name, st in data["per_op"].items()
    }
    return Strategy(graph, cluster, per_op)


def save_strategy(strategy: Strategy, path: str) -> None:
    """Write a strategy to a JSON file."""
    with open(path, "w") as fh:
        json.dump(strategy_to_dict(strategy), fh, indent=1)


def load_strategy(path: str, graph: ComputationGraph,
                  cluster: Cluster) -> Strategy:
    """Read a strategy saved by save_strategy."""
    with open(path) as fh:
        return strategy_from_dict(json.load(fh), graph, cluster)
