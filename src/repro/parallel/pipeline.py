"""Micro-batch pipelining on top of a compiled distributed graph.

Paper Sec. 7: "If retaining model training semantics was not a concern,
HeteroG can be readily integrated with a pipelining design: after
producing the distributed training graph, we can further split a
mini-batch into micro-batches, carry out pipelined training across
operations deployed on different devices, and augment our execution
order scheduling algorithm to handle such micro-batches."

This module implements exactly that (GPipe-style *synchronous* pipeline,
so parameter semantics are still preserved — gradients from all
micro-batches are summed before one apply):

- every batch-scaled compute op (and the batched transfers between them)
  is cloned per micro-batch at 1/k of the batch share;
- parameter-gradient micro-clones feed a per-device micro-sum, after
  which the original PS/AllReduce aggregation runs once, unchanged;
- the existing rank-based order scheduler handles the pipelined graph
  as-is (micro-batches are just more nodes), giving the 1F1B-like
  interleaving automatically.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import CompileError
from .distgraph import DistGraph, DistOp, DistOpKind


def _splittable_compute(op: DistOp) -> bool:
    """Compute ops whose work scales with the batch share."""
    if op.kind in (DistOpKind.SPLIT, DistOpKind.CONCAT):
        return True
    if op.kind is not DistOpKind.COMPUTE:
        return False
    if op.source_op is None:
        return False
    return bool(op.source_op.batch_scaled)


def _is_micro_grad(op: DistOp) -> bool:
    """Batch-scaled compute producing a full-size parameter gradient."""
    return (op.kind is DistOpKind.COMPUTE
            and op.source_op is not None
            and op.source_op.produces_param_gradient)


def pipeline_graph(dist: DistGraph, num_microbatches: int) -> DistGraph:
    """Clone batch-scaled work per micro-batch; keep aggregation single.

    Returns a new :class:`DistGraph`; the input graph is not modified.
    """
    if num_microbatches < 1:
        raise CompileError(
            f"num_microbatches must be >= 1, got {num_microbatches}"
        )
    if num_microbatches == 1:
        return dist

    k = num_microbatches
    split: Dict[str, bool] = {}
    for name in dist.op_names:
        split[name] = _splittable_compute(dist.op(name))
    # a transfer splits iff both endpoints split (per-micro-batch slices);
    # gradient pushes/pulls and collective payloads stay whole
    for name in dist.op_names:
        op = dist.op(name)
        if op.kind is DistOpKind.TRANSFER:
            preds = dist.predecessors(name)
            succs = dist.successors(name)
            split[name] = bool(preds) and bool(succs) and all(
                split[p] for p in preds
            ) and all(split[s] for s in succs)

    out = DistGraph(f"{dist.name}:pipeline{k}")

    def clone(op: DistOp, suffix: str, fraction_scale: float,
              size_scale: float) -> DistOp:
        return DistOp(
            name=f"{op.name}{suffix}",
            kind=op.kind,
            source_op=op.source_op,
            device=op.device,
            src_device=op.src_device,
            dst_device=op.dst_device,
            devices=op.devices,
            size_bytes=op.size_bytes * size_scale,
            batch_fraction=op.batch_fraction * fraction_scale,
            group=op.group,
            hierarchical=op.hierarchical,
            extra_resources=op.extra_resources,
        )

    # instance names per original dist-op: either [name] or k micro names
    instances: Dict[str, List[str]] = {}
    # for micro-grads: the name of the micro-sum node consumers attach to
    microsum_of: Dict[str, str] = {}

    for name in dist.topological_order():
        op = dist.op(name)
        if split[name]:
            names = []
            for m in range(k):
                micro = clone(op, f"~mb{m}", 1.0 / k,
                              1.0 / k if op.kind is DistOpKind.TRANSFER
                              or op.kind in (DistOpKind.SPLIT,
                                             DistOpKind.CONCAT)
                              else 1.0)
                deps = _micro_deps(dist, out, instances, microsum_of,
                                   name, m)
                out.add(micro, deps)
                names.append(micro.name)
            instances[name] = names
            if _is_micro_grad(op):
                # sum the k partial gradients on-device before aggregation
                grad_bytes = float(op.source_op.output.size_bytes)
                microsum = DistOp(
                    name=f"{name}~microsum",
                    kind=DistOpKind.AGGREGATE,
                    device=op.device,
                    size_bytes=grad_bytes * k,
                    group=op.group,
                )
                out.add(microsum, names)
                microsum_of[name] = microsum.name
        else:
            single = clone(op, "", 1.0, 1.0)
            deps: List[str] = []
            for pred in dist.predecessors(name):
                deps.extend(_attach_points(instances, microsum_of, pred))
            out.add(single, deps)
            instances[name] = [single.name]

    out.validate()
    return out


def _attach_points(instances: Dict[str, List[str]],
                   microsum_of: Dict[str, str], pred: str) -> List[str]:
    """What a non-split consumer of ``pred`` must wait for."""
    if pred in microsum_of:
        return [microsum_of[pred]]
    return instances[pred]


def _micro_deps(dist: DistGraph, out: DistGraph,
                instances: Dict[str, List[str]],
                microsum_of: Dict[str, str],
                name: str, m: int) -> List[str]:
    """Dependencies of micro-batch ``m`` of op ``name``."""
    deps: List[str] = []
    for pred in dist.predecessors(name):
        pred_instances = instances[pred]
        if len(pred_instances) > 1:
            deps.append(pred_instances[m])  # same micro-batch lane
        else:
            deps.extend(_attach_points(instances, microsum_of, pred))
    return deps


def _consumes_microsum(dist: DistGraph, name: str) -> bool:
    op = dist.op(name)
    return op.kind in (DistOpKind.AGGREGATE, DistOpKind.ALLREDUCE)


def pipeline_ladder_strategy(graph, cluster, stages: Optional[int] = None):
    """A model-parallel pipeline ladder: forward ops are partitioned into
    contiguous FLOP-balanced stages across devices; each backward/apply op
    is colocated with its forward op's stage (the standard pipeline
    layout: activations flow down the ladder, gradients flow back up)."""
    import numpy as np

    from ..graph.op import OpPhase
    from .strategy import Strategy, make_mp_strategy

    stages = stages or cluster.num_devices
    stages = min(stages, cluster.num_devices)
    order = [n for n in graph.topological_order()
             if graph.op(n).phase in (OpPhase.INPUT, OpPhase.FORWARD,
                                      OpPhase.LOSS)]
    flops = np.asarray([max(graph.op(n).flops, 1.0) for n in order])
    cumulative = np.cumsum(flops)
    total = cumulative[-1]
    stage_of: Dict[str, int] = {}
    for i, name in enumerate(order):
        stage_of[name] = min(int(cumulative[i] / total * stages), stages - 1)
    per = {}
    for name in graph.op_names:
        op = graph.op(name)
        if name in stage_of:
            stage = stage_of[name]
        elif op.forward_ref is not None and op.forward_ref in stage_of:
            stage = stage_of[op.forward_ref]
        else:
            stage = stages - 1  # loss gradient etc.
        per[name] = make_mp_strategy(cluster.device_ids[stage])
    return Strategy(graph, cluster, per)


def pipeline_speedup_estimate(num_stages: int, num_microbatches: int
                              ) -> float:
    """Ideal pipeline efficiency: k / (k + s - 1) for s stages."""
    if num_stages < 1 or num_microbatches < 1:
        raise CompileError("stages and micro-batches must be >= 1")
    return num_microbatches / (num_microbatches + num_stages - 1)
