"""Parallelism strategies, distributed graph IR, and the Graph Compiler."""

from .aggregation import (
    allreduce_time,
    choose_allreduce,
    choose_ps_device,
    cluster_link_lookup,
    hierarchical_allreduce_time,
    ring_allreduce_time,
)
from .compiler import GraphCompiler
from .fusion import count_collectives, fuse_allreduces
from .pipeline import (
    pipeline_graph,
    pipeline_ladder_strategy,
    pipeline_speedup_estimate,
)
from .distgraph import NCCL_RESOURCE, DistGraph, DistOp, DistOpKind
from .strategy import (
    CommMethod,
    OpStrategy,
    ParallelKind,
    ReplicaAllocation,
    Strategy,
    even_replica_counts,
    make_dp_strategy,
    make_mp_strategy,
    proportional_replica_counts,
    single_device_strategy,
    uniform_strategy,
)

__all__ = [
    "GraphCompiler",
    "fuse_allreduces",
    "count_collectives",
    "pipeline_graph",
    "pipeline_ladder_strategy",
    "pipeline_speedup_estimate",
    "DistGraph",
    "DistOp",
    "DistOpKind",
    "NCCL_RESOURCE",
    "Strategy",
    "OpStrategy",
    "ParallelKind",
    "CommMethod",
    "ReplicaAllocation",
    "uniform_strategy",
    "single_device_strategy",
    "make_dp_strategy",
    "make_mp_strategy",
    "even_replica_counts",
    "proportional_replica_counts",
    "ring_allreduce_time",
    "hierarchical_allreduce_time",
    "allreduce_time",
    "choose_allreduce",
    "choose_ps_device",
    "cluster_link_lookup",
]
