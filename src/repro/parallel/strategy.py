"""Deployment-strategy types (paper Sec. 3.3, decisions (i) and (ii)).

Per operation (group), HeteroG's action space is ``M + 4``-way:

- one of ``M`` *model-parallelism* actions: place the op on GPU ``m``
  without replication;
- four *data-parallelism* actions: {even, proportional} replica
  allocation x {PS, AllReduce} gradient aggregation.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from ..cluster.topology import Cluster
from ..errors import StrategyError
from ..graph.dag import ComputationGraph


class CommMethod(enum.Enum):
    """Gradient synchronization method (PS or AllReduce)."""
    PS = "ps"
    ALLREDUCE = "allreduce"


class ParallelKind(enum.Enum):
    """Parallelism kind: MP (single placement) or DP (replicated)."""
    MP = "mp"  # single placement, no replication
    DP = "dp"  # replicated, input split along batch


class ReplicaAllocation(enum.Enum):
    """DP replica allocation: even or compute-power proportional."""
    EVEN = "even"              # one replica per device
    PROPORTIONAL = "proportional"  # replicas ~ device compute power


@dataclass(frozen=True)
class OpStrategy:
    """Parallelism decision for one operation (or op group)."""

    kind: ParallelKind
    device: Optional[str] = None  # MP target
    replicas: Mapping[str, int] = field(default_factory=dict)  # DP: dev->count
    comm: Optional[CommMethod] = None  # DP: gradient aggregation method
    allocation: Optional[ReplicaAllocation] = None  # DP: how replicas chosen

    def __post_init__(self) -> None:
        if self.kind is ParallelKind.MP:
            if not self.device:
                raise StrategyError("MP strategy needs a target device")
            if self.replicas:
                raise StrategyError("MP strategy must not carry replicas")
        else:
            if not self.replicas:
                raise StrategyError("DP strategy needs a replica allocation")
            if any(c <= 0 for c in self.replicas.values()):
                raise StrategyError(f"non-positive replica count: {self.replicas}")
            if self.comm is None:
                raise StrategyError("DP strategy needs a gradient comm method")

    # ------------------------------------------------------------------ #
    @property
    def total_replicas(self) -> int:
        if self.kind is ParallelKind.MP:
            return 1
        return sum(self.replicas.values())

    def devices(self) -> List[str]:
        """Distinct devices this op touches, in allocation order."""
        if self.kind is ParallelKind.MP:
            return [self.device]  # type: ignore[list-item]
        return list(self.replicas.keys())

    def batch_shares(self) -> Dict[str, float]:
        """Fraction of the global batch processed on each device.

        Replicas each process ``1/total`` of the batch; multiple replicas
        of the same op on the same device are merged for costing purposes
        (their compute scales linearly with the combined batch share).

        The mapping is computed once per strategy and shared across
        callers; treat it as read-only.
        """
        cached = getattr(self, "_shares_cache", None)
        if cached is not None:
            return cached
        if self.kind is ParallelKind.MP:
            shares = {self.device: 1.0}  # type: ignore[dict-item]
        else:
            total = self.total_replicas
            shares = {d: c / total for d, c in self.replicas.items()}
        object.__setattr__(self, "_shares_cache", shares)
        return shares

    def label(self) -> str:
        """Human-readable strategy class, matching Table 2's columns."""
        if self.kind is ParallelKind.MP:
            return f"MP:{self.device}"
        alloc = "EV" if self.allocation is ReplicaAllocation.EVEN else "CP"
        comm = "PS" if self.comm is CommMethod.PS else "AR"
        return f"{alloc}-{comm}"


def proportional_replica_counts(cluster: Cluster) -> Dict[str, int]:
    """Integer replica counts proportional to device compute power.

    The weakest device gets one replica; others get
    ``round(power / weakest_power)`` — e.g. the paper's V100:1080Ti = 2:1
    yields two replicas per V100 and one per 1080Ti (Sec. 2.3).
    """
    rel = cluster.relative_powers()
    return {d: max(1, round(r)) for d, r in rel.items()}


def even_replica_counts(cluster: Cluster) -> Dict[str, int]:
    """One replica per device."""
    return {d: 1 for d in cluster.device_ids}


def make_dp_strategy(cluster: Cluster, allocation: ReplicaAllocation,
                     comm: CommMethod) -> OpStrategy:
    """DP OpStrategy for a cluster with the given allocation and comm."""
    counts = (
        even_replica_counts(cluster)
        if allocation is ReplicaAllocation.EVEN
        else proportional_replica_counts(cluster)
    )
    return OpStrategy(ParallelKind.DP, replicas=counts, comm=comm,
                      allocation=allocation)


def make_mp_strategy(device: str) -> OpStrategy:
    """MP OpStrategy pinned to one device."""
    return OpStrategy(ParallelKind.MP, device=device)


class Strategy:
    """A full Part-I decision: one :class:`OpStrategy` per operation."""

    def __init__(self, graph: ComputationGraph, cluster: Cluster,
                 per_op: Optional[Mapping[str, OpStrategy]] = None):
        self.graph = graph
        self.cluster = cluster
        self._per_op: Dict[str, OpStrategy] = dict(per_op or {})
        # op name -> (assigned strategy, its MP demotion); the compiler
        # calls get() for every op instance, so the demoted OpStrategy is
        # built once per assignment instead of once per call
        self._demoted: Dict[str, tuple] = {}
        self._validate()

    def _validate(self) -> None:
        known = set(self.cluster.device_ids)
        for name, st in self._per_op.items():
            if name not in self.graph:
                raise StrategyError(f"strategy for unknown op {name!r}")
            for dev in st.devices():
                if dev not in known:
                    raise StrategyError(
                        f"op {name!r} placed on unknown device {dev!r}"
                    )

    # ------------------------------------------------------------------ #
    def set(self, op_name: str, strategy: OpStrategy) -> None:
        if op_name not in self.graph:
            raise StrategyError(f"unknown op {op_name!r}")
        self._per_op[op_name] = strategy
        self._demoted.pop(op_name, None)

    def get(self, op_name: str) -> OpStrategy:
        """Strategy for an op, demoting DP to MP for non-replicable ops."""
        st = self._per_op.get(op_name)
        if st is None:
            raise StrategyError(f"no strategy assigned for op {op_name!r}")
        op = self.graph.op(op_name)
        if st.kind is ParallelKind.DP and not op.is_replicable:
            # Sec. 5: ops without batch-scaled work are never replicated;
            # pin them to the strongest device of the chosen allocation.
            cached = self._demoted.get(op_name)
            if cached is None or cached[0] is not st:
                cached = (st, make_mp_strategy(st.devices()[0]))
                self._demoted[op_name] = cached
            return cached[1]
        return st

    def has(self, op_name: str) -> bool:
        return op_name in self._per_op

    def items(self) -> Iterable:
        return self._per_op.items()

    # ------------------------------------------------------------------ #
    def strategy_mix(self) -> Dict[str, float]:
        """Fraction of ops per strategy label (Tables 2 and 3)."""
        counts: Dict[str, int] = {}
        total = 0
        for name in self.graph.op_names:
            label = self.get(name).label()
            counts[label] = counts.get(label, 0) + 1
            total += 1
        return {k: v / total for k, v in counts.items()}


def uniform_strategy(graph: ComputationGraph, cluster: Cluster,
                     op_strategy: OpStrategy) -> Strategy:
    """Apply one strategy to every op (the DP baselines of Sec. 6.1)."""
    return Strategy(graph, cluster,
                    {name: op_strategy for name in graph.op_names})


def single_device_strategy(graph: ComputationGraph, cluster: Cluster,
                           device: Optional[str] = None) -> Strategy:
    """Everything on one GPU — the original single-device deployment."""
    target = device or cluster.device_ids[0]
    return uniform_strategy(graph, cluster, make_mp_strategy(target))
