"""Gradient fusion: bucketing small AllReduces into larger collectives.

Horovod's "tensor fusion" and TF's ScopedAllocator both exist because a
ring AllReduce has a fixed launch/synchronization cost per collective
(modelled by ``NCCL_LAUNCH_OVERHEAD`` plus per-step latencies): a deep
model with hundreds of small gradients pays that cost hundreds of times.
Fusing consecutive gradients into buckets trades a little extra waiting
(the bucket starts only when all its gradients are ready) for far fewer
collectives.

This is an optional post-pass over the compiled distributed graph; the
fusion ablation benchmark sweeps the bucket size.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..errors import CompileError
from .distgraph import DistGraph, DistOp, DistOpKind

DEFAULT_BUCKET_BYTES = 64 * 1024 * 1024


def fuse_allreduces(dist: DistGraph, bucket_bytes: int = DEFAULT_BUCKET_BYTES
                    ) -> DistGraph:
    """Fuse AllReduce collectives over the same device ring into buckets.

    Collectives are packed greedily in topological order; a bucket closes
    when adding the next gradient would exceed ``bucket_bytes`` (a single
    oversized gradient still gets its own collective).  Dependencies and
    the per-device apply ops are re-wired onto the fused node.  Returns a
    new graph; the input is unmodified.
    """
    if bucket_bytes <= 0:
        raise CompileError(f"bucket_bytes must be positive: {bucket_bytes}")

    topo = dist.topological_order()
    topo_pos = {name: i for i, name in enumerate(topo)}

    # bucket AllReduce ops per participating device ring
    by_ring: Dict[tuple, List[str]] = {}
    for name in topo:
        op = dist.op(name)
        if op.kind is DistOpKind.ALLREDUCE:
            by_ring.setdefault(op.devices, []).append(name)

    bucket_of: Dict[str, int] = {}
    buckets: List[List[str]] = []
    for ring, names in by_ring.items():
        names.sort(key=lambda n: topo_pos[n])
        current: List[str] = []
        current_bytes = 0.0
        for name in names:
            size = dist.op(name).size_bytes
            if current and current_bytes + size > bucket_bytes:
                buckets.append(current)
                current, current_bytes = [], 0.0
            current.append(name)
            current_bytes += size
        if current:
            buckets.append(current)
    for i, bucket in enumerate(buckets):
        for name in bucket:
            bucket_of[name] = i

    out = DistGraph(f"{dist.name}:fused")
    fused_name: Dict[int, str] = {}

    # pass 1: create every node (fused collectives + clones of the rest)
    for idx, members in enumerate(buckets):
        rep = dist.op(members[0])
        fused = DistOp(
            name=(members[0] if len(members) == 1
                  else f"fused_ar:{idx}(x{len(members)})"),
            kind=DistOpKind.ALLREDUCE,
            devices=rep.devices,
            size_bytes=sum(dist.op(m).size_bytes for m in members),
            hierarchical=rep.hierarchical,
            group=rep.group,
            extra_resources=rep.extra_resources,
        )
        out.add(fused)
        fused_name[idx] = fused.name
    for name in topo:
        op = dist.op(name)
        if op.kind is DistOpKind.ALLREDUCE:
            continue
        out.add(DistOp(
            name=op.name, kind=op.kind, source_op=op.source_op,
            device=op.device, src_device=op.src_device,
            dst_device=op.dst_device, devices=op.devices,
            size_bytes=op.size_bytes, batch_fraction=op.batch_fraction,
            group=op.group, hierarchical=op.hierarchical,
            extra_resources=op.extra_resources,
        ))

    # pass 2: re-wire edges through the fused nodes
    def mapped(name: str) -> str:
        if name in bucket_of:
            return fused_name[bucket_of[name]]
        return name

    for src, dst_list in ((n, dist.successors(n)) for n in topo):
        for dst in dst_list:
            out.add_edge(mapped(src), mapped(dst))

    out.validate()
    return out


def count_collectives(dist: DistGraph) -> int:
    """Number of AllReduce nodes in a distributed graph."""
    return sum(1 for o in dist if o.kind is DistOpKind.ALLREDUCE)
